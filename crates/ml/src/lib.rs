//! From-scratch machine learning primitives used by the DejaVu reproduction.
//!
//! The ASPLOS 2012 paper uses the WEKA toolkit as a black box:
//! `CfsSubsetEval` + `GreedyStepwise` for feature selection, `SimpleKMeans` for
//! workload-class identification, and `J48` (C4.5) / naive Bayes for online
//! classification. This crate re-implements those standard algorithms so that
//! the DejaVu pipeline can run without any external ML dependency:
//!
//! * [`dataset`] — numeric datasets with named attributes and optional labels.
//! * [`kmeans`] — k-means with k-means++ seeding and silhouette-based automatic
//!   selection of the number of clusters.
//! * [`dtree`] — a C4.5-style decision tree (gain-ratio splits on continuous
//!   attributes, pessimistic pruning, leaf-confidence estimates).
//! * [`bayes`] — Gaussian naive Bayes.
//! * [`feature`] — correlation-based feature-subset selection (CFS) with
//!   greedy forward (stepwise) search.
//! * [`eval`] — train/test splitting, k-fold cross-validation, accuracy and
//!   confusion matrices.
//! * [`kernels`] — chunked, autovectorizable distance-accumulation kernels
//!   shared by k-means and the fleet's signature-resolution hot path, with a
//!   process-wide exact-order fallback (`DEJAVU_EXACT_KERNELS`).
//!
//! # Example
//!
//! ```
//! use dejavu_ml::dataset::Dataset;
//! use dejavu_ml::kmeans::{KMeans, KMeansConfig};
//!
//! // Two obvious blobs.
//! let mut data = Dataset::new(vec!["x".into(), "y".into()]);
//! for i in 0..10 {
//!     data.push_unlabeled(vec![i as f64 * 0.01, 0.0]);
//!     data.push_unlabeled(vec![10.0 + i as f64 * 0.01, 5.0]);
//! }
//! let model = KMeans::fit(&data, &KMeansConfig { k: 2, ..Default::default() }, 7).unwrap();
//! assert_eq!(model.centroids().len(), 2);
//! ```

pub mod bayes;
pub mod dataset;
pub mod dtree;
pub mod error;
pub mod eval;
pub mod feature;
pub mod kernels;
pub mod kmeans;

pub use bayes::NaiveBayes;
pub use dataset::{Dataset, Instance};
pub use dtree::{DecisionTree, DecisionTreeConfig};
pub use error::MlError;
pub use eval::{ConfusionMatrix, CrossValidation};
pub use feature::{CfsSelector, FeatureSelection};
pub use kmeans::{KMeans, KMeansConfig};

/// A classifier maps a feature vector to a class label with a confidence level.
///
/// Both the decision tree and naive Bayes implement this; DejaVu's repository
/// lookup only needs this interface, so the classifier family is swappable
/// (the paper notes both "Bayesian models and decision trees work well").
pub trait Classifier {
    /// Predicts a class label and a confidence in `[0, 1]` for `features`.
    fn predict_with_confidence(&self, features: &[f64]) -> (usize, f64);

    /// Predicts only the class label.
    fn predict(&self, features: &[f64]) -> usize {
        self.predict_with_confidence(features).0
    }

    /// Number of classes this classifier can emit.
    fn num_classes(&self) -> usize;
}
