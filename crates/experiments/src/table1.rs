//! Table 1 — the HPC metrics selected for the RUBiS workload signature by CFS
//! feature selection over the profiled dataset.

use crate::report::Report;
use dejavu_core::{SignatureBuilder, WorkloadClusterer};
use dejavu_metrics::counter::TABLE1_EVENTS;
use dejavu_metrics::{MetricModel, MetricSampler, SamplerConfig, WorkloadPoint};
use dejavu_simcore::SimRng;
use dejavu_traces::ServiceKind;

/// The Table-1 result.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Metrics selected for the RUBiS signature, in selection order.
    pub selected: Vec<String>,
    /// How many of them are Table-1 HPC events from the paper.
    pub table1_overlap: usize,
    /// CFS merit of the selected subset.
    pub merit: f64,
}

impl Table1Result {
    /// Renders the table.
    pub fn report(&self) -> Report {
        let mut r = Report::new("Table 1: metrics selected for the RUBiS workload signature");
        for name in &self.selected {
            let marker = if TABLE1_EVENTS.iter().any(|(n, _)| n == name) {
                " (paper Table 1 event)"
            } else {
                ""
            };
            r.line(format!("  {name}{marker}"));
        }
        r.kv("overlap with the paper's Table 1", self.table1_overlap);
        r.kv("CFS merit", format!("{:.3}", self.merit));
        r
    }
}

/// Runs the Table-1 experiment: profiles RUBiS over a grid of volumes and
/// request mixes, clusters the dataset, and runs CFS feature selection.
pub fn run(seed: u64) -> Table1Result {
    let sampler = MetricSampler::new(MetricModel::default(), SamplerConfig::default());
    let mut rng = SimRng::seed_from_u64(seed ^ 0x7AB1);
    let mut signatures = Vec::new();
    for &volume in &[0.2, 0.4, 0.6, 0.8, 1.0] {
        for &read in &[0.7, 0.85, 0.95] {
            let point = WorkloadPoint::new(ServiceKind::Rubis, volume, read);
            for _ in 0..4 {
                signatures.push(sampler.sample(&point, &mut rng));
            }
        }
    }
    let clustering = WorkloadClusterer::new((2, 10), seed)
        .cluster(&signatures)
        .expect("profiled dataset is non-empty");
    let builder = SignatureBuilder::select(&signatures, &clustering.assignments, 8)
        .expect("labeled dataset is valid");
    let selected = builder.metric_names().to_vec();
    let table1_overlap = selected
        .iter()
        .filter(|n| TABLE1_EVENTS.iter().any(|(name, _)| *name == n.as_str()))
        .count();
    Table1Result {
        table1_overlap,
        merit: builder.merit(),
        selected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_small_informative_and_overlaps_table1() {
        let t = run(5);
        assert!(
            t.selected.len() >= 3 && t.selected.len() <= 8,
            "selected {:?}",
            t.selected
        );
        assert!(!t.selected.iter().any(|n| n == "prefetch_hits"));
        assert!(t.merit > 0.0);
        assert!(t.report().to_string().contains("Table 1"));
    }
}
