//! Cross-transport differential scenario fuzzer.
//!
//! The fleet now has three commit transports — the lock-step BSP barrier,
//! the bounded-staleness one-thread-per-tenant backend, and the
//! work-stealing pool — that all promise the same thing: at `staleness = 0`
//! a run is **bit-identical** to the barrier, for any thread cap, on any
//! scenario. The only way to trust that promise is the Anvil discipline:
//! generate scenarios covering the whole configuration space (tenant counts,
//! family mixes, churn windows, TTLs, shard counts, snapshot warm-starts),
//! run every transport over each one, and check the invariant.
//!
//! The fuzzer here is seeded and deterministic (the same hand-rolled `cases`
//! harness as `tests/properties.rs`): every failure reproduces exactly from
//! its case index. `DEJAVU_PROPTEST_CASES` raises the per-property case
//! count — the nightly CI job runs it at 256.
//!
//! Invariants pinned, per fuzzed scenario:
//!
//! * **K = 0 bit-match.** BSP, `BoundedStaleness(0)` and `WorkStealing` at
//!   thread caps 1/2/4 produce byte-identical reports — every per-tenant
//!   result, the hit-rate curve, and the shared repository's entry/anchor
//!   counts and statistics (hits, misses, insertions, **evictions** — the
//!   eviction equality is what pins the frontier-aware per-shard TTL sweep).
//! * **Thread-cap invariance.** The work-stealing caps are compared to each
//!   other, not just to BSP, so a cap-dependent divergence cannot hide
//!   behind a loose reference.
//! * **Adaptive-cap invariance.** The adaptive pool — whose governor moves
//!   the active-worker cap between epoch folds — bit-matches the fixed pool
//!   on every fuzzed scenario, and obeys the same staleness bound for
//!   `K > 0`: adaptation is a wall-time knob, never a results knob.
//! * **Staleness bound for K > 0.** View- and reuse-staleness histograms
//!   never exceed the bound, one view observation is recorded per
//!   tenant-epoch actually stepped, and the schedule-determined fields
//!   (admission epoch, active epochs, horizon, curve length) still match the
//!   barrier bit for bit even though `K > 0` results are allowed to drift.
//! * **Warm starts.** All of the above also holds when every transport
//!   resumes from the same snapshot of a seed fleet — including TTL expiry
//!   of seeded entries in shards the fuzzed tenants never touch, which only
//!   the per-shard sweep schedule keeps identical to the barrier's.
//! * **Observability is invisible.** Running any transport with the fleet
//!   flight recorder enabled produces the bit-identical report of the same
//!   run with the recorder disabled — the probes only ever write obs state —
//!   and the recorder's simulation-determined report subset is itself
//!   deterministic for a fixed seed.

use dejavu::fleet::{
    FleetConfig, FleetEngine, FleetReport, Scenario, ScenarioBuilder, SharedRepoConfig,
    SharedSignatureRepository, TransportConfig,
};
use dejavu::obs::Recorder;
use dejavu::simcore::SimDuration;
use std::cell::Cell;
use std::sync::Arc;

mod common;
use common::{assert_reports_bit_match, cases, fuzz_repo, fuzz_scenario, THREAD_CAPS};

fn run(scenario: &Scenario, repo: &SharedRepoConfig, transport: TransportConfig) -> FleetReport {
    FleetEngine::new(
        scenario.clone(),
        FleetConfig {
            repo: repo.clone(),
            transport,
            ..Default::default()
        },
    )
    .run()
}

fn run_warm(
    scenario: &Scenario,
    repo: &SharedRepoConfig,
    transport: TransportConfig,
    snapshot: &str,
) -> FleetReport {
    let engine = FleetEngine::new(
        scenario.clone(),
        FleetConfig {
            repo: repo.clone(),
            transport,
            ..Default::default()
        },
    );
    let (report, _) = engine.run_warm(snapshot).expect("fuzzer snapshot loads");
    report
}

/// Every transport at `staleness = 0` — the barrier, one thread per tenant,
/// and the work-stealing pool at each cap — produces a bit-identical run on
/// every fuzzed scenario, and the staleness telemetry agrees exactly.
fn assert_zero_staleness_family_matches(
    bsp: &FleetReport,
    scenario: &Scenario,
    repo: &SharedRepoConfig,
    runner: impl Fn(TransportConfig) -> FleetReport,
    label: &str,
) {
    let _ = (scenario, repo);
    let async0 = runner(TransportConfig::BoundedStaleness { staleness: 0 });
    assert_reports_bit_match(bsp, &async0, &format!("{label} async0"));
    assert_eq!(async0.transport.view_staleness.max(), 0, "{label} async0");
    let mut steal_runs = Vec::new();
    for threads in THREAD_CAPS {
        let steal = runner(TransportConfig::WorkStealing {
            threads,
            staleness: 0,
            adaptive: false,
        });
        assert_reports_bit_match(bsp, &steal, &format!("{label} steal{threads}T"));
        assert_eq!(
            steal.transport.view_staleness.max(),
            0,
            "{label} steal{threads}T"
        );
        assert_eq!(
            steal.transport.view_staleness.total(),
            async0.transport.view_staleness.total(),
            "{label} steal{threads}T telemetry totals"
        );
        steal_runs.push((threads, steal));
    }
    // Thread-cap invariance checked pairwise, not just against the (already
    // matching) reference — a cap-dependent divergence cannot hide.
    for window in steal_runs.windows(2) {
        let (ta, a) = &window[0];
        let (tb, b) = &window[1];
        assert_reports_bit_match(a, b, &format!("{label} steal {ta}T vs {tb}T"));
    }
    // Adaptive-cap invariance: the governor moves the active-worker cap
    // between epoch folds, but cap-invariance promises that is a pure
    // wall-time knob — the adaptive pool must stay bit-identical to the
    // fixed pool (and hence the barrier) at the same configured size.
    let max_threads = *THREAD_CAPS.last().expect("thread caps");
    let adaptive = runner(TransportConfig::WorkStealing {
        threads: max_threads,
        staleness: 0,
        adaptive: true,
    });
    assert_reports_bit_match(bsp, &adaptive, &format!("{label} steal-adaptive"));
    assert_eq!(
        adaptive.transport.view_staleness.max(),
        0,
        "{label} steal-adaptive"
    );
}

#[test]
fn fuzzed_scenarios_bit_match_across_transports_at_zero_staleness() {
    cases(6, |rng, case| {
        let scenario = fuzz_scenario(rng, case);
        let repo = fuzz_repo(rng);
        let bsp = run(&scenario, &repo, TransportConfig::Bsp);
        assert_eq!(bsp.epochs, scenario.horizon_epochs(), "case {case}");
        assert_zero_staleness_family_matches(
            &bsp,
            &scenario,
            &repo,
            |transport| run(&scenario, &repo, transport),
            &format!("case {case}"),
        );
    });
}

#[test]
fn fuzzed_warm_starts_bit_match_across_transports_at_zero_staleness() {
    cases(4, |rng, case| {
        // A seed fleet tunes a repository (TTL always on, so seeded entries
        // age out *during* the warm run — including in shards the fuzzed
        // tenants never touch, whose sweeps only the per-shard frontier
        // schedule keeps on time); every transport then resumes from the
        // same snapshot.
        let seed_repo = SharedRepoConfig {
            shards: 1 + rng.uniform_usize(16),
            ttl: Some(SimDuration::from_hours(rng.uniform(20.0, 40.0))),
            ..Default::default()
        };
        let seed_scenario = ScenarioBuilder::new(format!("fuzz-seed-{case}"), 91 ^ case, 1)
            .tick(SimDuration::from_secs(900.0))
            .diurnal_fleet(2)
            .specweb_fleet(1)
            .build();
        let seeding = FleetEngine::new(
            seed_scenario,
            FleetConfig {
                repo: seed_repo.clone(),
                ..Default::default()
            },
        );
        let shared = Arc::new(SharedSignatureRepository::new(seed_repo.clone()));
        seeding.run_on(Arc::clone(&shared));
        let snapshot = shared.save_snapshot();

        let scenario = fuzz_scenario(rng, case);
        let bsp = run_warm(&scenario, &seed_repo, TransportConfig::Bsp, &snapshot);
        assert!(bsp.warm_start, "case {case}: seed fleet left no entries");
        assert_zero_staleness_family_matches(
            &bsp,
            &scenario,
            &seed_repo,
            |transport| run_warm(&scenario, &seed_repo, transport, &snapshot),
            &format!("warm case {case}"),
        );
    });
}

#[test]
fn staleness_bound_holds_and_schedule_fields_stay_deterministic_for_positive_k() {
    cases(4, |rng, case| {
        let scenario = fuzz_scenario(rng, case);
        let repo = fuzz_repo(rng);
        let k = 1 + rng.uniform_usize(3);
        let bsp = run(&scenario, &repo, TransportConfig::Bsp);
        let expected_views: u64 = bsp.tenants.iter().map(|t| t.active_epochs as u64).sum();
        let mut runs = vec![run(
            &scenario,
            &repo,
            TransportConfig::BoundedStaleness { staleness: k },
        )];
        for threads in [1, 3] {
            runs.push(run(
                &scenario,
                &repo,
                TransportConfig::WorkStealing {
                    threads,
                    staleness: k,
                    adaptive: false,
                },
            ));
        }
        // The adaptive pool obeys the same staleness bound and the same
        // schedule-determined fields — the cap governor cannot loosen K.
        runs.push(run(
            &scenario,
            &repo,
            TransportConfig::WorkStealing {
                threads: 3,
                staleness: k,
                adaptive: true,
            },
        ));
        for report in &runs {
            let label = format!("case {case} k={k} {}", report.transport.name);
            assert!(
                report.transport.view_staleness.max() <= k,
                "{label}: view staleness {} exceeded the bound",
                report.transport.view_staleness.max()
            );
            assert!(
                report.transport.reuse_staleness.max() <= k,
                "{label}: reuse staleness {} exceeded the bound",
                report.transport.reuse_staleness.max()
            );
            // K > 0 results may drift bitwise, but everything the epoch grid
            // determines — admission, retirement, horizon, telemetry volume —
            // must still match the barrier exactly.
            assert_eq!(report.epochs, bsp.epochs, "{label}: horizon");
            assert_eq!(
                report.hit_rate_curve.len(),
                bsp.epochs,
                "{label}: curve length"
            );
            assert_eq!(
                report.transport.view_staleness.total(),
                expected_views,
                "{label}: one view observation per stepped tenant-epoch"
            );
            for (x, y) in bsp.tenants.iter().zip(&report.tenants) {
                assert_eq!(x.joined_epoch, y.joined_epoch, "{label} {}", x.name);
                assert_eq!(x.active_epochs, y.active_epochs, "{label} {}", x.name);
            }
        }
    });
}

/// Regression pin for the frontier-aware TTL sweep: with per-shard commit
/// frontiers, a shard whose epoch batch commits ahead of the fleet must be
/// swept at **its own** epoch's timestamp. Were the sweep still fleet-wide
/// per whole epoch, a deferred-stale entry in a leading shard would survive
/// into that shard's next commit, where a buffered `RecordHit` would land on
/// it and diverge the hit/eviction statistics from the barrier's. The
/// scenarios here force the failure shape: a short TTL (entries expire
/// mid-run), skewed namespaces (a big diurnal family and a small SPECweb one
/// in different shards, so frontiers genuinely decouple), and churn.
#[test]
fn frontier_aware_ttl_sweep_cannot_resurrect_deferred_stale_entries() {
    cases(4, |rng, case| {
        let days = 2;
        let mut builder = ScenarioBuilder::new(format!("ttl-skew-{case}"), 7 ^ case, days)
            .tick(SimDuration::from_secs(900.0))
            .diurnal_fleet(3 + rng.uniform_usize(2))
            .specweb_fleet(1);
        if rng.uniform01() < 0.5 {
            builder = builder.stagger_arrivals(
                2,
                SimDuration::from_hours(4.0),
                SimDuration::from_hours(3.0),
            );
        }
        let scenario = builder.build();
        let repo = SharedRepoConfig {
            shards: 1 + rng.uniform_usize(16),
            ttl: Some(SimDuration::from_hours(rng.uniform(8.0, 16.0))),
            ..Default::default()
        };
        let bsp = run(&scenario, &repo, TransportConfig::Bsp);
        let evictions = bsp
            .shared_repo
            .as_ref()
            .expect("shared run")
            .stats
            .evictions;
        assert!(
            evictions > 0,
            "case {case}: the TTL never fired — the regression scenario is vacuous"
        );
        assert_zero_staleness_family_matches(
            &bsp,
            &scenario,
            &repo,
            |transport| run(&scenario, &repo, transport),
            &format!("ttl case {case}"),
        );
    });
}

/// Runs a fleet with the flight recorder explicitly enabled or disabled on
/// both the repository and the transport layer — the obs-invisibility
/// fuzzing hook.
fn run_with_obs(
    scenario: &Scenario,
    repo: &SharedRepoConfig,
    transport: TransportConfig,
    obs: bool,
) -> (FleetReport, Recorder) {
    let recorder = if obs {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let engine = FleetEngine::new(
        scenario.clone(),
        FleetConfig {
            repo: repo.clone(),
            transport,
            recorder: recorder.clone(),
            ..Default::default()
        },
    );
    let report = engine.run_on(Arc::new(
        SharedSignatureRepository::new(repo.clone()).with_recorder(recorder.clone()),
    ));
    (report, recorder)
}

/// The flight recorder never perturbs results: an obs-on run bit-matches the
/// obs-off barrier reference for every transport at `staleness = 0`, on
/// fuzzed scenarios, with the toggle itself randomized per family member so
/// both recorder paths keep getting exercised across the whole matrix.
#[test]
fn obs_recording_is_invisible_to_results_across_transports() {
    cases(4, |rng, case| {
        let scenario = fuzz_scenario(rng, case);
        let repo = fuzz_repo(rng);
        let bsp = run(&scenario, &repo, TransportConfig::Bsp);
        let (bsp_obs, recorder) = run_with_obs(&scenario, &repo, TransportConfig::Bsp, true);
        assert_reports_bit_match(&bsp, &bsp_obs, &format!("obs case {case} bsp"));
        let report = recorder.report().expect("enabled recorder reports");
        assert!(
            report.render().contains("epoch_commit"),
            "obs case {case}: the enabled recorder saw no epochs"
        );
        // Deterministically alternate the toggle across the family members
        // (async0, steal at each thread cap), seeded by the case index.
        let draws = Cell::new(0u64);
        assert_zero_staleness_family_matches(
            &bsp,
            &scenario,
            &repo,
            |transport| {
                let i = draws.get();
                draws.set(i + 1);
                run_with_obs(&scenario, &repo, transport, (case + i).is_multiple_of(2)).0
            },
            &format!("obs case {case}"),
        );
    });
}

/// The simulation-determined subset of the obs report (`render_stable`) is
/// bit-stable for a fixed seed under the BSP transport: two identical runs
/// render identical stable reports, and the report actually has content.
#[test]
fn obs_stable_report_is_deterministic_for_a_fixed_seed() {
    let scenario = ScenarioBuilder::new("obs-det", 11, 1)
        .tick(SimDuration::from_secs(900.0))
        .diurnal_fleet(3)
        .specweb_fleet(1)
        .build();
    let repo = SharedRepoConfig {
        ttl: Some(SimDuration::from_hours(12.0)),
        ..Default::default()
    };
    let render = || {
        let (_, recorder) = run_with_obs(&scenario, &repo, TransportConfig::Bsp, true);
        recorder
            .report()
            .expect("enabled recorder reports")
            .render_stable()
    };
    let first = render();
    let second = render();
    assert_eq!(first, second, "stable obs report drifted between runs");
    assert!(first.contains("epoch_commit"), "{first}");
    assert!(first.contains("tree_visits"), "{first}");
    assert!(first.contains("peek_ns"), "{first}");
}
