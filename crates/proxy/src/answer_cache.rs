//! The recent-answer cache the proxy uses to impersonate missing back-end
//! tiers when profiling a middle tier (§3.2.1).
//!
//! The production middle tier's back-end answers are cached by request hash;
//! the clone's identical (slightly time-shifted) requests are answered from
//! the cache. Locality is high because the clone replays the same requests,
//! but the cache can miss (request permutations) or serve stale data — both
//! are tracked, neither breaks profiling because DejaVu only needs the clone
//! to be loaded *like* production, not to be a verbatim copy.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found an answer.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Answers inserted from the production path.
    pub insertions: u64,
    /// Answers evicted due to the capacity bound.
    pub evictions: u64,
    /// Hits that returned an answer older than the freshest one for that key.
    pub stale_hits: u64,
}

impl CacheStats {
    /// Hit rate over all lookups (0.0 if there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded, LRU-evicting map from request hash to the most recent answer.
///
/// # Example
///
/// ```
/// use dejavu_proxy::AnswerCache;
/// use bytes::Bytes;
///
/// let mut cache = AnswerCache::new(2);
/// cache.insert(1, Bytes::from_static(b"row-1"));
/// assert_eq!(cache.lookup(1), Some(Bytes::from_static(b"row-1")));
/// assert_eq!(cache.lookup(99), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AnswerCache {
    capacity: usize,
    entries: HashMap<u64, (Bytes, u64)>,
    /// Recency counter; larger = more recent.
    clock: u64,
    stats: CacheStats,
}

impl AnswerCache {
    /// Creates a cache bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        AnswerCache {
            capacity,
            entries: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts (or refreshes) the answer for a request hash, evicting the
    /// least-recently-used entry if the cache is full.
    pub fn insert(&mut self, request_hash: u64, answer: Bytes) {
        self.clock += 1;
        self.stats.insertions += 1;
        if !self.entries.contains_key(&request_hash) && self.entries.len() >= self.capacity {
            if let Some((&lru_key, _)) = self.entries.iter().min_by_key(|(_, (_, at))| *at) {
                self.entries.remove(&lru_key);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(request_hash, (answer, self.clock));
    }

    /// Looks up the most recent answer for a request hash, refreshing its
    /// recency on a hit.
    pub fn lookup(&mut self, request_hash: u64) -> Option<Bytes> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&request_hash) {
            Some((answer, at)) => {
                self.stats.hits += 1;
                if clock - *at > 2 {
                    // An old answer: the clone lags production for this key.
                    self.stats.stale_hits += 1;
                }
                *at = clock;
                Some(answer.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut c = AnswerCache::new(4);
        c.insert(1, Bytes::from_static(b"a"));
        c.insert(2, Bytes::from_static(b"b"));
        assert_eq!(c.lookup(1), Some(Bytes::from_static(b"a")));
        assert_eq!(c.lookup(3), None);
        assert_eq!(c.len(), 2);
        let stats = c.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction() {
        let mut c = AnswerCache::new(2);
        c.insert(1, Bytes::from_static(b"a"));
        c.insert(2, Bytes::from_static(b"b"));
        // Touch 1 so 2 becomes the LRU.
        let _ = c.lookup(1);
        c.insert(3, Bytes::from_static(b"c"));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(2).is_none(), "LRU entry should have been evicted");
        assert!(c.lookup(1).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn refresh_existing_key_does_not_evict() {
        let mut c = AnswerCache::new(2);
        c.insert(1, Bytes::from_static(b"a"));
        c.insert(2, Bytes::from_static(b"b"));
        c.insert(1, Bytes::from_static(b"a2"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(1), Some(Bytes::from_static(b"a2")));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn high_locality_workload_has_high_hit_rate() {
        // Production inserts answers; the clone replays the same keys shortly after.
        let mut c = AnswerCache::new(128);
        for key in 0..100u64 {
            c.insert(key, Bytes::from(vec![key as u8]));
            if key >= 2 {
                let _ = c.lookup(key - 2);
            }
        }
        assert!(c.stats().hit_rate() > 0.95);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = AnswerCache::new(0);
    }
}
