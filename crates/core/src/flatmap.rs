//! A flat, sorted-vector map for small hot-path key spaces.
//!
//! The repositories (local and fleet-shared) key a few dozen entries per
//! tenant or namespace; a `BTreeMap` pays node allocation and pointer-chasing
//! on every probe. `FlatMap` stores `(key, value)` pairs in one contiguous,
//! key-sorted `Vec` and binary-searches it: lookups touch a single cache line
//! or two, iteration is a linear scan, and inserts — rare on these paths —
//! shift the tail. Iteration order is key order, exactly like the `BTreeMap`
//! it replaces, so report output and commit sequences stay byte-identical.

use serde::{Deserialize, Serialize};

/// A sorted-vector map. Keys must be `Ord + Copy`; values move in and out by
/// value, matching how the repositories use it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for FlatMap<K, V> {
    fn default() -> Self {
        FlatMap {
            entries: Vec::new(),
        }
    }
}

impl<K: Ord + Copy, V> FlatMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.position(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the value stored under `key`, if any.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.position(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Inserts `value` under `key`, returning the previous value if the key
    /// was present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.position(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Returns the value under `key`, inserting `default()` first if absent.
    pub fn get_mut_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let i = match self.position(&key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Removes and returns the value under `key`, if any.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Keeps only the entries for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v)| keep(k, v));
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates over values in key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterates over values mutably, in key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = FlatMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(3, "c"), None);
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(2, "b"), None);
        assert_eq!(m.insert(2, "B"), Some("b"));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&2), Some(&"B"));
        assert_eq!(m.get(&9), None);
        assert_eq!(m.remove(&1), Some("a"));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut m = FlatMap::new();
        for k in [5, 1, 4, 2, 3] {
            m.insert(k, k * 10);
        }
        let keys: Vec<i32> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
        let values: Vec<i32> = m.values().copied().collect();
        assert_eq!(values, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn get_mut_or_insert_with_creates_once() {
        let mut m: FlatMap<u32, Vec<u32>> = FlatMap::new();
        m.get_mut_or_insert_with(7, Vec::new).push(1);
        m.get_mut_or_insert_with(7, Vec::new).push(2);
        assert_eq!(m.get(&7), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn retain_filters_entries() {
        let mut m = FlatMap::new();
        for k in 0..10 {
            m.insert(k, k);
        }
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.len(), 5);
        assert!(m.get(&3).is_none());
        assert!(m.get(&4).is_some());
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        use std::collections::BTreeMap;
        let mut flat = FlatMap::new();
        let mut tree = BTreeMap::new();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 64) as u32;
            match (x >> 8) % 3 {
                0 => {
                    assert_eq!(flat.insert(key, x), tree.insert(key, x));
                }
                1 => {
                    assert_eq!(flat.remove(&key), tree.remove(&key));
                }
                _ => {
                    assert_eq!(flat.get(&key), tree.get(&key));
                }
            }
        }
        let a: Vec<(u32, u64)> = flat.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(u32, u64)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b);
    }
}
