//! Interference scenario (the paper's Figure 11): co-located tenants steal
//! 10–20% of each VM's capacity; DejaVu detects the interference through its
//! interference index and provisions extra instances to keep the SLO.
//!
//! ```text
//! cargo run --release --example interference_aware
//! ```

use dejavu::experiments::fig11;

fn main() {
    let figure = fig11::run(11);
    print!("{}", figure.report());
    println!(
        "\nWith detection enabled DejaVu used {:.1} instances on average (vs {:.1} without) \
         and cut SLO violations from {:.1}% to {:.1}% of samples.",
        figure.mean_instances_with,
        figure.mean_instances_without,
        figure.without_detection.slo_violation_fraction * 100.0,
        figure.with_detection.slo_violation_fraction * 100.0,
    );
}
