//! Versioned, deterministic persistence for the fleet-shared signature
//! repository.
//!
//! A snapshot captures everything the repository needs to resume **bit
//! identically**: the sharding configuration, every namespace's anchors (in
//! anchor-id order, with full-precision centroid values), every entry with its
//! reuse counters, and the per-shard statistics. The φ-space ball-tree anchor
//! index is *not* serialized — it is a pure acceleration structure whose
//! results are provably identical to a linear scan, so the loader simply
//! rebuilds it.
//!
//! # Format
//!
//! The format is a line-oriented text format, chosen over the vendored serde
//! stubs because it must round-trip `f64`s bit-exactly and emit byte-identical
//! output for identical repositories (floats are written as 16-digit hex IEEE
//! bit patterns, `fb<bits>`). The first line carries the format version and is
//! checked on load:
//!
//! ```text
//! dejavu-fleet-snapshot v1
//! config shards=16 tolerance=fb3fb999999999999a ttl=none clock=fb40f5180000000000
//! namespace 42
//! anchor 0 fb4024000000000000 fb4034000000000000
//! entry 0 0 L 4 fb0000000000000000 7 12 3
//! shard 0 12 3 5 0 3 1
//! end
//! ```
//!
//! * `namespace <id>` starts a namespace block; `anchor <id> <values…>` lines
//!   list its anchors in id order (anchors whose dimensionality differs from
//!   the namespace's first non-empty anchor are the "misfits" of
//!   [`shared_repo`](crate::shared_repo) and are reconstructed as such);
//!   `entry <anchor> <bucket> <type> <count> <tuned_at> <owner> <hits>
//!   <cross_hits>` lines list its entries in key order.
//! * `shard <idx> <hits> <misses> <insertions> <evictions> <cross> <anchors>`
//!   lines restore the per-shard statistics counters.
//! * `end` terminates the snapshot; trailing garbage is rejected.
//!
//! Version policy: the major version (`v1`) changes whenever a change would
//! make an old snapshot decode to a *different* repository state; loaders
//! reject versions they do not understand rather than guessing. New optional
//! trailing fields within a line are **not** allowed — that would break the
//! byte-identical determinism guarantee tests rely on.

use crate::shared_repo::ShardStats;
use dejavu_cloud::{InstanceType, ResourceAllocation};
use serde::{Deserialize, Serialize};

/// The version string written to (and required of) every snapshot.
pub const SNAPSHOT_VERSION: &str = "dejavu-fleet-snapshot v1";

/// Upper bound on the shard count a snapshot may declare. Real repositories
/// use a handful of lock stripes (default 16); the bound exists so a corrupt
/// or hostile `config shards=…` line is rejected with a typed error instead
/// of aborting the process inside a huge allocation.
pub const MAX_SHARDS: usize = 1 << 16;

// The snapshot types stay serde-shaped so the planned swap to the real serde
// (ROADMAP: `vendor/*` are hermetic stand-ins) is a manifest-only change:
// these bounds fail to compile if anyone drops the derives — which is also
// what requires the vendored derive macros to emit real marker impls.
const _: () = {
    fn serde_shaped<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    #[allow(dead_code)]
    fn assert_snapshot_types_are_serde_shaped() {
        serde_shaped::<RepoSnapshot>();
        serde_shaped::<NamespaceSnapshot>();
        serde_shaped::<AnchorSnapshot>();
        serde_shaped::<EntrySnapshot>();
    }
};

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The version line did not match [`SNAPSHOT_VERSION`].
    Version {
        /// The version line actually found.
        found: String,
    },
    /// A line failed to parse.
    Format {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The decoded data is structurally inconsistent (e.g. anchor ids with
    /// gaps, entries referencing unknown anchors, shard index out of range).
    Inconsistent {
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Version { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found:?} (expected {SNAPSHOT_VERSION:?})"
                )
            }
            SnapshotError::Format { line, message } => {
                write!(f, "snapshot line {line}: {message}")
            }
            SnapshotError::Inconsistent { message } => {
                write!(f, "inconsistent snapshot: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One anchor of a namespace: its id and full-precision centroid values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnchorSnapshot {
    /// The anchor id (dense: ids cover `0..count`).
    pub id: u32,
    /// Full-catalogue signature values of the anchor centroid.
    pub values: Vec<f64>,
}

/// One stored entry of a namespace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntrySnapshot {
    /// The anchor the entry is keyed under.
    pub anchor: u32,
    /// The interference bucket the entry is keyed under.
    pub bucket: u32,
    /// The cached allocation decision.
    pub allocation: ResourceAllocation,
    /// When a tuner produced the entry, in **global fleet time** (tenant
    /// views translate their local clocks at the publish boundary, so TTL
    /// staleness is coherent across tenants and across restarts).
    pub tuned_at_secs: f64,
    /// The tenant whose tuning produced the entry.
    pub owner: usize,
    /// Total lookups served from the entry.
    pub hits: u64,
    /// Lookups served to tenants other than the owner.
    pub cross_tenant_hits: u64,
}

/// One namespace: anchors in id order plus entries in key order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamespaceSnapshot {
    /// The namespace id.
    pub id: u64,
    /// All anchors, in strictly increasing id order.
    pub anchors: Vec<AnchorSnapshot>,
    /// All entries, in `(anchor, bucket)` order.
    pub entries: Vec<EntrySnapshot>,
}

/// The complete, plain-data image of a [`crate::SharedSignatureRepository`].
///
/// Obtained from [`crate::SharedSignatureRepository::to_snapshot`] and turned
/// back into a repository by
/// [`crate::SharedSignatureRepository::from_snapshot`]; [`encode`] and
/// [`decode`] convert it to and from the persistent text form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepoSnapshot {
    /// Number of lock-striped shards.
    pub shards: usize,
    /// The anchor match tolerance the repository was built with.
    pub match_tolerance: f64,
    /// TTL in seconds, if entries expire.
    pub ttl_secs: Option<f64>,
    /// The global fleet clock when the snapshot was taken (the high-water
    /// mark of times the repository has seen). A warm start resumes the
    /// fleet clock here, so entry ages — and with them TTL expiry — carry
    /// over restarts instead of resetting to zero.
    pub clock_secs: f64,
    /// Every non-empty namespace, in (shard index, namespace id) order.
    pub namespaces: Vec<NamespaceSnapshot>,
    /// Per-shard statistics counters, one per shard.
    pub shard_stats: Vec<ShardStats>,
}

impl RepoSnapshot {
    /// Compacts the snapshot in place: drops every entry that never served a
    /// lookup (`hits == 0`), the dead weight a long-lived fleet cache
    /// accretes from one-off workloads. Anchors are kept even when their
    /// last entry goes — restore requires dense anchor ids, and a warm
    /// workload may re-publish under an existing anchor. Returns how many
    /// entries were dropped.
    pub fn compact(&mut self) -> usize {
        let mut dropped = 0;
        for ns in &mut self.namespaces {
            let before = ns.entries.len();
            ns.entries.retain(|e| e.hits > 0);
            dropped += before - ns.entries.len();
        }
        dropped
    }
}

/// Encodes an `f64` as its IEEE-754 bit pattern (`fb` + 16 hex digits):
/// bit-exact and byte-deterministic, unlike decimal formatting.
fn write_f64(out: &mut String, v: f64) {
    out.push_str("fb");
    out.push_str(&format!("{:016x}", v.to_bits()));
}

fn parse_f64(tok: &str) -> Option<f64> {
    let hex = tok.strip_prefix("fb")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
}

/// Serializes a snapshot to the versioned text format. Output is
/// byte-deterministic: identical repositories encode to identical strings.
pub fn encode(snapshot: &RepoSnapshot) -> String {
    let mut out = String::new();
    out.push_str(SNAPSHOT_VERSION);
    out.push('\n');
    out.push_str(&format!("config shards={} tolerance=", snapshot.shards));
    write_f64(&mut out, snapshot.match_tolerance);
    out.push_str(" ttl=");
    match snapshot.ttl_secs {
        Some(secs) => write_f64(&mut out, secs),
        None => out.push_str("none"),
    }
    out.push_str(" clock=");
    write_f64(&mut out, snapshot.clock_secs);
    out.push('\n');
    for ns in &snapshot.namespaces {
        out.push_str(&format!("namespace {}\n", ns.id));
        for anchor in &ns.anchors {
            out.push_str(&format!("anchor {}", anchor.id));
            for &v in &anchor.values {
                out.push(' ');
                write_f64(&mut out, v);
            }
            out.push('\n');
        }
        for e in &ns.entries {
            let ty = match e.allocation.instance_type() {
                InstanceType::Large => 'L',
                InstanceType::ExtraLarge => 'X',
            };
            out.push_str(&format!(
                "entry {} {} {} {} ",
                e.anchor,
                e.bucket,
                ty,
                e.allocation.count()
            ));
            write_f64(&mut out, e.tuned_at_secs);
            out.push_str(&format!(
                " {} {} {}\n",
                e.owner, e.hits, e.cross_tenant_hits
            ));
        }
    }
    for (idx, s) in snapshot.shard_stats.iter().enumerate() {
        out.push_str(&format!(
            "shard {idx} {} {} {} {} {} {}\n",
            s.hits, s.misses, s.insertions, s.evictions, s.cross_tenant_hits, s.anchors_created
        ));
    }
    out.push_str("end\n");
    out
}

fn format_err(line: usize, message: impl Into<String>) -> SnapshotError {
    SnapshotError::Format {
        line,
        message: message.into(),
    }
}

fn parse_int<T: std::str::FromStr>(tok: &str, line: usize, what: &str) -> Result<T, SnapshotError> {
    tok.parse()
        .map_err(|_| format_err(line, format!("bad {what} {tok:?}")))
}

fn parse_float(tok: &str, line: usize, what: &str) -> Result<f64, SnapshotError> {
    parse_f64(tok).ok_or_else(|| {
        format_err(
            line,
            format!("bad {what} {tok:?} (expected fb<16 hex digits>)"),
        )
    })
}

/// Parses the versioned text format back into a [`RepoSnapshot`].
pub fn decode(text: &str) -> Result<RepoSnapshot, SnapshotError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (_, version) = lines.next().ok_or_else(|| SnapshotError::Version {
        found: String::new(),
    })?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::Version {
            found: version.to_string(),
        });
    }

    let (config_line_no, config_line) = lines
        .next()
        .ok_or_else(|| format_err(2, "missing config line"))?;
    let mut shards = None;
    let mut tolerance = None;
    let mut ttl_secs = None;
    let mut clock_secs = None;
    let mut fields = config_line.split_whitespace();
    if fields.next() != Some("config") {
        return Err(format_err(config_line_no, "expected `config ...`"));
    }
    for field in fields {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format_err(config_line_no, format!("bad config field {field:?}")))?;
        match key {
            "shards" => shards = Some(parse_int::<usize>(value, config_line_no, "shard count")?),
            "tolerance" => tolerance = Some(parse_float(value, config_line_no, "tolerance")?),
            "ttl" => {
                ttl_secs = Some(if value == "none" {
                    None
                } else {
                    Some(parse_float(value, config_line_no, "ttl")?)
                })
            }
            "clock" => clock_secs = Some(parse_float(value, config_line_no, "clock")?),
            other => {
                return Err(format_err(
                    config_line_no,
                    format!("unknown config key {other:?}"),
                ))
            }
        }
    }
    let shards = shards.ok_or_else(|| format_err(config_line_no, "config is missing `shards`"))?;
    let match_tolerance =
        tolerance.ok_or_else(|| format_err(config_line_no, "config is missing `tolerance`"))?;
    let ttl_secs = ttl_secs.ok_or_else(|| format_err(config_line_no, "config is missing `ttl`"))?;
    let clock_secs =
        clock_secs.ok_or_else(|| format_err(config_line_no, "config is missing `clock`"))?;

    let mut namespaces: Vec<NamespaceSnapshot> = Vec::new();
    let mut shard_stats: Vec<(usize, ShardStats)> = Vec::new();
    let mut ended = false;
    for (line_no, line) in &mut lines {
        let mut toks = line.split_whitespace();
        let Some(head) = toks.next() else {
            return Err(format_err(line_no, "blank line"));
        };
        match head {
            "namespace" => {
                let id = parse_int::<u64>(
                    toks.next()
                        .ok_or_else(|| format_err(line_no, "namespace needs an id"))?,
                    line_no,
                    "namespace id",
                )?;
                if toks.next().is_some() {
                    return Err(format_err(line_no, "trailing tokens after namespace id"));
                }
                namespaces.push(NamespaceSnapshot {
                    id,
                    anchors: Vec::new(),
                    entries: Vec::new(),
                });
            }
            "anchor" => {
                let ns = namespaces
                    .last_mut()
                    .ok_or_else(|| format_err(line_no, "anchor before any namespace"))?;
                if !ns.entries.is_empty() {
                    return Err(format_err(line_no, "anchor after entries in a namespace"));
                }
                let id = parse_int::<u32>(
                    toks.next()
                        .ok_or_else(|| format_err(line_no, "anchor needs an id"))?,
                    line_no,
                    "anchor id",
                )?;
                let values = toks
                    .map(|t| parse_float(t, line_no, "anchor value"))
                    .collect::<Result<Vec<f64>, _>>()?;
                ns.anchors.push(AnchorSnapshot { id, values });
            }
            "entry" => {
                let ns = namespaces
                    .last_mut()
                    .ok_or_else(|| format_err(line_no, "entry before any namespace"))?;
                let mut next = |what: &str| {
                    toks.next()
                        .ok_or_else(|| format_err(line_no, format!("entry is missing {what}")))
                };
                let anchor = parse_int::<u32>(next("anchor")?, line_no, "entry anchor")?;
                let bucket = parse_int::<u32>(next("bucket")?, line_no, "entry bucket")?;
                let ty = match next("instance type")? {
                    "L" => InstanceType::Large,
                    "X" => InstanceType::ExtraLarge,
                    other => {
                        return Err(format_err(line_no, format!("bad instance type {other:?}")))
                    }
                };
                let count = parse_int::<u32>(next("count")?, line_no, "entry count")?;
                let tuned_at_secs = parse_float(next("tuned_at")?, line_no, "tuned_at")?;
                let owner = parse_int::<usize>(next("owner")?, line_no, "entry owner")?;
                let hits = parse_int::<u64>(next("hits")?, line_no, "entry hits")?;
                let cross = parse_int::<u64>(next("cross hits")?, line_no, "entry cross hits")?;
                if toks.next().is_some() {
                    return Err(format_err(line_no, "trailing tokens after entry"));
                }
                let allocation = ResourceAllocation::new(ty, count)
                    .map_err(|e| format_err(line_no, format!("bad allocation: {e}")))?;
                ns.entries.push(EntrySnapshot {
                    anchor,
                    bucket,
                    allocation,
                    tuned_at_secs,
                    owner,
                    hits,
                    cross_tenant_hits: cross,
                });
            }
            "shard" => {
                let mut next = |what: &str| {
                    toks.next()
                        .ok_or_else(|| format_err(line_no, format!("shard is missing {what}")))
                };
                let idx = parse_int::<usize>(next("index")?, line_no, "shard index")?;
                let stats = ShardStats {
                    hits: parse_int(next("hits")?, line_no, "shard hits")?,
                    misses: parse_int(next("misses")?, line_no, "shard misses")?,
                    insertions: parse_int(next("insertions")?, line_no, "shard insertions")?,
                    evictions: parse_int(next("evictions")?, line_no, "shard evictions")?,
                    cross_tenant_hits: parse_int(next("cross")?, line_no, "shard cross hits")?,
                    anchors_created: parse_int(next("anchors")?, line_no, "shard anchors")?,
                };
                if toks.next().is_some() {
                    return Err(format_err(line_no, "trailing tokens after shard"));
                }
                shard_stats.push((idx, stats));
            }
            "end" => {
                ended = true;
                break;
            }
            other => return Err(format_err(line_no, format!("unknown record {other:?}"))),
        }
    }
    if !ended {
        return Err(SnapshotError::Inconsistent {
            message: "snapshot is truncated (no `end` line)".into(),
        });
    }
    if let Some((line_no, _)) = lines.next() {
        return Err(format_err(line_no, "data after `end`"));
    }

    if shards == 0 || shards > MAX_SHARDS {
        return Err(SnapshotError::Inconsistent {
            message: format!("shard count {shards} outside 1..={MAX_SHARDS}"),
        });
    }
    let mut stats = vec![ShardStats::default(); shards];
    let mut seen = vec![false; shards];
    for (idx, s) in shard_stats {
        if idx >= shards {
            return Err(SnapshotError::Inconsistent {
                message: format!("shard index {idx} out of range (shards={shards})"),
            });
        }
        if std::mem::replace(&mut seen[idx], true) {
            return Err(SnapshotError::Inconsistent {
                message: format!("duplicate shard record {idx}"),
            });
        }
        stats[idx] = s;
    }
    // The encoder always writes one record per shard; a gap means the
    // snapshot was truncated or hand-mangled. Reject rather than silently
    // zero that shard's statistics.
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(SnapshotError::Inconsistent {
            message: format!("missing shard record {missing} (shards={shards})"),
        });
    }

    Ok(RepoSnapshot {
        shards,
        match_tolerance,
        ttl_secs,
        clock_secs,
        namespaces,
        shard_stats: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RepoSnapshot {
        RepoSnapshot {
            shards: 4,
            match_tolerance: 0.1,
            ttl_secs: Some(86_400.0),
            clock_secs: 7_200.0,
            namespaces: vec![NamespaceSnapshot {
                id: 42,
                anchors: vec![
                    AnchorSnapshot {
                        id: 0,
                        values: vec![10.0, -0.5, 0.0],
                    },
                    AnchorSnapshot {
                        id: 1,
                        values: vec![7.0, 7.0],
                    },
                ],
                entries: vec![EntrySnapshot {
                    anchor: 0,
                    bucket: 2,
                    allocation: ResourceAllocation::extra_large(3),
                    tuned_at_secs: 3600.0,
                    owner: 9,
                    hits: 12,
                    cross_tenant_hits: 4,
                }],
            }],
            shard_stats: vec![ShardStats::default(); 4],
        }
    }

    #[test]
    fn encode_decode_round_trips_and_is_deterministic() {
        let snap = sample();
        let text = encode(&snap);
        assert_eq!(text, encode(&snap), "encoding must be deterministic");
        let back = decode(&text).expect("decodes");
        assert_eq!(back, snap);
        assert_eq!(encode(&back), text, "re-encoding is byte-identical");
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e308,
            -2.5e-17,
            f64::NAN,
        ] {
            let mut s = String::new();
            write_f64(&mut s, v);
            let back = parse_f64(&s).expect("parses");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} did not round-trip");
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut text = encode(&sample());
        text = text.replace("v1", "v0");
        assert!(matches!(decode(&text), Err(SnapshotError::Version { .. })));
    }

    #[test]
    fn truncated_and_trailing_snapshots_are_rejected() {
        let text = encode(&sample());
        let truncated = text.trim_end_matches("end\n");
        assert!(matches!(
            decode(truncated),
            Err(SnapshotError::Inconsistent { .. })
        ));
        let trailing = format!("{text}junk\n");
        assert!(matches!(
            decode(&trailing),
            Err(SnapshotError::Format { .. })
        ));
    }

    #[test]
    fn absurd_shard_counts_are_rejected_not_allocated() {
        let text = encode(&sample()).replace("shards=4", "shards=9000000000000000");
        match decode(&text) {
            Err(SnapshotError::Inconsistent { message }) => {
                assert!(message.contains("shard count"), "{message}");
            }
            other => panic!("expected an inconsistency error, got {other:?}"),
        }
        let mut snap = sample();
        snap.shards = MAX_SHARDS + 1;
        assert!(crate::SharedSignatureRepository::from_snapshot(&snap).is_err());
    }

    #[test]
    fn missing_shard_records_are_rejected() {
        let text: String = encode(&sample())
            .lines()
            .filter(|l| !l.starts_with("shard 2 "))
            .map(|l| format!("{l}\n"))
            .collect();
        match decode(&text) {
            Err(SnapshotError::Inconsistent { message }) => {
                assert!(message.contains("missing shard record 2"), "{message}");
            }
            other => panic!("expected an inconsistency error, got {other:?}"),
        }
    }

    #[test]
    fn garbled_lines_report_their_line_number() {
        let text = encode(&sample()).replace("entry 0 2 X 3", "entry 0 2 Q 3");
        match decode(&text) {
            Err(SnapshotError::Format { line, message }) => {
                assert!(line > 2, "line {line}");
                assert!(message.contains("instance type"), "{message}");
            }
            other => panic!("expected a format error, got {other:?}"),
        }
    }
}
