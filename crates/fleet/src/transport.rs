//! The commit-transport layer: **how** tenant-buffered repository operations
//! reach the shared store, and what consistency tenants observe while they
//! run.
//!
//! The fleet engine used to hard-code one coordination strategy — the
//! bulk-synchronous epoch barrier — inside its run loop. This module turns
//! that strategy into a pluggable [`CommitTransport`]:
//!
//! * [`BspBarrier`] is the classic engine, verbatim: worker threads step
//!   disjoint tenant chunks through an epoch, the barrier drains every
//!   outbox in tenant order, commits one batch per shard, then runs the TTL
//!   sweep. Mid-epoch the store is frozen, so runs are **bit-deterministic**
//!   for any worker count.
//! * [`BoundedStaleness`] frees tenants onto their own threads: a tenant may
//!   run up to `K` epochs ahead of the fleet-wide commit frontier, so fast
//!   tenants never wait at a barrier for slow ones. Each tenant's view of the
//!   shared repository is **at most `K` epochs stale** (enforced by blocking
//!   on the frontier, measured in [`TransportOutcome`]'s staleness
//!   histograms). With `K = 0` a tenant may not enter an epoch until every
//!   prior epoch is fully committed — no tenant can observe or miss anything
//!   a BSP run would not — so the output provably **bit-matches**
//!   [`BspBarrier`] (property-tested in `tests/properties.rs`). With `K > 0`
//!   the store changes underneath running tenants, trading the bitwise
//!   reproducibility of results for pipeline parallelism; the commit
//!   *sequence* itself stays deterministic (epoch by epoch, tenant order
//!   within each epoch).
//!
//! Epoch reports travel over the vendored mini mpsc channel
//! (`crossbeam-channel`), so swapping in a real channel or a tokio runtime
//! later is a transport-local change. New consistency models (e.g. per-shard
//! frontiers, quorum commits) are one [`CommitTransport`] impl away — the
//! engine only prepares tenants and consumes the [`TransportOutcome`].

use crate::engine::{RunState, SimulationEngine};
use crate::shared_repo::{PendingOp, SharedSignatureRepository};
use dejavu_baselines::{FixedMax, RightScale};
use dejavu_cloud::ProvisioningController;
use dejavu_core::DejaVuController;
use dejavu_services::ServiceModel;
use dejavu_simcore::SimTime;
use std::sync::{Arc, Condvar, Mutex};

/// Shared handle to a tenant's buffered operations; the transport drains it
/// at every epoch boundary of that tenant.
pub type Outbox = Arc<Mutex<Vec<PendingOp>>>;

/// One tenant's complete in-flight simulation plus its tenancy window in
/// epochs. Built by the fleet engine, stepped by a transport through a
/// [`TenantHandle`], finalized by the engine.
pub(crate) struct TenantRun {
    pub(crate) engine: SimulationEngine,
    pub(crate) service: Box<dyn ServiceModel>,
    pub(crate) controller: DejaVuController,
    pub(crate) state: RunState,
    pub(crate) fixed: Option<(FixedMax, RunState)>,
    pub(crate) rightscale: Option<(RightScale, RunState)>,
    /// First global epoch in which the tenant steps (its join barrier).
    pub(crate) start_epoch: usize,
    /// Global epoch count at whose barrier the tenant retires, if it leaves.
    pub(crate) stop_epoch: Option<usize>,
    /// Nominal end of the tenancy window: `min(stop, start + trace epochs)`.
    pub(crate) end_epoch: usize,
    /// Epochs since join at which the first `FleetReuse` fired (1-based).
    pub(crate) first_reuse_epoch: Option<usize>,
    /// Epochs this tenant has actually been stepped through.
    pub(crate) active_epochs: usize,
    /// Set at the barrier that retires the tenant; freezes all stepping.
    pub(crate) retired: bool,
    /// The tenant's buffered shared-store operations (None when isolated).
    pub(crate) outbox: Option<Outbox>,
}

/// Steps one run up to (excluding) `epoch_end`.
fn step_until(
    engine: &SimulationEngine,
    service: &dyn ServiceModel,
    state: &mut RunState,
    controller: &mut dyn ProvisioningController,
    epoch_end: SimTime,
) {
    while let Some(t) = state.next_tick_time() {
        if t.as_secs() >= epoch_end.as_secs() {
            break;
        }
        engine.step(state, service, controller);
    }
}

impl TenantRun {
    /// Steps every in-flight run of this tenant up to the barrier ending
    /// global epoch `epoch` (0-based), honouring the tenancy window. Times
    /// handed to the tenant are **local** (zero at its join barrier), so a
    /// late joiner steps exactly like a tenant that started a fresh fleet.
    fn step_epoch(&mut self, epoch: usize, epoch_secs: f64) {
        if self.retired {
            return;
        }
        let end_epoch = epoch + 1;
        if end_epoch <= self.start_epoch {
            return; // not admitted yet
        }
        let mut local_epochs = end_epoch - self.start_epoch;
        if let Some(stop) = self.stop_epoch {
            let cap = stop.saturating_sub(self.start_epoch);
            if cap == 0 {
                return;
            }
            local_epochs = local_epochs.min(cap);
        }
        if local_epochs <= self.active_epochs {
            return; // already stepped past its retirement barrier
        }
        self.active_epochs = local_epochs;
        let epoch_end = SimTime::from_secs(epoch_secs * local_epochs as f64);
        let service = self.service.as_ref();
        step_until(
            &self.engine,
            service,
            &mut self.state,
            &mut self.controller,
            epoch_end,
        );
        if let Some((controller, state)) = &mut self.fixed {
            step_until(&self.engine, service, state, controller, epoch_end);
        }
        if let Some((controller, state)) = &mut self.rightscale {
            step_until(&self.engine, service, state, controller, epoch_end);
        }
    }

    /// Whether the tenant retires at the barrier ending global epoch `epoch`.
    fn retires_at(&self, epoch: usize) -> bool {
        let end_epoch = epoch + 1;
        end_epoch > self.start_epoch
            && (self.state.is_done() || self.stop_epoch.is_some_and(|stop| end_epoch >= stop))
    }
}

/// A transport's per-tenant handle: the only surface through which a backend
/// steps a tenant, drains its outbox and keeps its convergence bookkeeping.
/// `Send`, so backends can move tenants onto worker threads.
pub struct TenantHandle<'a> {
    index: usize,
    run: &'a mut TenantRun,
}

impl TenantHandle<'_> {
    /// The tenant's position in the scenario (also its commit order).
    pub fn index(&self) -> usize {
        self.index
    }

    /// First global epoch in which the tenant steps.
    pub fn start_epoch(&self) -> usize {
        self.run.start_epoch
    }

    /// Nominal end of the tenancy window (exclusive global epoch).
    pub fn end_epoch(&self) -> usize {
        self.run.end_epoch
    }

    /// Whether the tenant has been retired by a previous barrier.
    pub fn retired(&self) -> bool {
        self.run.retired
    }

    /// Steps the tenant (and its ride-along baselines) through global epoch
    /// `epoch`. A retired or not-yet-admitted tenant is a no-op.
    pub fn step_epoch(&mut self, epoch: usize, ctx: &FleetContext<'_>) {
        self.run.step_epoch(epoch, ctx.epoch_secs);
    }

    /// Takes every operation the tenant buffered since the last drain.
    pub fn drain_outbox(&mut self) -> Vec<PendingOp> {
        match &self.run.outbox {
            Some(outbox) => std::mem::take(&mut *outbox.lock().expect("tenant outbox poisoned")),
            None => Vec::new(),
        }
    }

    /// The tenant's cumulative repository `(hits, misses)`.
    pub fn repo_stats(&self) -> (u64, u64) {
        let stats = self.run.controller.stats();
        (stats.repository.hits, stats.repository.misses)
    }

    /// Records the epoch of the tenant's first `FleetReuse`, if it just
    /// happened — the newcomer-convergence metric.
    pub fn observe_reuse(&mut self, epoch: usize) {
        if self.run.first_reuse_epoch.is_none()
            && epoch + 1 > self.run.start_epoch
            && self.run.controller.stats().fleet_reuses > 0
        {
            self.run.first_reuse_epoch = Some(epoch + 1 - self.run.start_epoch);
        }
    }

    /// Whether the tenant retires at the barrier ending `epoch`.
    pub fn retires_at(&self, epoch: usize) -> bool {
        self.run.retires_at(epoch)
    }

    /// Retires the tenant: all subsequent stepping becomes a no-op and its
    /// bookkeeping freezes, exactly as when the barrier engine dropped
    /// retired tenants from its run set.
    pub fn retire(&mut self) {
        self.run.retired = true;
    }
}

/// The shared, thread-safe side of a fleet run a transport commits through.
#[derive(Clone, Copy)]
pub struct FleetContext<'a> {
    shared: &'a SharedSignatureRepository,
    epochs: usize,
    epoch_secs: f64,
    origin_secs: f64,
    workers: usize,
}

impl FleetContext<'_> {
    /// The fleet horizon in epochs.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Length of one epoch in simulated seconds.
    pub fn epoch_secs(&self) -> f64 {
        self.epoch_secs
    }

    /// Worker threads the engine was configured with (advisory: a transport
    /// may use its own threading model).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies one epoch's operations (in the given order) through the
    /// shared repository's batched commit path — one write lock per touched
    /// shard. Returns one applied-flag per operation.
    pub fn commit(&self, ops: &[PendingOp]) -> Vec<bool> {
        self.shared.apply_batch(ops)
    }

    /// Runs the TTL sweep for the barrier ending global epoch `epoch`.
    pub fn sweep(&self, epoch: usize) {
        self.shared.evict_stale(SimTime::from_secs(
            self.origin_secs + self.epoch_secs * (epoch + 1) as f64,
        ));
    }
}

/// Everything a transport needs to drive one fleet run: the tenants and the
/// shared-store context. Built by the fleet engine.
pub struct FleetHarness<'a> {
    pub(crate) runs: &'a mut [TenantRun],
    pub(crate) shared: &'a SharedSignatureRepository,
    pub(crate) epochs: usize,
    pub(crate) epoch_secs: f64,
    pub(crate) origin_secs: f64,
    pub(crate) workers: usize,
}

impl FleetHarness<'_> {
    /// Splits the harness into the shared context and one handle per tenant,
    /// so a backend can distribute tenants across threads.
    pub fn split(&mut self) -> (FleetContext<'_>, Vec<TenantHandle<'_>>) {
        let ctx = FleetContext {
            shared: self.shared,
            epochs: self.epochs,
            epoch_secs: self.epoch_secs,
            origin_secs: self.origin_secs,
            workers: self.workers,
        };
        let handles = self
            .runs
            .iter_mut()
            .enumerate()
            .map(|(index, run)| TenantHandle { index, run })
            .collect();
        (ctx, handles)
    }
}

/// Histogram over observed staleness values (in epochs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StalenessHistogram {
    counts: Vec<u64>,
}

impl StalenessHistogram {
    /// Records one observation of `staleness` epochs.
    pub fn record(&mut self, staleness: usize) {
        if self.counts.len() <= staleness {
            self.counts.resize(staleness + 1, 0);
        }
        self.counts[staleness] += 1;
    }

    /// Observation counts, indexed by staleness in epochs.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The largest staleness ever observed (0 when empty).
    pub fn max(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Mean observed staleness (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(s, &c)| s as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }
}

/// What a transport reports about its own behaviour: which backend ran, how
/// stale tenant views were, and how stale the views serving fleet reuses
/// were. Carried into [`crate::FleetReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportSummary {
    /// Backend label (`"bsp"`, `"async(staleness=K)"`, …).
    pub name: String,
    /// Observed view staleness, one observation per tenant-epoch actually
    /// stepped: how many epochs the commit frontier trailed the tenant when
    /// it entered the epoch. All-zero under [`BspBarrier`].
    pub view_staleness: StalenessHistogram,
    /// Reuse latency: for every committed cross-tenant hit, the view
    /// staleness of the epoch that produced it — how fresh the shared
    /// knowledge serving reuses actually was.
    pub reuse_staleness: StalenessHistogram,
}

impl TransportSummary {
    /// The summary of a barrier run that never left epoch lock-step (also the
    /// placeholder for hand-built reports).
    pub fn bsp() -> Self {
        TransportSummary {
            name: "bsp".to_string(),
            view_staleness: StalenessHistogram::default(),
            reuse_staleness: StalenessHistogram::default(),
        }
    }
}

/// Everything a transport hands back to the engine after driving a fleet.
#[derive(Debug, Clone)]
pub struct TransportOutcome {
    /// Transport self-telemetry (label + staleness histograms).
    pub summary: TransportSummary,
    /// Fleet-wide cumulative repository hit rate after each epoch.
    pub hit_rate_curve: Vec<f64>,
    /// Per-tenant committed cross-tenant hits, in tenant order.
    pub cross_tenant_hits: Vec<u64>,
}

impl TransportOutcome {
    fn new(name: String, tenants: usize) -> Self {
        TransportOutcome {
            summary: TransportSummary {
                name,
                view_staleness: StalenessHistogram::default(),
                reuse_staleness: StalenessHistogram::default(),
            },
            hit_rate_curve: Vec::new(),
            cross_tenant_hits: vec![0; tenants],
        }
    }
}

/// A commit transport: the strategy that schedules tenant stepping and moves
/// buffered operations into the shared repository.
///
/// Implementations must commit each epoch's operations **in tenant order**
/// (ties in the scenario's commit sequence are what keep shard-level results
/// reproducible) and run the TTL sweep once per epoch; beyond that they are
/// free to choose any consistency model between tenants and the store.
pub trait CommitTransport: Send + Sync {
    /// Label recorded in reports and benchmarks.
    fn name(&self) -> String;

    /// Drives every tenant from its join barrier to its retirement,
    /// committing outboxes along the way.
    fn drive(&self, harness: &mut FleetHarness<'_>) -> TransportOutcome;
}

/// Which transport a fleet run uses (the cloneable configuration surface;
/// [`TransportConfig::backend`] materializes the backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportConfig {
    /// The lock-step BSP epoch barrier: bit-deterministic for any worker
    /// count. The default.
    #[default]
    Bsp,
    /// Free-running tenant threads observing the shared repository at most
    /// `staleness` epochs stale. `staleness = 0` bit-matches
    /// [`TransportConfig::Bsp`]; larger values trade bitwise result
    /// reproducibility for pipeline parallelism.
    BoundedStaleness {
        /// Maximum number of epochs a tenant's view may trail the commit
        /// frontier.
        staleness: usize,
    },
}

impl TransportConfig {
    /// Materializes the configured backend.
    pub fn backend(self) -> Box<dyn CommitTransport> {
        match self {
            TransportConfig::Bsp => Box::new(BspBarrier),
            TransportConfig::BoundedStaleness { staleness } => {
                Box::new(BoundedStaleness { staleness })
            }
        }
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// Commits one epoch's operations and accounts applied cross-tenant hits.
/// `op_tenants[i]`/`op_staleness[i]` describe which tenant buffered `ops[i]`
/// and how stale its view was during that epoch.
fn commit_epoch(
    ctx: &FleetContext<'_>,
    ops: &[PendingOp],
    op_tenants: &[usize],
    op_staleness: &[usize],
    out: &mut TransportOutcome,
) {
    if ops.is_empty() {
        return;
    }
    let applied = ctx.commit(ops);
    for (((op, &tenant), &staleness), applied) in
        ops.iter().zip(op_tenants).zip(op_staleness).zip(applied)
    {
        // A hit only counts if the store still held the entry at commit time
        // (an earlier publish in the same barrier can have re-anchored the
        // namespace), keeping the engine-side and store-side cross-tenant
        // counters consistent.
        if applied && matches!(op, PendingOp::RecordHit { .. }) {
            out.cross_tenant_hits[tenant] += 1;
            out.summary.reuse_staleness.record(staleness);
        }
    }
}

/// The classic bulk-synchronous barrier transport.
///
/// Within an epoch each worker thread steps a disjoint chunk of tenants,
/// reading the shared repository through read-only, epoch-frozen snapshots
/// while buffering writes in per-tenant outboxes. At the epoch barrier the
/// outboxes are drained **in tenant order**, applied through one batched
/// commit per shard, and the TTL sweep runs. Mid-epoch the shared store never
/// changes and commits have a fixed order, so the fleet result is a pure
/// function of the scenario — it does not depend on thread count or OS
/// scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct BspBarrier;

impl CommitTransport for BspBarrier {
    fn name(&self) -> String {
        "bsp".to_string()
    }

    fn drive(&self, harness: &mut FleetHarness<'_>) -> TransportOutcome {
        let (ctx, mut handles) = harness.split();
        let mut out = TransportOutcome::new(self.name(), handles.len());
        let chunk_size = handles.len().div_ceil(ctx.workers.max(1)).max(1);
        for epoch in 0..ctx.epochs {
            std::thread::scope(|scope| {
                for chunk in handles.chunks_mut(chunk_size) {
                    scope.spawn(move || {
                        for handle in chunk {
                            handle.step_epoch(epoch, &ctx);
                        }
                    });
                }
            });
            // Epoch barrier: publish buffered writes in tenant order, then
            // age out stale entries. This is the only place the shared store
            // changes under this transport.
            let mut ops: Vec<PendingOp> = Vec::new();
            let mut op_tenants: Vec<usize> = Vec::new();
            for handle in &mut handles {
                let drained = handle.drain_outbox();
                op_tenants.resize(op_tenants.len() + drained.len(), handle.index());
                ops.extend(drained);
            }
            let op_staleness = vec![0usize; ops.len()];
            commit_epoch(&ctx, &ops, &op_tenants, &op_staleness, &mut out);
            ctx.sweep(epoch);

            // Convergence bookkeeping, then barrier-aligned retirement.
            let mut hits = 0u64;
            let mut misses = 0u64;
            for handle in &mut handles {
                let (h, m) = handle.repo_stats();
                hits += h;
                misses += m;
                if !handle.retired() {
                    // Mirror the bounded-staleness tenant loop exactly: one
                    // observation per epoch inside the tenancy window (a
                    // zero-length window — start == stop — steps nothing
                    // and records nothing).
                    if epoch >= handle.start_epoch() && epoch < handle.end_epoch() {
                        out.summary.view_staleness.record(0);
                    }
                    handle.observe_reuse(epoch);
                    if handle.retires_at(epoch) {
                        handle.retire();
                    }
                }
            }
            out.hit_rate_curve.push(hit_rate(hits, misses));
        }
        out
    }
}

/// The fleet-wide commit frontier: how many epochs have been fully committed.
/// Tenant threads block on it to honour the staleness bound; the committer
/// advances it after each epoch's commit + sweep. The frontier can be
/// **poisoned** when the committer unwinds: blocked tenants must wake up and
/// die rather than sleep forever, so the original panic — not a deadlock —
/// reaches the caller.
#[derive(Default)]
struct Frontier {
    /// `(committed epochs, poisoned)`.
    state: Mutex<(usize, bool)>,
    advanced: Condvar,
}

impl Frontier {
    /// Blocks until entering `epoch` would leave the caller at most `bound`
    /// epochs ahead of the committed frontier; returns the observed staleness
    /// (how many epochs the frontier trailed the caller at admission).
    /// Panics if the frontier was poisoned while waiting.
    fn wait_within(&self, epoch: usize, bound: usize) -> usize {
        let mut state = self.state.lock().expect("frontier poisoned");
        loop {
            assert!(!state.1, "transport committer unwound; tenant aborting");
            if epoch <= state.0 + bound {
                return epoch.saturating_sub(state.0);
            }
            state = self.advanced.wait(state).expect("frontier poisoned");
        }
    }

    fn advance(&self, committed_epochs: usize) {
        self.state.lock().expect("frontier poisoned").0 = committed_epochs;
        self.advanced.notify_all();
    }

    /// Marks the frontier dead and wakes every waiter (see [`PoisonOnDrop`]).
    fn poison(&self) {
        self.state.lock().expect("frontier poisoned").1 = true;
        self.advanced.notify_all();
    }
}

/// Poisons the frontier if dropped while armed — the committer holds one so
/// that its own unwind (a lost report, a panic surfaced by a tenant) releases
/// every tenant blocked in [`Frontier::wait_within`] before `thread::scope`
/// starts joining; without it, a committer panic would deadlock the scope.
struct PoisonOnDrop<'a> {
    frontier: &'a Frontier,
    armed: bool,
}

impl Drop for PoisonOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.frontier.poison();
        }
    }
}

/// One tenant's end-of-epoch report to the committer.
struct EpochReport {
    tenant: usize,
    epoch: usize,
    /// Frontier lag observed when the tenant entered the epoch.
    staleness: usize,
    ops: Vec<PendingOp>,
    /// Cumulative repository stats after this epoch.
    hits: u64,
    misses: u64,
    /// This is the tenant's final report (retirement or window end).
    last: bool,
    /// The tenant thread unwound mid-epoch (sent from its drop guard): the
    /// committer must poison the frontier and re-panic instead of waiting
    /// forever for reports that will never come.
    aborted: bool,
}

/// Sends an `aborted` report if a tenant thread unwinds before completing its
/// window, so the committer learns about the death instead of deadlocking on
/// the missing epoch reports; `disarm` marks a clean exit.
struct AbortOnDrop<'a> {
    tx: &'a crossbeam_channel::Sender<EpochReport>,
    tenant: usize,
    armed: bool,
}

impl AbortOnDrop<'_> {
    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for AbortOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            // A failed send means the committer is already gone; nothing to
            // notify.
            let _ = self.tx.send(EpochReport {
                tenant: self.tenant,
                epoch: 0,
                staleness: 0,
                ops: Vec::new(),
                hits: 0,
                misses: 0,
                last: true,
                aborted: true,
            });
        }
    }
}

/// The asynchronous bounded-staleness transport.
///
/// Every tenant runs on its own thread, free to advance up to
/// [`staleness`](Self::staleness) epochs beyond the fleet-wide commit
/// frontier; a committer thread assembles each epoch's reports (arriving over
/// the vendored mini mpsc channel), applies them in tenant order, runs the
/// TTL sweep and advances the frontier. Views are therefore never more than
/// `staleness` epochs stale, and with `staleness = 0` the schedule collapses
/// to the BSP barrier: no tenant may enter an epoch before every prior epoch
/// committed, so the store is frozen while anyone reads it and the run
/// bit-matches [`BspBarrier`].
#[derive(Debug, Clone, Copy)]
pub struct BoundedStaleness {
    /// Maximum number of epochs a tenant's view may trail its own position.
    pub staleness: usize,
}

impl CommitTransport for BoundedStaleness {
    fn name(&self) -> String {
        format!("async(staleness={})", self.staleness)
    }

    fn drive(&self, harness: &mut FleetHarness<'_>) -> TransportOutcome {
        let (ctx, handles) = harness.split();
        let tenant_count = handles.len();
        let mut out = TransportOutcome::new(self.name(), tenant_count);
        if ctx.epochs == 0 || tenant_count == 0 {
            return out;
        }
        let windows: Vec<(usize, usize)> = handles
            .iter()
            .map(|h| (h.start_epoch(), h.end_epoch()))
            .collect();
        // How many tenants must report each epoch before it can commit,
        // from the nominal tenancy windows; adjusted when a tenant's `last`
        // report arrives earlier than its nominal end.
        let mut expected = vec![0usize; ctx.epochs];
        for &(start, end) in &windows {
            for slot in &mut expected[start..end.min(ctx.epochs)] {
                *slot += 1;
            }
        }
        let bound = self.staleness;
        let frontier = Frontier::default();
        let (tx, rx) = crossbeam_channel::unbounded::<EpochReport>();
        std::thread::scope(|scope| {
            for mut handle in handles {
                let tx = tx.clone();
                let frontier = &frontier;
                let ctx = &ctx;
                scope.spawn(move || {
                    // If this thread unwinds (a poisoned outbox, a panicking
                    // service model), the guard tells the committer, which
                    // poisons the frontier and re-panics — the failure
                    // surfaces instead of deadlocking the whole fleet.
                    let mut guard = AbortOnDrop {
                        tx: &tx,
                        tenant: handle.index(),
                        armed: true,
                    };
                    let (start, end) = (handle.start_epoch(), handle.end_epoch());
                    for epoch in start..end {
                        let staleness = frontier.wait_within(epoch, bound);
                        handle.step_epoch(epoch, ctx);
                        handle.observe_reuse(epoch);
                        let ops = handle.drain_outbox();
                        let retiring = handle.retires_at(epoch);
                        if retiring {
                            handle.retire();
                        }
                        let (hits, misses) = handle.repo_stats();
                        let last = retiring || epoch + 1 == end;
                        let report = EpochReport {
                            tenant: handle.index(),
                            epoch,
                            staleness,
                            ops,
                            hits,
                            misses,
                            last,
                            aborted: false,
                        };
                        if tx.send(report).is_err() || last {
                            break;
                        }
                    }
                    guard.disarm();
                });
            }
            drop(tx);

            // The committer: collect each epoch's reports, commit them in
            // tenant order, sweep, advance the frontier. If it unwinds for
            // any reason, the guard poisons the frontier first, so blocked
            // tenant threads die (and the scope joins) instead of sleeping
            // forever under a panic.
            let mut poison_guard = PoisonOnDrop {
                frontier: &frontier,
                armed: true,
            };
            let mut pending: Vec<Vec<EpochReport>> = (0..ctx.epochs).map(|_| Vec::new()).collect();
            let mut received = vec![0usize; ctx.epochs];
            let mut cached: Vec<(u64, u64)> = vec![(0, 0); tenant_count];
            let mut next = 0usize;
            while next < ctx.epochs {
                if received[next] < expected[next] {
                    let Ok(report) = rx.recv() else {
                        panic!(
                            "async transport lost epoch reports ({} of {} epochs committed)",
                            next, ctx.epochs
                        );
                    };
                    assert!(
                        !report.aborted,
                        "tenant {} panicked mid-run; aborting the fleet",
                        report.tenant
                    );
                    if report.last {
                        // The tenant retired before its nominal window end:
                        // later epochs no longer wait for it.
                        let nominal_end = windows[report.tenant].1.min(ctx.epochs);
                        for slot in &mut expected[report.epoch + 1..nominal_end] {
                            *slot -= 1;
                        }
                    }
                    received[report.epoch] += 1;
                    pending[report.epoch].push(report);
                    continue;
                }
                let mut batch = std::mem::take(&mut pending[next]);
                batch.sort_by_key(|r| r.tenant);
                let mut ops: Vec<PendingOp> = Vec::new();
                let mut op_tenants: Vec<usize> = Vec::new();
                let mut op_staleness: Vec<usize> = Vec::new();
                for report in &mut batch {
                    let drained = std::mem::take(&mut report.ops);
                    op_tenants.resize(op_tenants.len() + drained.len(), report.tenant);
                    op_staleness.resize(op_staleness.len() + drained.len(), report.staleness);
                    ops.extend(drained);
                }
                commit_epoch(&ctx, &ops, &op_tenants, &op_staleness, &mut out);
                ctx.sweep(next);
                for report in &batch {
                    cached[report.tenant] = (report.hits, report.misses);
                    out.summary.view_staleness.record(report.staleness);
                }
                let hits: u64 = cached.iter().map(|&(h, _)| h).sum();
                let misses: u64 = cached.iter().map(|&(_, m)| m).sum();
                out.hit_rate_curve.push(hit_rate(hits, misses));
                next += 1;
                // Advancing after the sweep keeps `staleness = 0` exact: no
                // tenant enters the next epoch while the store still moves.
                frontier.advance(next);
            }
            poison_guard.armed = false;
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_histogram_summarizes() {
        let mut h = StalenessHistogram::default();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(0);
        h.record(0);
        h.record(2);
        assert_eq!(h.counts(), &[2, 0, 1]);
        assert_eq!(h.total(), 3);
        assert_eq!(h.max(), 2);
        assert!((h.mean() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn transport_config_materializes_named_backends() {
        assert_eq!(TransportConfig::default(), TransportConfig::Bsp);
        assert_eq!(TransportConfig::Bsp.backend().name(), "bsp");
        assert_eq!(
            TransportConfig::BoundedStaleness { staleness: 3 }
                .backend()
                .name(),
            "async(staleness=3)"
        );
    }

    #[test]
    fn poisoned_frontier_wakes_and_kills_waiters() {
        let frontier = Frontier::default();
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| frontier.wait_within(5, 0));
            frontier.poison();
            assert!(
                waiter.join().is_err(),
                "a poisoned frontier must panic its waiters, not strand them"
            );
        });
    }

    #[test]
    fn frontier_blocks_until_within_bound() {
        let frontier = Frontier::default();
        assert_eq!(frontier.wait_within(0, 0), 0);
        frontier.advance(2);
        assert_eq!(frontier.wait_within(3, 1), 1);
        std::thread::scope(|scope| {
            let t = scope.spawn(|| frontier.wait_within(5, 1));
            // The waiter needs the frontier at 4; release it.
            frontier.advance(4);
            assert_eq!(t.join().expect("waiter"), 1);
        });
    }
}
