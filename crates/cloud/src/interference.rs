//! Performance interference from co-located tenants.
//!
//! §4.3 of the paper mimics a co-located tenant by injecting a microbenchmark
//! that occupies 10% or 20% of each VM's CPU and memory over time. We model
//! the same effect as a time-varying fraction of each VM's capacity that is
//! unavailable to the service.

use dejavu_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// The fraction of VM capacity stolen by co-located tenants, in `[0, 0.9]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct InterferenceLevel(f64);

impl InterferenceLevel {
    /// No interference.
    pub const NONE: InterferenceLevel = InterferenceLevel(0.0);

    /// Creates an interference level.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 0.9]`.
    pub fn new(fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=0.9).contains(&fraction),
            "interference fraction must be in [0, 0.9]"
        );
        InterferenceLevel(fraction)
    }

    /// The stolen capacity fraction.
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// Returns true if there is no interference.
    pub fn is_none(self) -> bool {
        self.0 == 0.0
    }

    /// Multiplier applied to a VM's capacity (`1 - fraction`).
    pub fn capacity_multiplier(self) -> f64 {
        1.0 - self.0
    }
}

impl Default for InterferenceLevel {
    fn default() -> Self {
        InterferenceLevel::NONE
    }
}

/// A schedule of interference levels over simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceSchedule {
    /// `(start_secs, level)` steps in time order; the level holds until the next step.
    steps: Vec<(f64, InterferenceLevel)>,
}

impl InterferenceSchedule {
    /// No interference at any time.
    pub fn none() -> Self {
        InterferenceSchedule {
            steps: vec![(0.0, InterferenceLevel::NONE)],
        }
    }

    /// Constant interference.
    pub fn constant(level: InterferenceLevel) -> Self {
        InterferenceSchedule {
            steps: vec![(0.0, level)],
        }
    }

    /// Alternates between the given levels, switching every `period_hours`.
    /// The paper's §4.3 setup alternates between 10% and 20%.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or `period_hours` is not positive.
    pub fn alternating(levels: &[InterferenceLevel], period_hours: f64, total_hours: f64) -> Self {
        assert!(!levels.is_empty(), "need at least one interference level");
        assert!(period_hours > 0.0, "period must be positive");
        let mut steps = Vec::new();
        let mut t = 0.0;
        let mut i = 0;
        while t < total_hours {
            steps.push((t * 3_600.0, levels[i % levels.len()]));
            t += period_hours;
            i += 1;
        }
        InterferenceSchedule { steps }
    }

    /// The paper's interference scenario: 10% and 20% alternating every 4 hours
    /// for a week.
    pub fn paper_scenario() -> Self {
        InterferenceSchedule::alternating(
            &[InterferenceLevel::new(0.10), InterferenceLevel::new(0.20)],
            4.0,
            7.0 * 24.0,
        )
    }

    /// The interference level in effect at `time`.
    pub fn level_at(&self, time: SimTime) -> InterferenceLevel {
        let t = time.as_secs();
        self.steps
            .iter()
            .rev()
            .find(|&&(t0, _)| t0 <= t)
            .map(|&(_, l)| l)
            .unwrap_or(InterferenceLevel::NONE)
    }

    /// Returns true if the schedule never injects interference.
    pub fn is_none(&self) -> bool {
        self.steps.iter().all(|&(_, l)| l.is_none())
    }
}

impl Default for InterferenceSchedule {
    fn default() -> Self {
        InterferenceSchedule::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_bounds() {
        assert_eq!(InterferenceLevel::new(0.2).fraction(), 0.2);
        assert_eq!(InterferenceLevel::new(0.2).capacity_multiplier(), 0.8);
        assert!(InterferenceLevel::NONE.is_none());
    }

    #[test]
    #[should_panic]
    fn rejects_excessive_interference() {
        let _ = InterferenceLevel::new(0.95);
    }

    #[test]
    fn constant_and_none_schedules() {
        let none = InterferenceSchedule::none();
        assert!(none.is_none());
        assert_eq!(
            none.level_at(SimTime::from_hours(5.0)),
            InterferenceLevel::NONE
        );
        let c = InterferenceSchedule::constant(InterferenceLevel::new(0.1));
        assert_eq!(c.level_at(SimTime::from_days(3.0)).fraction(), 0.1);
        assert!(!c.is_none());
    }

    #[test]
    fn alternating_switches_levels() {
        let s = InterferenceSchedule::alternating(
            &[InterferenceLevel::new(0.1), InterferenceLevel::new(0.2)],
            2.0,
            8.0,
        );
        assert_eq!(s.level_at(SimTime::from_hours(0.5)).fraction(), 0.1);
        assert_eq!(s.level_at(SimTime::from_hours(2.5)).fraction(), 0.2);
        assert_eq!(s.level_at(SimTime::from_hours(4.5)).fraction(), 0.1);
    }

    #[test]
    fn paper_scenario_covers_a_week() {
        let s = InterferenceSchedule::paper_scenario();
        let levels: Vec<f64> = (0..168)
            .map(|h| s.level_at(SimTime::from_hours(h as f64 + 0.5)).fraction())
            .collect();
        assert!(levels.iter().all(|&l| l == 0.1 || l == 0.2));
        assert!(levels.contains(&0.1));
        assert!(levels.contains(&0.2));
    }
}
