//! Command-line entry point that regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p dejavu-experiments --release -- all
//! cargo run -p dejavu-experiments --release -- fig6 fig8 --seed 7
//! ```

use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut seed = 1u64;
    let mut tenants = 40usize;
    let mut days = 3usize;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if arg == "--seed" {
            if let Some(v) = it.next() {
                seed = v.parse().unwrap_or(1);
            }
        } else if arg == "--tenants" {
            if let Some(v) = it.next() {
                tenants = v.parse().unwrap_or(40);
            }
        } else if arg == "--days" {
            if let Some(v) = it.next() {
                days = v.parse().unwrap_or(3);
            }
        } else {
            targets.push(arg.clone());
        }
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = vec![
            "fig1", "fig4", "fig5", "table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "overhead", "savings", "ablation",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    for target in targets {
        let text = match target.as_str() {
            "fig1" => dejavu_experiments::fig1::run(seed).report().into_text(),
            "fig4" => dejavu_experiments::fig4::run(seed).report().into_text(),
            "fig5" => dejavu_experiments::fig5::run(seed).report().into_text(),
            "table1" => dejavu_experiments::table1::run(seed).report().into_text(),
            "fig6" => dejavu_experiments::fig6::run(seed)
                .report("Figure 6: scaling out Cassandra (Messenger trace)")
                .into_text(),
            "fig7" => dejavu_experiments::fig7::run(seed)
                .report("Figure 7: scaling out Cassandra (HotMail trace)")
                .into_text(),
            "fig8" => dejavu_experiments::fig8::run(seed).report().into_text(),
            "fig9" => dejavu_experiments::fig9::run(seed)
                .report("Figure 9: scaling up SPECweb (HotMail trace)")
                .into_text(),
            "fig10" => dejavu_experiments::fig10::run(seed)
                .report("Figure 10: scaling up SPECweb (Messenger trace)")
                .into_text(),
            "fig11" => dejavu_experiments::fig11::run(seed).report().into_text(),
            "overhead" => dejavu_experiments::overhead::run(seed).report().into_text(),
            "savings" => dejavu_experiments::savings::run(seed).report().into_text(),
            "ablation" => dejavu_experiments::ablation::run(seed).report().into_text(),
            "fleet" => dejavu_experiments::fleet::run_with(seed, tenants, days, true)
                .report()
                .into_text(),
            other => format!("unknown experiment '{other}'\n"),
        };
        println!("{text}");
    }
}
