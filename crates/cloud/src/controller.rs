//! The provisioning-controller interface shared by DejaVu and all baselines.
//!
//! A controller periodically observes the service (performance sample,
//! utilization, SLO state, the workload currently offered) and may decide to
//! deploy a different resource allocation. The decision carries a
//! `decision_latency`: how long the controller needs before the new allocation
//! can be requested (signature collection for DejaVu, tuning experiments for
//! the state-of-the-art, resize calm time for RightScale) — this is the
//! adaptation time Figure 8 compares.

use crate::allocation::ResourceAllocation;
use dejavu_simcore::{SimDuration, SimTime};
use dejavu_traces::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the controller can see at an observation point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Current simulated time.
    pub time: SimTime,
    /// The workload currently offered to the service. Controllers must not use
    /// this directly as an oracle; DejaVu passes it to its profiler (which adds
    /// sampling noise), and the baselines ignore it.
    pub workload: Workload,
    /// Measured mean response latency over the last observation interval, if
    /// the service reports latency.
    pub latency_ms: Option<f64>,
    /// Measured QoS percentage over the last observation interval, if the
    /// service reports QoS (SPECweb).
    pub qos_percent: Option<f64>,
    /// Mean per-instance utilization in `[0, 1]` (what RightScale votes on).
    pub utilization: f64,
    /// Whether the SLO was violated during the last observation interval.
    pub slo_violated: bool,
    /// The allocation currently deployed.
    pub current_allocation: ResourceAllocation,
}

/// Why a controller made a decision; rendered in reports and adaptation logs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionReason {
    /// No change required.
    NoChange,
    /// DejaVu classified the workload and reused a cached allocation.
    CacheHit {
        /// The workload class the signature was classified into.
        class: usize,
    },
    /// DejaVu could not classify the workload with enough certainty.
    CacheMiss,
    /// A fleet-shared repository supplied an allocation another tenant tuned
    /// for an equivalent workload, skipping this tenant's own tuning.
    FleetReuse,
    /// The controller is in its learning phase.
    Learning,
    /// A tuning process produced a new allocation.
    Tuned,
    /// A utilization-threshold vote triggered a resize (RightScale-style).
    ThresholdVote,
    /// A time-of-day schedule dictated the allocation (Autopilot).
    Schedule,
    /// Extra resources deployed to compensate for detected interference.
    InterferenceCompensation,
}

impl fmt::Display for DecisionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionReason::NoChange => write!(f, "no change"),
            DecisionReason::CacheHit { class } => write!(f, "cache hit (class {class})"),
            DecisionReason::CacheMiss => write!(f, "cache miss"),
            DecisionReason::FleetReuse => write!(f, "fleet reuse"),
            DecisionReason::Learning => write!(f, "learning"),
            DecisionReason::Tuned => write!(f, "tuned"),
            DecisionReason::ThresholdVote => write!(f, "threshold vote"),
            DecisionReason::Schedule => write!(f, "schedule"),
            DecisionReason::InterferenceCompensation => write!(f, "interference compensation"),
        }
    }
}

/// The outcome of one controller invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerDecision {
    /// The allocation to deploy, or `None` to keep the current one.
    pub target: Option<ResourceAllocation>,
    /// Time the controller spends before the reconfiguration can be issued
    /// (signature collection, tuning experiments, calm time…).
    pub decision_latency: SimDuration,
    /// Why the decision was made.
    pub reason: DecisionReason,
}

impl ControllerDecision {
    /// A decision that keeps the current allocation and costs no time.
    pub fn keep() -> Self {
        ControllerDecision {
            target: None,
            decision_latency: SimDuration::ZERO,
            reason: DecisionReason::NoChange,
        }
    }

    /// A decision to deploy `target` after `decision_latency`.
    pub fn deploy(
        target: ResourceAllocation,
        decision_latency: SimDuration,
        reason: DecisionReason,
    ) -> Self {
        ControllerDecision {
            target: Some(target),
            decision_latency,
            reason,
        }
    }

    /// Returns true if the decision changes the allocation relative to `current`.
    pub fn changes_allocation(&self, current: ResourceAllocation) -> bool {
        matches!(self.target, Some(t) if t != current)
    }
}

/// A reconfiguration that actually happened, for reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationEvent {
    /// When the controller started reacting (the observation time).
    pub started_at: SimTime,
    /// When the new allocation took effect.
    pub completed_at: SimTime,
    /// Allocation before the change.
    pub from: ResourceAllocation,
    /// Allocation after the change.
    pub to: ResourceAllocation,
    /// Why the controller changed the allocation.
    pub reason: DecisionReason,
}

impl AdaptationEvent {
    /// Total adaptation latency (decision + reconfiguration).
    pub fn latency(&self) -> SimDuration {
        self.completed_at.saturating_since(self.started_at)
    }
}

/// A provisioning controller: the interface DejaVu and every baseline implement.
pub trait ProvisioningController {
    /// A short name used in reports ("dejavu", "rightscale-3min", …).
    fn name(&self) -> &str;

    /// Observes the service and decides whether to change the allocation.
    fn decide(&mut self, observation: &Observation) -> ControllerDecision;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_traces::{RequestMix, ServiceKind, Workload};

    fn obs(alloc: ResourceAllocation) -> Observation {
        Observation {
            time: SimTime::from_hours(1.0),
            workload: Workload::with_intensity(
                ServiceKind::Cassandra,
                0.5,
                RequestMix::update_heavy(),
            ),
            latency_ms: Some(40.0),
            qos_percent: None,
            utilization: 0.6,
            slo_violated: false,
            current_allocation: alloc,
        }
    }

    #[test]
    fn keep_decision_changes_nothing() {
        let d = ControllerDecision::keep();
        assert!(d.target.is_none());
        assert!(!d.changes_allocation(ResourceAllocation::large(3)));
        assert_eq!(d.reason, DecisionReason::NoChange);
    }

    #[test]
    fn deploy_decision_detects_change() {
        let d = ControllerDecision::deploy(
            ResourceAllocation::large(5),
            SimDuration::from_secs(10.0),
            DecisionReason::CacheHit { class: 2 },
        );
        assert!(d.changes_allocation(ResourceAllocation::large(3)));
        assert!(!d.changes_allocation(ResourceAllocation::large(5)));
        assert_eq!(d.reason.to_string(), "cache hit (class 2)");
    }

    #[test]
    fn adaptation_event_latency() {
        let e = AdaptationEvent {
            started_at: SimTime::from_secs(100.0),
            completed_at: SimTime::from_secs(160.0),
            from: ResourceAllocation::large(2),
            to: ResourceAllocation::large(4),
            reason: DecisionReason::ThresholdVote,
        };
        assert_eq!(e.latency().as_secs(), 60.0);
    }

    #[test]
    fn trait_is_object_safe() {
        struct Keep;
        impl ProvisioningController for Keep {
            fn name(&self) -> &str {
                "keep"
            }
            fn decide(&mut self, _observation: &Observation) -> ControllerDecision {
                ControllerDecision::keep()
            }
        }
        let mut c: Box<dyn ProvisioningController> = Box::new(Keep);
        let d = c.decide(&obs(ResourceAllocation::large(1)));
        assert_eq!(c.name(), "keep");
        assert!(d.target.is_none());
    }

    #[test]
    fn reasons_display_nonempty() {
        for r in [
            DecisionReason::NoChange,
            DecisionReason::CacheMiss,
            DecisionReason::FleetReuse,
            DecisionReason::Learning,
            DecisionReason::Tuned,
            DecisionReason::ThresholdVote,
            DecisionReason::Schedule,
            DecisionReason::InterferenceCompensation,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
