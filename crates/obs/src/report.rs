//! Canonical-order export of a recorder's contents.
//!
//! Like the snapshot format, the report is a versioned, deterministic text
//! layout: sections and keys appear in a fixed order, floats are printed
//! with fixed precision, and nothing depends on map iteration order. Two
//! classes of values are distinguished:
//!
//! * **simulation-determined** — counters, value-domain histograms (ball-tree
//!   visits, batch op counts), event counts of deterministic kinds. Under
//!   the BSP transport these are bit-stable for a fixed seed; the stable
//!   rendering ([`ObsReport::render_stable`]) contains only these.
//! * **wall-clock / scheduling** — `*_ns` histograms, park/steal/wake
//!   counters, frontier-lag observations. These vary run to run and appear
//!   only in the full rendering ([`ObsReport::render`]).

use crate::{Event, Metrics, ShardLag};

/// Number of trailing trace events the full rendering includes.
const TRACE_TAIL: usize = 16;

/// Deterministic summary of one [`crate::LogHistogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Total observations.
    pub count: u64,
    /// Largest observed value.
    pub max: u64,
    /// Mean observed value.
    pub mean: f64,
    /// p50 bucket lower bound.
    pub p50: u64,
    /// p90 bucket lower bound.
    pub p90: u64,
    /// p99 bucket lower bound.
    pub p99: u64,
}

impl HistogramSummary {
    fn of(h: &crate::LogHistogram) -> Self {
        HistogramSummary {
            count: h.count(),
            max: h.max(),
            mean: h.mean(),
            p50: h.p50(),
            p90: h.p90(),
            p99: h.p99(),
        }
    }
}

/// A snapshot of everything a [`crate::Recorder`] collected, in canonical
/// order, ready to render as text or JSON.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// `(name, value)` counters, sorted by name. Callers may append extra
    /// domain counters (e.g. per-shard repository stats) before rendering.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, summary)` histograms, sorted by name; names ending in `_ns`
    /// hold wall-clock values.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Per-shard frontier lag, indexed by shard.
    pub shard_lag: Vec<ShardLag>,
    /// `(kind, count)` trace-event counts, sorted by kind.
    pub event_counts: Vec<(String, u64)>,
    /// Events evicted from the ring buffer.
    pub events_dropped: u64,
    /// The last few retained events, rendered, oldest first.
    pub trace_tail: Vec<String>,
}

/// Counters whose values depend on thread scheduling, not the simulation.
/// `scratch_bytes_saved` is here because capacity reuse depends on the order
/// buffers fill, which the async transports leave to arrival order. The
/// `durable_*` trio is here because fold sizes and byte counts track the
/// commit interleaving, which K > 0 runs leave to scheduling.
const SCHEDULING_COUNTERS: [&str; 9] = [
    "durable_bytes",
    "durable_folds",
    "durable_segments",
    "parks",
    "pool_grows",
    "pool_shrinks",
    "scratch_bytes_saved",
    "steals",
    "wakes",
];

/// Event kinds whose counts are simulation-determined under BSP. Fault and
/// recovery kinds are excluded: they only occur on the async transports,
/// where the stable rendering makes no bit-stability promise.
const STABLE_EVENT_KINDS: [&str; 6] = [
    "epoch_begin",
    "epoch_commit",
    "shard_commit",
    "snapshot_load",
    "snapshot_save",
    "ttl_sweep",
];

impl ObsReport {
    pub(crate) fn build(metrics: &Metrics, events: Vec<Event>, dropped: u64) -> Self {
        let counters = vec![
            ("checkpoints".to_string(), metrics.checkpoints.get()),
            (
                "committer_restarts".to_string(),
                metrics.committer_restarts.get(),
            ),
            ("durable_bytes".to_string(), metrics.durable_bytes.get()),
            ("durable_folds".to_string(), metrics.durable_folds.get()),
            (
                "durable_segments".to_string(),
                metrics.durable_segments.get(),
            ),
            ("faults_injected".to_string(), metrics.faults_injected.get()),
            ("memo_hits".to_string(), metrics.memo_hits.get()),
            ("memo_misses".to_string(), metrics.memo_misses.get()),
            ("parks".to_string(), metrics.parks.get()),
            ("pool_grows".to_string(), metrics.pool_grows.get()),
            ("pool_shrinks".to_string(), metrics.pool_shrinks.get()),
            ("recoveries".to_string(), metrics.recoveries.get()),
            ("replayed_epochs".to_string(), metrics.replayed_epochs.get()),
            ("retransmits".to_string(), metrics.retransmits.get()),
            (
                "scratch_bytes_saved".to_string(),
                metrics.scratch_bytes_saved.get(),
            ),
            ("steals".to_string(), metrics.steals.get()),
            ("sweep_reclaimed".to_string(), metrics.sweep_reclaimed.get()),
            ("wakes".to_string(), metrics.wakes.get()),
        ];
        let gauges = vec![("finalize_ns".to_string(), metrics.finalize_ns.get())];
        let histograms = vec![
            (
                "commit_batch_ns".to_string(),
                HistogramSummary::of(&metrics.commit_batch_ns),
            ),
            (
                "commit_batch_ops".to_string(),
                HistogramSummary::of(&metrics.commit_batch_ops),
            ),
            (
                "epoch_ns".to_string(),
                HistogramSummary::of(&metrics.epoch_ns),
            ),
            (
                "lookup_ns".to_string(),
                HistogramSummary::of(&metrics.lookup_ns),
            ),
            (
                "peek_ns".to_string(),
                HistogramSummary::of(&metrics.peek_ns),
            ),
            (
                "publish_ns".to_string(),
                HistogramSummary::of(&metrics.publish_ns),
            ),
            (
                "tree_visits".to_string(),
                HistogramSummary::of(&metrics.tree_visits),
            ),
        ];
        let mut event_counts: Vec<(String, u64)> = Vec::new();
        for event in &events {
            let kind = event.kind();
            match event_counts.iter_mut().find(|(name, _)| name == kind) {
                Some((_, count)) => *count += 1,
                None => event_counts.push((kind.to_string(), 1)),
            }
        }
        event_counts.sort();
        let trace_tail = events
            .iter()
            .rev()
            .take(TRACE_TAIL)
            .rev()
            .map(Event::render)
            .collect();
        ObsReport {
            counters,
            gauges,
            histograms,
            shard_lag: metrics.shard_lag.snapshot(),
            event_counts,
            events_dropped: dropped,
            trace_tail,
        }
    }

    /// Appends a caller-provided counter (re-sorted into canonical order).
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_string(), value));
        self.counters.sort();
    }

    /// The full canonical text rendering (includes wall-clock and
    /// scheduling values, which vary run to run).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("dejavu-obs report v1\n");
        out.push_str("counters\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name} {value}\n"));
        }
        out.push_str("gauges\n");
        for (name, value) in &self.gauges {
            out.push_str(&format!("  {name} {value}\n"));
        }
        out.push_str("histograms\n");
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "  {name} count={} max={} mean={:.3} p50={} p90={} p99={}\n",
                h.count, h.max, h.mean, h.p50, h.p90, h.p99
            ));
        }
        out.push_str("shard_lag\n");
        for (shard, lag) in self.shard_lag.iter().enumerate() {
            out.push_str(&format!(
                "  shard {shard} observations={} mean={:.3} max={}\n",
                lag.observations,
                lag.mean(),
                lag.max
            ));
        }
        let total: u64 = self.event_counts.iter().map(|(_, c)| c).sum();
        out.push_str(&format!(
            "events total={total} dropped={}\n",
            self.events_dropped
        ));
        for (kind, count) in &self.event_counts {
            out.push_str(&format!("  {kind} {count}\n"));
        }
        out.push_str(&format!("trace tail (last {})\n", self.trace_tail.len()));
        for line in &self.trace_tail {
            out.push_str(&format!("  {line}\n"));
        }
        out
    }

    /// The simulation-determined subset: counters minus scheduling ones,
    /// value-domain histograms in full, `*_ns` histograms by count only,
    /// and deterministic event kinds. Bit-stable for a fixed seed under the
    /// BSP transport.
    pub fn render_stable(&self) -> String {
        let mut out = String::new();
        out.push_str("dejavu-obs stable v1\n");
        out.push_str("counters\n");
        for (name, value) in &self.counters {
            if !SCHEDULING_COUNTERS.contains(&name.as_str()) {
                out.push_str(&format!("  {name} {value}\n"));
            }
        }
        out.push_str("histograms\n");
        for (name, h) in &self.histograms {
            if name.ends_with("_ns") {
                out.push_str(&format!("  {name} count={}\n", h.count));
            } else {
                out.push_str(&format!(
                    "  {name} count={} max={} mean={:.3} p50={} p90={} p99={}\n",
                    h.count, h.max, h.mean, h.p50, h.p90, h.p99
                ));
            }
        }
        out.push_str("events\n");
        for (kind, count) in &self.event_counts {
            if STABLE_EVENT_KINDS.contains(&kind.as_str()) {
                out.push_str(&format!("  {kind} {count}\n"));
            }
        }
        out
    }

    /// The full report as a single canonical JSON object (sorted keys,
    /// fixed float precision) — the same data as [`ObsReport::render`].
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"version\": 1, \"counters\": {");
        push_pairs(&mut out, &self.counters);
        out.push_str("}, \"gauges\": {");
        push_pairs(&mut out, &self.gauges);
        out.push_str("}, \"histograms\": {");
        for (index, (name, h)) in self.histograms.iter().enumerate() {
            if index > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{name}\": {{\"count\": {}, \"max\": {}, \"mean\": {:.3}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.count, h.max, h.mean, h.p50, h.p90, h.p99
            ));
        }
        out.push_str("}, \"shard_lag\": [");
        for (shard, lag) in self.shard_lag.iter().enumerate() {
            if shard > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"shard\": {shard}, \"observations\": {}, \"mean\": {:.3}, \"max\": {}}}",
                lag.observations,
                lag.mean(),
                lag.max
            ));
        }
        out.push_str(&format!(
            "], \"events\": {{\"dropped\": {}, \"counts\": {{",
            self.events_dropped
        ));
        push_pairs(&mut out, &self.event_counts);
        out.push_str("}}}");
        out
    }
}

fn push_pairs(out: &mut String, pairs: &[(String, u64)]) {
    for (index, (name, value)) in pairs.iter().enumerate() {
        if index > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{name}\": {value}"));
    }
}

#[cfg(test)]
mod tests {
    use crate::{Event, Recorder};

    fn sample() -> Recorder {
        let rec = Recorder::enabled();
        rec.with(|m| {
            m.memo_hits.add(7);
            m.memo_misses.add(3);
            m.steals.add(2);
            m.tree_visits.record(5);
            m.tree_visits.record(9);
            m.lookup_ns.record(1000);
            m.finalize_ns.set(42);
            m.shard_lag.observe(0, 1);
        });
        rec.event(|| Event::EpochBegin { epoch: 0 });
        rec.event(|| Event::WorkerSteal { worker: 1 });
        rec.event(|| Event::TtlSweep {
            shard: 0,
            epoch: 0,
            reclaimed: 4,
        });
        rec
    }

    #[test]
    fn render_is_canonical_and_complete() {
        let report = sample().report().unwrap();
        let text = report.render();
        assert!(text.starts_with("dejavu-obs report v1\n"));
        assert!(text.contains("  memo_hits 7\n"));
        assert!(text.contains("  steals 2\n"));
        assert!(text.contains("  finalize_ns 42\n"));
        assert!(text.contains("  tree_visits count=2 max=9 mean=7.000 p50=4 p90=8 p99=8\n"));
        assert!(text.contains("  shard 0 observations=1 mean=1.000 max=1\n"));
        assert!(text.contains("events total=3 dropped=0\n"));
        assert!(text.contains("  ttl_sweep 1\n"));
        assert!(text.contains("  ttl_sweep shard=0 epoch=0 reclaimed=4\n"));
        // Rendering twice is byte-identical (no map iteration order leaks).
        assert_eq!(text, report.render());
    }

    #[test]
    fn stable_render_omits_wall_clock_and_scheduling_values() {
        let report = sample().report().unwrap();
        let stable = report.render_stable();
        assert!(stable.starts_with("dejavu-obs stable v1\n"));
        assert!(stable.contains("  memo_hits 7\n"));
        assert!(!stable.contains("steals"));
        assert!(stable.contains("  lookup_ns count=1\n"));
        assert!(!stable.contains("lookup_ns count=1 max"));
        assert!(stable.contains("  tree_visits count=2 max=9"));
        assert!(stable.contains("  ttl_sweep 1\n"));
        assert!(!stable.contains("worker_steal"));
    }

    #[test]
    fn extra_counters_sort_into_place() {
        let mut report = sample().report().unwrap();
        report.push_counter("aaa_first", 1);
        report.push_counter("zzz_last", 2);
        let text = report.render();
        let a = text.find("aaa_first").unwrap();
        let m = text.find("memo_hits").unwrap();
        let z = text.find("zzz_last").unwrap();
        assert!(a < m && m < z);
    }

    #[test]
    fn json_render_is_wellformed_enough_to_grep() {
        let json = sample().report().unwrap().render_json();
        assert!(json.starts_with("{\"version\": 1, "));
        assert!(json.contains("\"memo_hits\": 7"));
        assert!(json.contains("\"tree_visits\": {\"count\": 2"));
        assert!(json.contains("\"shard_lag\": [{\"shard\": 0"));
        assert!(json.contains("\"counts\": {\"epoch_begin\": 1"));
        assert!(json.ends_with("}}}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
