//! Offline minimal stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! Supports the subset of the API the workspace's benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`, `Bencher::iter`
//! and `black_box`. Timing is wall-clock with adaptive iteration counts and a
//! plain-text report; statistical analysis is out of scope. When the binary is
//! invoked with `--test` (as `cargo test` does for `harness = false` bench
//! targets) each benchmark body runs exactly once so the target stays fast.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
            sample_size: 10,
        }
    }
}

/// Runs one benchmark body.
pub struct Bencher<'a> {
    test_mode: bool,
    samples: usize,
    result: &'a mut Option<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, running it enough times for a stable mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            *self.result = Some(Duration::ZERO);
            return;
        }
        // One warm-up call decides how many timed iterations are affordable.
        let warmup_start = Instant::now();
        black_box(routine());
        let warmup = warmup_start.elapsed();
        let iters = if warmup < Duration::from_micros(100) {
            self.samples.max(100)
        } else if warmup < Duration::from_millis(10) {
            self.samples.max(10)
        } else {
            self.samples.clamp(1, 3)
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        *self.result = Some(start.elapsed() / iters as u32);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut result = None;
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            samples: self.sample_size,
            result: &mut result,
        };
        f(&mut bencher);
        report(&self.name, id, result, self.criterion.test_mode);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut result = None;
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            samples: self.sample_size,
            result: &mut result,
        };
        f(&mut bencher);
        report("", id, result, self.test_mode);
        self
    }
}

fn report(group: &str, id: &str, result: Option<Duration>, test_mode: bool) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match (test_mode, result) {
        (true, _) => println!("test {label} ... ok"),
        (false, Some(mean)) => println!("{label:<55} {:>12.3?}/iter", mean),
        (false, None) => println!("{label:<55} (no measurement)"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_body() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 10,
        };
        let mut ran = 0usize;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .bench_function("inner", |b| b.iter(|| 2 + 2));
        group.finish();
    }
}
