//! The commit-transport layer: **how** tenant-buffered repository operations
//! reach the shared store, and what consistency tenants observe while they
//! run.
//!
//! The fleet engine used to hard-code one coordination strategy — the
//! bulk-synchronous epoch barrier — inside its run loop. This module turns
//! that strategy into a pluggable [`CommitTransport`]:
//!
//! * [`BspBarrier`] is the classic engine, verbatim: worker threads step
//!   disjoint tenant chunks through an epoch, the barrier drains every
//!   outbox in tenant order, commits one batch per shard, then runs the TTL
//!   sweep. Mid-epoch the store is frozen, so runs are **bit-deterministic**
//!   for any worker count.
//! * [`BoundedStaleness`] frees tenants onto their own threads: a tenant may
//!   run up to `K` epochs ahead of the commit frontier **of its own shard**,
//!   so fast tenants never wait at a barrier for slow ones. Each tenant's
//!   view of the shared repository is **at most `K` epochs stale** (enforced
//!   by blocking on the frontier, measured in [`TransportOutcome`]'s
//!   staleness histograms). With `K = 0` a tenant may not enter an epoch
//!   until every prior epoch its shard can observe is fully committed — no
//!   tenant can observe or miss anything a BSP run would not — so the output
//!   provably **bit-matches** [`BspBarrier`] (property-tested in
//!   `tests/properties.rs` and fuzzed across scenarios in
//!   `tests/differential.rs`). With `K > 0` the store changes underneath
//!   running tenants, trading the bitwise reproducibility of results for
//!   pipeline parallelism; the commit *sequence* itself stays deterministic
//!   (per shard: epoch by epoch, tenant order within each epoch).
//! * [`WorkStealing`] caps the thread count below one-per-tenant: a fixed
//!   pool of workers pulls per-epoch tenant tasks from a shared deque (the
//!   vendored mini `crossbeam-deque`), so a 1000-tenant fleet runs on a
//!   handful of threads instead of a thousand. Consistency is identical to
//!   [`BoundedStaleness`] — same per-shard frontiers, same staleness bound,
//!   same committer — and because tenant stepping, commit order and sweep
//!   times are all independent of which worker executes what, the results
//!   are **invariant to the thread cap** (and `K = 0` bit-matches BSP).
//!
//! Both asynchronous backends share one committer with **per-shard commit
//! frontiers**: a tenant only ever reads and writes the shard its namespace
//! routes to, so a `(shard, epoch)` batch commits — and that shard's TTL
//! sweep runs, at that epoch's timestamp — as soon as all of the epoch's
//! reports *touching the shard* are in, instead of waiting for the whole
//! fleet's slowest shard. On skewed scenarios that shrinks commit latency
//! without weakening any bound a tenant can observe.
//!
//! Epoch reports travel over the vendored mini mpsc channel
//! (`crossbeam-channel`), so swapping in a real channel or a tokio runtime
//! later is a transport-local change. New consistency models (e.g. quorum
//! commits) are one [`CommitTransport`] impl away — the engine only prepares
//! tenants and consumes the [`TransportOutcome`].

use crate::durable::DurableCheckpointStore;
use crate::engine::{RunState, SimulationEngine};
use crate::faults::{FaultInjector, FaultKind, FaultSpec, FaultSpecError};
use crate::repo_client::RepositoryClient;
use crate::shared_repo::{DeltaCursor, PendingOp, SharedSignatureRepository};
use crate::snapshot::{CheckpointStore, DeltaSnapshot};
use crate::tenant_view::TenantRepoView;
use crossbeam_deque::{Injector, Stealer, Worker};
use dejavu_baselines::{FixedMax, RightScale};
use dejavu_cloud::ProvisioningController;
use dejavu_core::DejaVuController;
use dejavu_obs::{Event, Recorder};
use dejavu_services::ServiceModel;
use dejavu_simcore::SimTime;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Shared handle to a tenant's buffered operations; the transport drains it
/// at every epoch boundary of that tenant.
pub type Outbox = Arc<Mutex<Vec<PendingOp>>>;

/// One tenant's complete in-flight simulation plus its tenancy window in
/// epochs. Built by the fleet engine, stepped by a transport through a
/// [`TenantHandle`], finalized by the engine.
pub(crate) struct TenantRun {
    pub(crate) engine: SimulationEngine,
    pub(crate) service: Box<dyn ServiceModel>,
    pub(crate) controller: DejaVuController,
    pub(crate) state: RunState,
    pub(crate) fixed: Option<(FixedMax, RunState)>,
    pub(crate) rightscale: Option<(RightScale, RunState)>,
    /// First global epoch in which the tenant steps (its join barrier).
    pub(crate) start_epoch: usize,
    /// Global epoch count at whose barrier the tenant retires, if it leaves.
    pub(crate) stop_epoch: Option<usize>,
    /// Nominal end of the tenancy window: `min(stop, start + trace epochs)`.
    pub(crate) end_epoch: usize,
    /// Epochs since join at which the first `FleetReuse` fired (1-based).
    pub(crate) first_reuse_epoch: Option<usize>,
    /// Epochs this tenant has actually been stepped through.
    pub(crate) active_epochs: usize,
    /// Set at the barrier that retires the tenant; freezes all stepping.
    pub(crate) retired: bool,
    /// The namespace the tenant reads and publishes under. Fixed for the
    /// whole run, so every operation the tenant buffers routes to one shard —
    /// the invariant the per-shard commit frontiers rest on.
    pub(crate) namespace: u64,
    /// The tenant's buffered shared-store operations (None when isolated).
    pub(crate) outbox: Option<Outbox>,
}

/// Steps one run up to (excluding) `epoch_end`.
fn step_until(
    engine: &SimulationEngine,
    service: &dyn ServiceModel,
    state: &mut RunState,
    controller: &mut dyn ProvisioningController,
    epoch_end: SimTime,
) {
    while let Some(t) = state.next_tick_time() {
        if t.as_secs() >= epoch_end.as_secs() {
            break;
        }
        engine.step(state, service, controller);
    }
}

impl TenantRun {
    /// Steps every in-flight run of this tenant up to the barrier ending
    /// global epoch `epoch` (0-based), honouring the tenancy window. Times
    /// handed to the tenant are **local** (zero at its join barrier), so a
    /// late joiner steps exactly like a tenant that started a fresh fleet.
    fn step_epoch(&mut self, epoch: usize, epoch_secs: f64) {
        if self.retired {
            return;
        }
        let end_epoch = epoch + 1;
        if end_epoch <= self.start_epoch {
            return; // not admitted yet
        }
        let mut local_epochs = end_epoch - self.start_epoch;
        if let Some(stop) = self.stop_epoch {
            let cap = stop.saturating_sub(self.start_epoch);
            if cap == 0 {
                return;
            }
            local_epochs = local_epochs.min(cap);
        }
        if local_epochs <= self.active_epochs {
            return; // already stepped past its retirement barrier
        }
        self.active_epochs = local_epochs;
        let epoch_end = SimTime::from_secs(epoch_secs * local_epochs as f64);
        let service = self.service.as_ref();
        step_until(
            &self.engine,
            service,
            &mut self.state,
            &mut self.controller,
            epoch_end,
        );
        if let Some((controller, state)) = &mut self.fixed {
            step_until(&self.engine, service, state, controller, epoch_end);
        }
        if let Some((controller, state)) = &mut self.rightscale {
            step_until(&self.engine, service, state, controller, epoch_end);
        }
    }

    /// Whether the tenant retires at the barrier ending global epoch `epoch`.
    fn retires_at(&self, epoch: usize) -> bool {
        let end_epoch = epoch + 1;
        end_epoch > self.start_epoch
            && (self.state.is_done() || self.stop_epoch.is_some_and(|stop| end_epoch >= stop))
    }
}

/// A transport's per-tenant handle: the only surface through which a backend
/// steps a tenant, drains its outbox and keeps its convergence bookkeeping.
/// `Send`, so backends can move tenants onto worker threads.
pub struct TenantHandle<'a> {
    index: usize,
    run: &'a mut TenantRun,
}

impl TenantHandle<'_> {
    /// The tenant's position in the scenario (also its commit order).
    pub fn index(&self) -> usize {
        self.index
    }

    /// First global epoch in which the tenant steps.
    pub fn start_epoch(&self) -> usize {
        self.run.start_epoch
    }

    /// Nominal end of the tenancy window (exclusive global epoch).
    pub fn end_epoch(&self) -> usize {
        self.run.end_epoch
    }

    /// Whether the tenant has been retired by a previous barrier.
    pub fn retired(&self) -> bool {
        self.run.retired
    }

    /// The namespace the tenant reads and publishes under. Every operation
    /// the tenant buffers touches this namespace — and therefore exactly one
    /// shard — which is what lets a transport commit per-shard batches
    /// without changing anything any tenant can observe.
    pub fn namespace(&self) -> u64 {
        self.run.namespace
    }

    /// Steps the tenant (and its ride-along baselines) through global epoch
    /// `epoch`. A retired or not-yet-admitted tenant is a no-op.
    pub fn step_epoch(&mut self, epoch: usize, ctx: &FleetContext<'_>) {
        self.run.step_epoch(epoch, ctx.epoch_secs);
    }

    /// Takes every operation the tenant buffered since the last drain.
    pub fn drain_outbox(&mut self) -> Vec<PendingOp> {
        match &self.run.outbox {
            Some(outbox) => std::mem::take(&mut *outbox.lock().expect("tenant outbox poisoned")),
            None => Vec::new(),
        }
    }

    /// Discards whatever a failed tenant buffered — tolerating an outbox
    /// lock poisoned by the panic itself — so a partial epoch never commits.
    pub fn discard_outbox(&mut self) {
        if let Some(outbox) = &self.run.outbox {
            match outbox.lock() {
                Ok(mut ops) => ops.clear(),
                Err(poisoned) => poisoned.into_inner().clear(),
            }
        }
    }

    /// The tenant's cumulative repository `(hits, misses)`.
    pub fn repo_stats(&self) -> (u64, u64) {
        let stats = self.run.controller.stats();
        (stats.repository.hits, stats.repository.misses)
    }

    /// Records the epoch of the tenant's first `FleetReuse`, if it just
    /// happened — the newcomer-convergence metric.
    pub fn observe_reuse(&mut self, epoch: usize) {
        if self.run.first_reuse_epoch.is_none()
            && epoch + 1 > self.run.start_epoch
            && self.run.controller.stats().fleet_reuses > 0
        {
            self.run.first_reuse_epoch = Some(epoch + 1 - self.run.start_epoch);
        }
    }

    /// Whether the tenant retires at the barrier ending `epoch`.
    pub fn retires_at(&self, epoch: usize) -> bool {
        self.run.retires_at(epoch)
    }

    /// Retires the tenant: all subsequent stepping becomes a no-op and its
    /// bookkeeping freezes, exactly as when the barrier engine dropped
    /// retired tenants from its run set.
    pub fn retire(&mut self) {
        self.run.retired = true;
    }

    /// Swaps in a freshly respawned run — the crash-recovery path: the old
    /// in-memory state is "lost" with the crash, and the replacement (already
    /// replayed up to the crash epoch) takes over the tenant's slot.
    pub(crate) fn replace(&mut self, run: TenantRun) {
        *self.run = run;
    }
}

/// The respawn hook of crash recovery: builds a fresh [`TenantRun`] for the
/// given tenant index, reading through the given repository (the private
/// replay clone during recovery). Provided by the fleet engine for
/// shared-mode runs.
pub(crate) type RespawnFn<'a> =
    dyn Fn(usize, Arc<SharedSignatureRepository>) -> TenantRun + Sync + 'a;

/// The shared, thread-safe side of a fleet run a transport commits through.
#[derive(Clone, Copy)]
pub struct FleetContext<'a> {
    shared: &'a Arc<dyn RepositoryClient>,
    /// The in-process repository behind `shared`, when there is one. The
    /// crash-recovery machinery (checkpoint capture, shard restore) needs the
    /// concrete snapshot/delta surface; a remote client doesn't export it, so
    /// fault injection and checkpointing stay inert on remote runs.
    concrete: Option<&'a Arc<SharedSignatureRepository>>,
    epochs: usize,
    epoch_secs: f64,
    origin_secs: f64,
    workers: usize,
    recorder: &'a Recorder,
    /// The seeded fault injector (the always-benign no-op by default).
    faults: FaultInjector,
    /// Delta-chain compaction cadence (0 = retain the full chain).
    checkpoint_every: usize,
    /// Spill the delta chain to a durable on-disk store at this directory
    /// (committer writes become crash-safe; `None` = in-memory only).
    checkpoint_dir: Option<&'a str>,
    /// Crash-recovery respawn hook; `None` when tenants are isolated.
    respawn: Option<&'a RespawnFn<'a>>,
}

impl FleetContext<'_> {
    /// The fleet horizon in epochs.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Length of one epoch in simulated seconds.
    pub fn epoch_secs(&self) -> f64 {
        self.epoch_secs
    }

    /// Worker threads the engine was configured with (advisory: a transport
    /// may use its own threading model).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The fleet flight recorder (disabled by default — every probe on a
    /// disabled recorder folds to a null check, so transports can instrument
    /// unconditionally).
    pub fn recorder(&self) -> &Recorder {
        self.recorder
    }

    /// Applies one epoch's operations (in the given order) through the
    /// shared repository's batched commit path — one write lock per touched
    /// shard. Returns one applied-flag per operation.
    pub fn commit(&self, ops: &[PendingOp]) -> Vec<bool> {
        self.shared.apply_batch(ops)
    }

    /// Runs the TTL sweep for the barrier ending global epoch `epoch`.
    /// Returns the number of entries reclaimed.
    pub fn sweep(&self, epoch: usize) -> u64 {
        self.shared.evict_stale(SimTime::from_secs(
            self.origin_secs + self.epoch_secs * (epoch + 1) as f64,
        ))
    }

    /// Number of lock-striped shards in the shared repository.
    pub fn shard_count(&self) -> usize {
        self.shared.shard_count()
    }

    /// The shard `namespace` routes to.
    pub fn shard_of(&self, namespace: u64) -> usize {
        self.shared.shard_index(namespace)
    }

    /// Runs the TTL sweep of a single shard for the barrier ending global
    /// epoch `epoch` — the frontier-aware sweep of the per-shard committer:
    /// a shard whose batch commits ahead of the fleet is swept at **its own**
    /// epoch's timestamp, so a deferred-stale entry BSP would have reclaimed
    /// can never resurface in a later commit of that shard.
    /// Returns the number of entries reclaimed.
    pub fn sweep_shard(&self, shard: usize, epoch: usize) -> u64 {
        self.shared.evict_stale_shard(
            shard,
            SimTime::from_secs(self.origin_secs + self.epoch_secs * (epoch + 1) as f64),
        )
    }
}

/// Everything a transport needs to drive one fleet run: the tenants and the
/// shared-store context. Built by the fleet engine.
pub struct FleetHarness<'a> {
    pub(crate) runs: &'a mut [TenantRun],
    pub(crate) shared: &'a Arc<dyn RepositoryClient>,
    /// See [`FleetContext`]: the in-process repository when `shared` is one.
    pub(crate) concrete: Option<&'a Arc<SharedSignatureRepository>>,
    pub(crate) epochs: usize,
    pub(crate) epoch_secs: f64,
    pub(crate) origin_secs: f64,
    pub(crate) workers: usize,
    pub(crate) recorder: &'a Recorder,
    pub(crate) faults: FaultInjector,
    pub(crate) checkpoint_every: usize,
    pub(crate) checkpoint_dir: Option<&'a str>,
    pub(crate) respawn: Option<&'a RespawnFn<'a>>,
}

impl FleetHarness<'_> {
    /// Splits the harness into the shared context and one handle per tenant,
    /// so a backend can distribute tenants across threads.
    pub fn split(&mut self) -> (FleetContext<'_>, Vec<TenantHandle<'_>>) {
        let ctx = FleetContext {
            shared: self.shared,
            concrete: self.concrete,
            epochs: self.epochs,
            epoch_secs: self.epoch_secs,
            origin_secs: self.origin_secs,
            workers: self.workers,
            recorder: self.recorder,
            faults: self.faults,
            checkpoint_every: self.checkpoint_every,
            checkpoint_dir: self.checkpoint_dir,
            respawn: self.respawn,
        };
        let handles = self
            .runs
            .iter_mut()
            .enumerate()
            .map(|(index, run)| TenantHandle { index, run })
            .collect();
        (ctx, handles)
    }
}

/// Histogram over observed staleness values (in epochs).
///
/// An alias of the shared exact-count histogram from `dejavu-obs` — the
/// hand-rolled implementation that used to live here migrated into the
/// flight-recorder crate so the transport layer and the obs report agree on
/// one set of summary semantics (`counts`/`total`/`max`/`mean`).
pub use dejavu_obs::ExactHistogram as StalenessHistogram;

/// What a transport reports about its own behaviour: which backend ran, how
/// stale tenant views were, and how stale the views serving fleet reuses
/// were. Carried into [`crate::FleetReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportSummary {
    /// Backend label (`"bsp"`, `"async(staleness=K)"`, …).
    pub name: String,
    /// Observed view staleness, one observation per tenant-epoch actually
    /// stepped: how many epochs the commit frontier trailed the tenant when
    /// it entered the epoch. All-zero under [`BspBarrier`].
    pub view_staleness: StalenessHistogram,
    /// Reuse latency: for every committed cross-tenant hit, the view
    /// staleness of the epoch that produced it — how fresh the shared
    /// knowledge serving reuses actually was.
    pub reuse_staleness: StalenessHistogram,
}

impl TransportSummary {
    /// The summary of a barrier run that never left epoch lock-step (also the
    /// placeholder for hand-built reports).
    pub fn bsp() -> Self {
        TransportSummary {
            name: "bsp".to_string(),
            view_staleness: StalenessHistogram::default(),
            reuse_staleness: StalenessHistogram::default(),
        }
    }
}

/// What a fault-injected (or checkpointing) run did to itself and how much
/// recovering cost — carried into [`crate::FleetReport`] and rendered as its
/// "recovery" section. Counters are plain (non-recorder) tallies, so they are
/// reported identically with observability on or off; they are a pure
/// function of the fault plan and the scenario, hence deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSummary {
    /// The rendered fault spec (`"SEED:kind,…"`), empty for
    /// checkpoint-only runs.
    pub spec: String,
    /// Total faults injected, all kinds.
    pub injected: u64,
    /// Tenants crashed (and recovered) mid-epoch.
    pub tenants_crashed: u64,
    /// Epoch reports dropped in flight (then retransmitted).
    pub reports_dropped: u64,
    /// Epoch reports delivered twice.
    pub reports_duplicated: u64,
    /// Epoch reports delayed past later arrivals.
    pub reports_reordered: u64,
    /// Committer restarts (volatile assembly state lost and re-assembled).
    pub committer_restarts: u64,
    /// Shards wiped and warm re-seeded from their delta chains.
    pub shard_losses: u64,
    /// Epochs deterministically replayed by crashed tenants.
    pub replayed_epochs: u64,
    /// Delta checkpoints captured at commit boundaries.
    pub checkpoints: u64,
    /// Delta-chain compaction passes.
    pub compactions: u64,
    /// Peak un-compacted delta-chain length any shard reached: the store's
    /// memory high-water mark, bounded on long runs by the dynamic floor.
    pub chain_peak: u64,
}

/// Everything a transport hands back to the engine after driving a fleet.
#[derive(Debug, Clone)]
pub struct TransportOutcome {
    /// Transport self-telemetry (label + staleness histograms).
    pub summary: TransportSummary,
    /// Fleet-wide cumulative repository hit rate after each epoch.
    pub hit_rate_curve: Vec<f64>,
    /// Per-tenant committed cross-tenant hits, in tenant order.
    pub cross_tenant_hits: Vec<u64>,
    /// Per tenant: the epoch at which it panicked (and was retired so the
    /// rest of the fleet could finish), in tenant order. All `None` on a
    /// healthy run.
    pub failed: Vec<Option<usize>>,
    /// Fault-injection and recovery tallies; `None` when neither faults nor
    /// checkpointing were configured.
    pub faults: Option<FaultSummary>,
}

impl TransportOutcome {
    fn new(name: String, tenants: usize) -> Self {
        TransportOutcome {
            summary: TransportSummary {
                name,
                view_staleness: StalenessHistogram::default(),
                reuse_staleness: StalenessHistogram::default(),
            },
            hit_rate_curve: Vec::new(),
            cross_tenant_hits: vec![0; tenants],
            failed: vec![None; tenants],
            faults: None,
        }
    }
}

/// Lock-free fault/recovery tallies, incremented from tenant threads, pool
/// workers and the committer alike; folded into the [`FaultSummary`] once
/// the drive finishes.
#[derive(Default)]
struct FaultTallies {
    injected: AtomicU64,
    tenants_crashed: AtomicU64,
    reports_dropped: AtomicU64,
    reports_duplicated: AtomicU64,
    reports_reordered: AtomicU64,
    committer_restarts: AtomicU64,
    shard_losses: AtomicU64,
    replayed_epochs: AtomicU64,
}

impl FaultTallies {
    /// Counts one injected fault of the given kind tally.
    fn fault(&self, which: &AtomicU64) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        which.fetch_add(1, Ordering::Relaxed);
    }
}

/// Where a drive's checkpoints live: in memory (the PR 7 recovery layer) or
/// written through to disk first (`--checkpoint-dir`). Either way the
/// in-memory [`CheckpointStore`] is the read surface — the durable wrapper
/// only adds the write-ahead spill.
enum CheckpointSink {
    Memory(CheckpointStore),
    Durable(DurableCheckpointStore),
}

impl CheckpointSink {
    /// The in-memory store, for reads (materialize, telemetry).
    fn store(&self) -> &CheckpointStore {
        match self {
            CheckpointSink::Memory(store) => store,
            CheckpointSink::Durable(durable) => durable.store(),
        }
    }

    fn into_store(self) -> CheckpointStore {
        match self {
            CheckpointSink::Memory(store) => store,
            CheckpointSink::Durable(durable) => durable.into_store(),
        }
    }

    fn set_floor(&mut self, shard: usize, epoch: usize) -> usize {
        match self {
            CheckpointSink::Memory(store) => store.set_floor(shard, epoch),
            CheckpointSink::Durable(durable) => durable.set_floor(shard, epoch),
        }
    }

    /// Records one commit's delta; the durable receipt (zeroed for the
    /// in-memory sink) feeds the flight recorder's durability counters.
    /// Fail-stop on durable errors, like every other committer invariant:
    /// a committer that cannot persist what it acknowledged must not keep
    /// acknowledging.
    fn record(&mut self, delta: DeltaSnapshot) -> crate::durable::RecordReceipt {
        match self {
            CheckpointSink::Memory(store) => {
                store.record(delta).expect("commit order is chain order");
                crate::durable::RecordReceipt::default()
            }
            CheckpointSink::Durable(durable) => durable
                .record(delta)
                .expect("durable checkpoint write failed; checkpoint directory is fail-stop"),
        }
    }
}

/// The fault/recovery domain of one asynchronous drive: the seeded injector,
/// the checkpoint store (run-start base snapshot plus per-shard delta
/// chains, optionally written through to disk), the respawn hook recovery
/// rebuilds crashed tenants through, and the shared tallies. Built once per
/// drive when fault injection, checkpointing or a checkpoint directory is
/// configured; absent (and costing nothing) otherwise.
struct FaultDomain<'h> {
    injector: FaultInjector,
    store: Mutex<CheckpointSink>,
    respawn: &'h RespawnFn<'h>,
    shared_arc: &'h Arc<SharedSignatureRepository>,
    tallies: FaultTallies,
    /// Per shard: the tenancy windows of its crash-scheduled tenants, the
    /// input to the dynamic compaction floor ([`FaultDomain::crash_floor`]).
    crash_windows: Vec<Vec<(usize, usize)>>,
}

impl FaultDomain<'_> {
    /// The compaction floor `shard` needs once its commit frontier reached
    /// `frontier`: the earliest window start among crash-scheduled tenants
    /// whose windows are still open (`end > frontier`). A crash recovers
    /// before its own epoch's report is admitted, so once the frontier
    /// passes a window's end no recovery can ever again materialize from
    /// that window's start — the floor advances and the chain behind it
    /// becomes compactable.
    fn crash_floor(&self, shard: usize, frontier: usize) -> usize {
        self.crash_windows[shard]
            .iter()
            .filter(|&&(_, end)| end > frontier)
            .map(|&(start, _)| start)
            .min()
            .unwrap_or(usize::MAX)
    }
}

/// Builds the fault domain of one async drive, or `None` when neither fault
/// injection nor checkpointing is configured (or the fleet has no respawn
/// path, i.e. isolated tenants).
fn fault_domain<'h>(
    ctx: &FleetContext<'h>,
    windows: &[(usize, usize)],
    tenant_shard: &[usize],
) -> Option<FaultDomain<'h>> {
    let injector = ctx.faults;
    if !injector.enabled() && ctx.checkpoint_every == 0 && ctx.checkpoint_dir.is_none() {
        return None;
    }
    let respawn = ctx.respawn?;
    // Checkpoint capture and shard restore go through the concrete
    // repository's snapshot surface; a remote client has none.
    let concrete = ctx.concrete?;
    // The base image and the capture cursors (primed by the committer) both
    // anchor at this quiescent point: nothing mutates the shared repository
    // before the committer applies the first batch.
    let store = match ctx.checkpoint_dir {
        Some(dir) => CheckpointSink::Durable(
            DurableCheckpointStore::create(
                std::path::Path::new(dir),
                concrete.to_snapshot(),
                ctx.checkpoint_every,
            )
            .unwrap_or_else(|e| panic!("cannot initialize checkpoint directory {dir}: {e}")),
        ),
        None => CheckpointSink::Memory(CheckpointStore::new(
            concrete.to_snapshot(),
            ctx.checkpoint_every,
        )),
    };
    // Compaction must never fold an epoch a planned crash still needs to
    // replay from: pin each shard's floor at the earliest join epoch among
    // its crash-scheduled tenants whose windows are still open. The
    // committer re-evaluates the floor at every commit, so long churn runs
    // compact past windows that have closed instead of pinning the whole
    // run at the earliest one.
    let mut crash_windows = vec![Vec::new(); ctx.shard_count()];
    for (tenant, &(start, end)) in windows.iter().enumerate() {
        if injector.crash_epoch(tenant, start, end).is_some() {
            crash_windows[tenant_shard[tenant]].push((start, end));
        }
    }
    let domain = FaultDomain {
        injector,
        store: Mutex::new(store),
        respawn,
        shared_arc: concrete,
        tallies: FaultTallies::default(),
        crash_windows,
    };
    {
        let mut store = domain.store.lock().expect("checkpoint store poisoned");
        for shard in 0..ctx.shard_count() {
            store.set_floor(shard, domain.crash_floor(shard, 0));
        }
    }
    Some(domain)
}

/// Folds a finished drive's fault domain into the outcome's summary.
fn summarize_faults(domain: FaultDomain<'_>) -> FaultSummary {
    let FaultDomain {
        injector,
        store,
        tallies,
        ..
    } = domain;
    let store = store
        .into_inner()
        .expect("checkpoint store poisoned")
        .into_store();
    FaultSummary {
        spec: injector.spec().map(FaultSpec::render).unwrap_or_default(),
        injected: tallies.injected.into_inner(),
        tenants_crashed: tallies.tenants_crashed.into_inner(),
        reports_dropped: tallies.reports_dropped.into_inner(),
        reports_duplicated: tallies.reports_duplicated.into_inner(),
        reports_reordered: tallies.reports_reordered.into_inner(),
        committer_restarts: tallies.committer_restarts.into_inner(),
        shard_losses: tallies.shard_losses.into_inner(),
        replayed_epochs: tallies.replayed_epochs.into_inner(),
        checkpoints: store.checkpoints(),
        compactions: store.compactions(),
        chain_peak: store.chain_peak() as u64,
    }
}

/// A commit transport: the strategy that schedules tenant stepping and moves
/// buffered operations into the shared repository.
///
/// Implementations must commit each epoch's operations **in tenant order**
/// (ties in the scenario's commit sequence are what keep shard-level results
/// reproducible) and run the TTL sweep once per epoch; beyond that they are
/// free to choose any consistency model between tenants and the store.
pub trait CommitTransport: Send + Sync {
    /// Label recorded in reports and benchmarks.
    fn name(&self) -> String;

    /// Drives every tenant from its join barrier to its retirement,
    /// committing outboxes along the way.
    fn drive(&self, harness: &mut FleetHarness<'_>) -> TransportOutcome;
}

/// Which transport a fleet run uses (the cloneable configuration surface;
/// [`TransportConfig::backend`] materializes the backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportConfig {
    /// The lock-step BSP epoch barrier: bit-deterministic for any worker
    /// count. The default.
    #[default]
    Bsp,
    /// Free-running tenant threads observing the shared repository at most
    /// `staleness` epochs stale. `staleness = 0` bit-matches
    /// [`TransportConfig::Bsp`]; larger values trade bitwise result
    /// reproducibility for pipeline parallelism.
    BoundedStaleness {
        /// Maximum number of epochs a tenant's view may trail its shard's
        /// commit frontier.
        staleness: usize,
    },
    /// A fixed pool of `threads` workers pulls per-epoch tenant tasks from a
    /// shared work-stealing deque — the bounded-staleness consistency model
    /// without one thread per tenant, so 1000+-tenant fleets run on small
    /// hosts. Results are invariant to the thread cap; `staleness = 0`
    /// bit-matches [`TransportConfig::Bsp`].
    WorkStealing {
        /// Worker threads in the pool (clamped to `1..=tenants`).
        threads: usize,
        /// Maximum number of epochs a tenant's view may trail its shard's
        /// commit frontier.
        staleness: usize,
        /// Let the pool's governor adapt the active-worker cap between `1`
        /// and `threads` at epoch folds. Affects wall time only: results
        /// are invariant to the cap, so adaptive runs bit-match fixed ones.
        adaptive: bool,
    },
}

impl TransportConfig {
    /// Materializes the configured backend.
    pub fn backend(self) -> Box<dyn CommitTransport> {
        match self {
            TransportConfig::Bsp => Box::new(BspBarrier),
            TransportConfig::BoundedStaleness { staleness } => {
                Box::new(BoundedStaleness { staleness })
            }
            TransportConfig::WorkStealing {
                threads,
                staleness,
                adaptive,
            } => Box::new(WorkStealing {
                threads,
                staleness,
                adaptive,
            }),
        }
    }

    /// Parses a CLI transport choice (the `fleet` experiment's
    /// `--transport`) into a configuration — the typed front door, so an
    /// unknown backend name is a proper error listing the valid choices
    /// instead of a panic, and extending the backend set cannot leave a
    /// stale catch-all match arm behind. `threads` and `staleness` carry
    /// the values of `--threads` / `--staleness`; backends that do not use
    /// them ignore them.
    pub fn parse(backend: &str, threads: usize, staleness: usize) -> Result<Self, String> {
        match backend {
            "bsp" => Ok(TransportConfig::Bsp),
            "async" => Ok(TransportConfig::BoundedStaleness { staleness }),
            "steal" => Ok(TransportConfig::WorkStealing {
                threads,
                staleness,
                adaptive: false,
            }),
            "steal-adaptive" => Ok(TransportConfig::WorkStealing {
                threads,
                staleness,
                adaptive: true,
            }),
            other => Err(format!(
                "unknown transport '{other}': valid backends are 'bsp' (lock-step epoch \
                 barrier), 'async' (bounded staleness, one thread per tenant; --staleness K), \
                 'steal' (work-stealing pool; --threads N --staleness K) and 'steal-adaptive' \
                 (the same pool with the active-worker cap governed adaptively)"
            )),
        }
    }

    /// Whether this backend can host the given fault plan. The BSP barrier
    /// has no report channel, no committer process and no frontier to
    /// recover — fault injection is an asynchronous-transport concept — so
    /// requesting faults under `bsp` is a configuration error, caught here
    /// (typed) instead of silently injecting nothing.
    pub fn check_faults(&self, _spec: &FaultSpec) -> Result<(), FaultSpecError> {
        match self {
            TransportConfig::Bsp => Err(FaultSpecError::BackendUnsupported {
                backend: "bsp".to_string(),
            }),
            TransportConfig::BoundedStaleness { .. } | TransportConfig::WorkStealing { .. } => {
                Ok(())
            }
        }
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// Commits one epoch's operations and accounts applied cross-tenant hits.
/// `op_tenants[i]`/`op_staleness[i]` describe which tenant buffered `ops[i]`
/// and how stale its view was during that epoch.
fn commit_epoch(
    ctx: &FleetContext<'_>,
    ops: &[PendingOp],
    op_tenants: &[usize],
    op_staleness: &[usize],
    out: &mut TransportOutcome,
) {
    if ops.is_empty() {
        return;
    }
    let recorder = ctx.recorder();
    let started = recorder.start();
    let applied = ctx.commit(ops);
    recorder.observe(started, |m| &m.commit_batch_ns);
    recorder.with(|m| m.commit_batch_ops.record(ops.len() as u64));
    for (((op, &tenant), &staleness), applied) in
        ops.iter().zip(op_tenants).zip(op_staleness).zip(applied)
    {
        // A hit only counts if the store still held the entry at commit time
        // (an earlier publish in the same barrier can have re-anchored the
        // namespace), keeping the engine-side and store-side cross-tenant
        // counters consistent.
        if applied && matches!(op, PendingOp::RecordHit { .. }) {
            out.cross_tenant_hits[tenant] += 1;
            out.summary.reuse_staleness.record(staleness);
        }
    }
}

/// The classic bulk-synchronous barrier transport.
///
/// Within an epoch each worker thread steps a disjoint chunk of tenants,
/// reading the shared repository through read-only, epoch-frozen snapshots
/// while buffering writes in per-tenant outboxes. At the epoch barrier the
/// outboxes are drained **in tenant order**, applied through one batched
/// commit per shard, and the TTL sweep runs. Mid-epoch the shared store never
/// changes and commits have a fixed order, so the fleet result is a pure
/// function of the scenario — it does not depend on thread count or OS
/// scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct BspBarrier;

impl CommitTransport for BspBarrier {
    fn name(&self) -> String {
        "bsp".to_string()
    }

    fn drive(&self, harness: &mut FleetHarness<'_>) -> TransportOutcome {
        let (ctx, mut handles) = harness.split();
        let mut out = TransportOutcome::new(self.name(), handles.len());
        let chunk_size = handles.len().div_ceil(ctx.workers.max(1)).max(1);
        let recorder = ctx.recorder();
        // Per-epoch commit scratch, hoisted out of the epoch loop so capacity
        // carries over: after the first epoch the barrier commit allocates
        // nothing.
        let mut ops: Vec<PendingOp> = Vec::new();
        let mut op_tenants: Vec<usize> = Vec::new();
        let mut op_staleness: Vec<usize> = Vec::new();
        for epoch in 0..ctx.epochs {
            recorder.event(|| Event::EpochBegin {
                epoch: epoch as u64,
            });
            let epoch_started = recorder.start();
            // A panicking tenant (service model or poisoned outbox) is
            // caught on its worker, retired at this barrier and surfaced in
            // the outcome — the rest of the fleet finishes its run.
            let failed_now: Vec<usize> = std::thread::scope(|scope| {
                let mut joins = Vec::new();
                for chunk in handles.chunks_mut(chunk_size) {
                    joins.push(scope.spawn(move || {
                        let mut failed = Vec::new();
                        for handle in chunk {
                            if catch_unwind(AssertUnwindSafe(|| handle.step_epoch(epoch, &ctx)))
                                .is_err()
                            {
                                failed.push(handle.index());
                            }
                        }
                        failed
                    }));
                }
                joins
                    .into_iter()
                    .flat_map(|join| join.join().expect("barrier worker panicked"))
                    .collect()
            });
            for tenant in failed_now {
                out.failed[tenant] = Some(epoch);
                handles[tenant].retire();
                // The partial epoch's publishes die with the tenant.
                handles[tenant].discard_outbox();
            }
            // Epoch barrier: publish buffered writes in tenant order, then
            // age out stale entries. This is the only place the shared store
            // changes under this transport.
            let ops_retained = ops.capacity();
            let cols_retained = op_tenants.capacity().min(op_staleness.capacity());
            ops.clear();
            op_tenants.clear();
            op_staleness.clear();
            for handle in &mut handles {
                if out.failed[handle.index()].is_some() {
                    continue;
                }
                let drained = handle.drain_outbox();
                op_tenants.resize(op_tenants.len() + drained.len(), handle.index());
                ops.extend(drained);
            }
            op_staleness.resize(ops.len(), 0);
            let saved = (ops.len().min(ops_retained) * std::mem::size_of::<PendingOp>()
                + op_tenants.len().min(cols_retained) * 2 * std::mem::size_of::<usize>())
                as u64;
            recorder.with(|m| m.scratch_bytes_saved.add(saved));
            commit_epoch(&ctx, &ops, &op_tenants, &op_staleness, &mut out);
            let reclaimed = ctx.sweep(epoch);
            recorder.with(|m| m.sweep_reclaimed.add(reclaimed));

            // Convergence bookkeeping, then barrier-aligned retirement.
            let mut hits = 0u64;
            let mut misses = 0u64;
            for handle in &mut handles {
                let (h, m) = handle.repo_stats();
                hits += h;
                misses += m;
                if !handle.retired() {
                    // Mirror the bounded-staleness tenant loop exactly: one
                    // observation per epoch inside the tenancy window (a
                    // zero-length window — start == stop — steps nothing
                    // and records nothing).
                    if epoch >= handle.start_epoch() && epoch < handle.end_epoch() {
                        out.summary.view_staleness.record(0);
                    }
                    handle.observe_reuse(epoch);
                    if handle.retires_at(epoch) {
                        handle.retire();
                    }
                }
            }
            out.hit_rate_curve.push(hit_rate(hits, misses));
            recorder.observe(epoch_started, |m| &m.epoch_ns);
            recorder.event(|| Event::EpochCommit {
                epoch: epoch as u64,
            });
        }
        out
    }
}

/// The per-shard commit frontiers: how many epochs each shard has fully
/// committed (batch applied, TTL sweep run). A tenant only ever reads and
/// writes the shard its namespace routes to, so its staleness bound is
/// enforced against **that shard's** frontier rather than a fleet-wide one —
/// a tenant behind a fast shard never waits for a slow shard it cannot
/// observe.
///
/// Tenant threads of [`BoundedStaleness`] block in [`wait_within`]
/// (woken by [`advance`]); the [`WorkStealing`] scheduler must never block a
/// pool worker on a tenant's behalf, so it parks the tenant as data through
/// [`enter_or_park`] and re-injects whatever [`advance`] releases. The
/// frontiers can be **poisoned** when the committer unwinds: blocked tenants
/// and pool workers must wake up and die rather than sleep forever, so the
/// original panic — not a deadlock — reaches the caller.
///
/// [`wait_within`]: ShardFrontiers::wait_within
/// [`advance`]: ShardFrontiers::advance
/// [`enter_or_park`]: ShardFrontiers::enter_or_park
struct ShardFrontiers {
    /// Maximum number of epochs a tenant may lead its shard's frontier.
    bound: usize,
    state: Mutex<FrontierState>,
    advanced: Condvar,
}

struct FrontierState {
    /// Per shard: the number of fully committed epochs.
    committed: Vec<usize>,
    /// Per shard: parked `(enter_epoch, tenant)` pairs awaiting `advance`.
    parked: Vec<Vec<(usize, usize)>>,
    poisoned: bool,
}

impl ShardFrontiers {
    fn new(shards: usize, bound: usize) -> Self {
        ShardFrontiers {
            bound,
            state: Mutex::new(FrontierState {
                committed: vec![0; shards],
                parked: vec![Vec::new(); shards],
                poisoned: false,
            }),
            advanced: Condvar::new(),
        }
    }

    /// Blocks until entering `epoch` would leave the caller at most the
    /// staleness bound ahead of `shard`'s committed frontier; returns the
    /// observed staleness (how many epochs the frontier trailed the caller
    /// at admission). Panics if the frontiers were poisoned while waiting.
    fn wait_within(&self, shard: usize, epoch: usize) -> usize {
        let mut state = self.state.lock().expect("frontier poisoned");
        loop {
            assert!(
                !state.poisoned,
                "transport committer unwound; tenant aborting"
            );
            if epoch <= state.committed[shard] + self.bound {
                return epoch.saturating_sub(state.committed[shard]);
            }
            state = self.advanced.wait(state).expect("frontier poisoned");
        }
    }

    /// Non-blocking admission for the work-stealing scheduler: returns the
    /// observed staleness if the tenant may enter `epoch` now, otherwise
    /// parks `(epoch, tenant)` — to be handed back by [`advance`] once the
    /// shard catches up — and returns `None`. The caller must have returned
    /// the tenant's task to its slot *before* calling, so a release that
    /// races the answer finds the tenant where the next worker will look.
    ///
    /// [`advance`]: ShardFrontiers::advance
    fn enter_or_park(&self, shard: usize, epoch: usize, tenant: usize) -> Option<usize> {
        let mut state = self.state.lock().expect("frontier poisoned");
        assert!(
            !state.poisoned,
            "transport committer unwound; worker aborting"
        );
        if epoch <= state.committed[shard] + self.bound {
            Some(epoch.saturating_sub(state.committed[shard]))
        } else {
            state.parked[shard].push((epoch, tenant));
            None
        }
    }

    /// Advances `shard`'s frontier to `committed` epochs, wakes every
    /// blocking waiter, and returns the parked tenants the new frontier
    /// admits (for the caller to reschedule).
    fn advance(&self, shard: usize, committed: usize) -> Vec<usize> {
        let mut state = self.state.lock().expect("frontier poisoned");
        state.committed[shard] = committed;
        let bound = self.bound;
        let parked = &mut state.parked[shard];
        let mut released = Vec::new();
        let mut i = 0;
        while i < parked.len() {
            if parked[i].0 <= committed + bound {
                released.push(parked.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        drop(state);
        self.advanced.notify_all();
        released
    }

    /// Marks the frontiers dead and wakes every waiter (see
    /// [`PoisonOnDrop`]).
    fn poison(&self) {
        self.state.lock().expect("frontier poisoned").poisoned = true;
        self.advanced.notify_all();
    }

    fn poisoned(&self) -> bool {
        // A waiter that panics while holding the guard poisons the std mutex
        // itself; either way, the frontiers are dead.
        match self.state.lock() {
            Ok(state) => state.poisoned,
            Err(_) => true,
        }
    }
}

/// Wakes idle work-stealing workers when tasks may have (re)appeared. A
/// worker reads the generation **before** scanning the queues and only
/// sleeps if the generation is still unchanged, so a task injected after an
/// empty scan can never be missed: either the scan saw it, or the ring bumps
/// the generation and the sleep returns immediately.
#[derive(Default)]
struct Doorbell {
    generation: Mutex<u64>,
    bell: Condvar,
}

impl Doorbell {
    fn generation(&self) -> u64 {
        *self.generation.lock().expect("doorbell poisoned")
    }

    fn ring(&self) {
        *self.generation.lock().expect("doorbell poisoned") += 1;
        self.bell.notify_all();
    }

    /// Sleeps until the generation moves past `seen`.
    fn wait_beyond(&self, seen: u64) {
        let mut generation = self.generation.lock().expect("doorbell poisoned");
        while *generation == seen {
            generation = self.bell.wait(generation).expect("doorbell poisoned");
        }
    }
}

/// What one adaptive-cap decision did, so the drive can count it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CapChange {
    Grew,
    Shrank,
}

/// The adaptive thread-cap governor of [`WorkStealing`] pools.
///
/// Workers beyond [`cap`](Self::cap) gate themselves at the top of their
/// scheduling loop (worker 0 never gates, so the pool always makes
/// progress). Between decisions the active workers feed the governor two
/// hunger signals — tenant **parks** (work arriving faster than the
/// committer's frontiers advance: more workers only deepen the parked
/// backlog) and empty-handed idle **wakes** (workers outnumber runnable
/// tenants) — and the committer calls
/// [`on_epoch_fold`](Self::on_epoch_fold) exactly once per fleet-wide epoch
/// fold, the async transports' analogue of the barrier. Deciding only at
/// folds keeps adaptation off the hot path; and because the pool's results
/// are invariant to the thread cap (see [`WorkStealing`]), a cap that moves
/// between folds changes wall time only, never a byte of the outcome —
/// `tests/differential.rs` pins adaptive runs bit-to-bit against fixed ones.
struct PoolGovernor {
    /// Workers currently allowed to schedule (`1..=max`).
    cap: AtomicUsize,
    /// The configured pool size the cap can grow back to.
    max: usize,
    /// Tenant parks observed since the last decision.
    parks: AtomicU64,
    /// Empty-handed idle wakes observed since the last decision.
    idle_wakes: AtomicU64,
}

impl PoolGovernor {
    fn new(threads: usize) -> Self {
        PoolGovernor {
            cap: AtomicUsize::new(threads),
            max: threads,
            parks: AtomicU64::new(0),
            idle_wakes: AtomicU64::new(0),
        }
    }

    fn cap(&self) -> usize {
        self.cap.load(Ordering::Acquire)
    }

    fn note_park(&self) {
        self.parks.fetch_add(1, Ordering::Relaxed);
    }

    fn note_idle_wake(&self) {
        self.idle_wakes.fetch_add(1, Ordering::Relaxed);
    }

    /// One cap decision at a fleet-wide epoch fold. `stepped` is how many
    /// tenant reports the folded epoch carried — the work the window's park
    /// count is judged against. Shrinks by one worker when parks outnumber
    /// the epoch's reports (the pool is racing ahead of the committer);
    /// grows by one when a whole window passed with no worker going hungry.
    /// Moving one worker per fold keeps the cap within the pool's real
    /// hunger band instead of oscillating across it.
    fn on_epoch_fold(&self, stepped: usize) -> Option<CapChange> {
        let parks = self.parks.swap(0, Ordering::Relaxed);
        let idle_wakes = self.idle_wakes.swap(0, Ordering::Relaxed);
        let cap = self.cap.load(Ordering::Acquire);
        if parks > stepped.max(1) as u64 && cap > 1 {
            self.cap.store(cap - 1, Ordering::Release);
            return Some(CapChange::Shrank);
        }
        if idle_wakes == 0 && cap < self.max {
            self.cap.store(cap + 1, Ordering::Release);
            return Some(CapChange::Grew);
        }
        None
    }
}

/// Poisons the frontiers if dropped while armed — the committer holds one so
/// that its own unwind (a lost report, a panic surfaced by a tenant)
/// releases every tenant blocked in [`ShardFrontiers::wait_within`] and
/// every idle pool worker (via the doorbell) before `thread::scope` starts
/// joining; without it, a committer panic would deadlock the scope.
struct PoisonOnDrop<'a> {
    frontiers: &'a ShardFrontiers,
    doorbell: Option<&'a Doorbell>,
    armed: bool,
}

impl Drop for PoisonOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.frontiers.poison();
            if let Some(doorbell) = self.doorbell {
                doorbell.ring();
            }
        }
    }
}

/// One tenant's end-of-epoch report to the committer. `Clone` so a
/// restart-tolerant committer can retain delivered reports for re-assembly
/// (and the fault injector can duplicate one in flight).
#[derive(Clone)]
struct EpochReport {
    tenant: usize,
    epoch: usize,
    /// Frontier lag observed when the tenant entered the epoch.
    staleness: usize,
    ops: Vec<PendingOp>,
    /// Cumulative repository stats after this epoch.
    hits: u64,
    misses: u64,
    /// This is the tenant's final report (retirement or window end).
    last: bool,
    /// The tenant thread unwound mid-epoch (sent from its drop guard): the
    /// committer must poison the frontier and re-panic instead of waiting
    /// forever for reports that will never come.
    aborted: bool,
}

/// Sends an `aborted` report if a tenant thread unwinds before completing its
/// window, so the committer learns about the death instead of deadlocking on
/// the missing epoch reports; `disarm` marks a clean exit.
struct AbortOnDrop<'a> {
    tx: &'a crossbeam_channel::Sender<EpochReport>,
    tenant: usize,
    /// The epoch the tenant was in when it unwound — the committer stops
    /// expecting reports from this epoch onwards.
    epoch: usize,
    armed: bool,
}

impl AbortOnDrop<'_> {
    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for AbortOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            // A failed send means the committer is already gone; nothing to
            // notify.
            let _ = self.tx.send(EpochReport {
                tenant: self.tenant,
                epoch: self.epoch,
                staleness: 0,
                ops: Vec::new(),
                hits: 0,
                misses: 0,
                last: true,
                aborted: true,
            });
        }
    }
}

/// Why a delivered report is being held back by the fault injector.
enum Held {
    /// The original delivery was dropped; this copy is the retransmission.
    Dropped,
    /// A duplicate copy of a report that was also delivered normally.
    Extra,
    /// Delivery delayed past later arrivals (reordering), not lost.
    Reordered,
}

/// The committer's faulty report channel: a deterministic message-loss layer
/// between the mpsc receiver and the committer. Reports the injector marks
/// as dropped or reordered are held back for a seeded number of subsequent
/// deliveries (drops become retransmissions — the paper-world "resend on
/// commit timeout" — so no information is ever truly lost); duplicated
/// reports are delivered twice. The committer's idempotent admission makes
/// all three shuffles invisible in the committed results.
struct FaultyInbox<'a> {
    rx: &'a crossbeam_channel::Receiver<EpochReport>,
    injector: FaultInjector,
    tallies: &'a FaultTallies,
    recorder: &'a Recorder,
    /// Held-back reports with their remaining-delivery countdowns.
    delayed: Vec<(usize, Held, EpochReport)>,
    /// Reports ready for the committer.
    due: VecDeque<EpochReport>,
    disconnected: bool,
}

impl<'a> FaultyInbox<'a> {
    fn new(
        rx: &'a crossbeam_channel::Receiver<EpochReport>,
        injector: FaultInjector,
        tallies: &'a FaultTallies,
        recorder: &'a Recorder,
    ) -> Self {
        FaultyInbox {
            rx,
            injector,
            tallies,
            recorder,
            delayed: Vec::new(),
            due: VecDeque::new(),
            disconnected: false,
        }
    }

    /// Releases a held report to the committer, counting retransmissions.
    fn release(&mut self, held: Held, report: EpochReport) {
        if matches!(held, Held::Dropped | Held::Extra) {
            self.recorder.with(|m| m.retransmits.inc());
            self.recorder.event(|| Event::ReportRetransmit {
                tenant: report.tenant as u64,
                epoch: report.epoch as u64,
            });
        }
        self.due.push_back(report);
    }

    /// One delivery elapsed: age every held report, releasing the expired.
    fn tick(&mut self) {
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= 1 {
                let (_, held, report) = self.delayed.swap_remove(i);
                self.release(held, report);
            } else {
                self.delayed[i].0 -= 1;
                i += 1;
            }
        }
    }

    /// Classifies one freshly received report: pass through, hold back, or
    /// duplicate, as the seeded plan dictates.
    fn admit(&mut self, report: EpochReport) {
        self.tick();
        if report.aborted {
            // Abort notices bypass injection: the committer must learn about
            // a dead tenant promptly no matter what the plan says.
            self.due.push_back(report);
            return;
        }
        let (tenant, epoch) = (report.tenant, report.epoch);
        if let Some(delay) = self.injector.drop_delay(tenant, epoch) {
            self.tallies.fault(&self.tallies.reports_dropped);
            self.recorder.with(|m| m.faults_injected.inc());
            self.delayed.push((delay, Held::Dropped, report));
        } else if let Some(delay) = self.injector.reorder_delay(tenant, epoch) {
            self.tallies.fault(&self.tallies.reports_reordered);
            self.recorder.with(|m| m.faults_injected.inc());
            self.delayed.push((delay, Held::Reordered, report));
        } else {
            if self.injector.duplicate(tenant, epoch) {
                self.tallies.fault(&self.tallies.reports_duplicated);
                self.recorder.with(|m| m.faults_injected.inc());
                self.delayed.push((2, Held::Extra, report.clone()));
            }
            self.due.push_back(report);
        }
    }

    /// Liveness valve: when the channel has gone quiet but reports are still
    /// held back, force the earliest (by `(epoch, tenant)` — deterministic)
    /// out, so a held report whose countdown is pinned on deliveries that
    /// will never come cannot stall the fleet. Commit order is independent
    /// of arrival order, so early release never changes results.
    fn force_release_earliest(&mut self) {
        let Some(earliest) = self
            .delayed
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, _, r))| (r.epoch, r.tenant))
            .map(|(i, _)| i)
        else {
            return;
        };
        let (_, held, report) = self.delayed.swap_remove(earliest);
        self.release(held, report);
    }

    fn recv(&mut self) -> Option<EpochReport> {
        use crossbeam_channel::TryRecvError;
        loop {
            if let Some(report) = self.due.pop_front() {
                return Some(report);
            }
            if self.disconnected {
                if self.delayed.is_empty() {
                    return None;
                }
                // Every sender is gone: flush the held tail in
                // deterministic order.
                self.delayed
                    .sort_by_key(|(_, _, r)| std::cmp::Reverse((r.epoch, r.tenant)));
                while let Some((_, held, report)) = self.delayed.pop() {
                    self.release(held, report);
                }
                continue;
            }
            match self.rx.try_recv() {
                Ok(report) => self.admit(report),
                Err(TryRecvError::Empty) => {
                    if self.delayed.is_empty() {
                        match self.rx.recv() {
                            Ok(report) => self.admit(report),
                            Err(_) => self.disconnected = true,
                        }
                    } else {
                        // Senders may be blocked on a frontier that only a
                        // held report can advance — release rather than
                        // block on them.
                        self.force_release_earliest();
                    }
                }
                Err(TryRecvError::Disconnected) => self.disconnected = true,
            }
        }
    }
}

/// The committer's report source: the raw channel, or the fault-injecting
/// wrapper.
enum Inbox<'a> {
    Plain(&'a crossbeam_channel::Receiver<EpochReport>),
    Faulty(FaultyInbox<'a>),
}

impl Inbox<'_> {
    fn recv(&mut self) -> Option<EpochReport> {
        match self {
            Inbox::Plain(rx) => rx.recv().ok(),
            Inbox::Faulty(inbox) => inbox.recv(),
        }
    }
}

/// The shared committer of the asynchronous transports, with **per-shard
/// commit frontiers**: epoch reports arrive over the channel, and a
/// `(shard, epoch)` batch commits — in tenant order, followed by the
/// frontier-aware TTL sweep of exactly that shard at that epoch's timestamp
/// — as soon as **all of the epoch's reports touching the shard** are in.
/// A shard therefore never waits for the fleet's slowest shard, which is
/// what shrinks commit latency on skewed scenarios; and because a tenant
/// only ever observes its own shard, no consistency bound weakens.
///
/// Fleet-wide bookkeeping (the hit-rate curve) folds once **every** shard
/// has passed an epoch, in epoch order, so it is identical to a whole-epoch
/// committer's. Everything the committer does depends only on report
/// contents and tenant order — never on arrival order across shards — so
/// results are invariant to thread scheduling and to the worker cap.
///
/// `on_release` receives the tenants a frontier advance un-parked; the
/// work-stealing scheduler re-injects them, the bounded-staleness transport
/// (whose tenants block in [`ShardFrontiers::wait_within`] instead of
/// parking) passes a no-op.
///
/// Under a fault domain the committer additionally (a) captures one delta
/// checkpoint per `(shard, epoch)` commit into the [`CheckpointStore`],
/// (b) admits reports **idempotently** (each `(tenant, epoch)` counts once,
/// so duplicated or reordered deliveries are safe by construction),
/// (c) survives its own injected **restarts** — all volatile assembly state
/// is rebuilt from first principles plus the retained already-delivered
/// reports, exactly what a failover committer would re-assemble from
/// re-sent reports — and (d) wipes and warm re-seeds a shard from its delta
/// chain on an injected shard loss.
struct Committer<'a, 'h> {
    ctx: &'a FleetContext<'h>,
    windows: &'a [(usize, usize)],
    tenant_shard: &'a [usize],
    frontiers: &'a ShardFrontiers,
    domain: Option<&'a FaultDomain<'h>>,
    epochs: usize,
    /// How many tenants the nominal tenancy windows promise each
    /// `(epoch, shard)` — the pristine ledger restarts rebuild from.
    nominal: Vec<Vec<usize>>,
    /// `nominal` adjusted for early retirements and tenant deaths: how many
    /// reports each `(epoch, shard)` still waits for before committing.
    expected: Vec<Vec<usize>>,
    received: Vec<Vec<usize>>,
    pending: Vec<Vec<Vec<EpochReport>>>,
    /// Per-epoch cumulative tenant stats, folded into `cached` (and the
    /// hit-rate curve) once the whole epoch has committed across shards.
    epoch_stats: Vec<Vec<(usize, u64, u64)>>,
    cached: Vec<(u64, u64)>,
    /// Per shard: the next epoch whose batch has not committed yet. This is
    /// the committer's only *durable* state — everything else is rebuilt on
    /// an injected restart.
    shard_next: Vec<usize>,
    completed: usize,
    /// Per tenant: the epoch of its early `last` report, if any — the guard
    /// that keeps the expected-count adjustment idempotent under duplicated
    /// deliveries and restart re-admission.
    early_last: Vec<Option<usize>>,
    /// Per tenant: the epoch at which it aborted (panicked), if any.
    failed: Vec<Option<usize>>,
    /// Per `(tenant, epoch)`: whether a report was already admitted — the
    /// sequence-number dedup that makes commit idempotent.
    enqueued: Vec<Vec<bool>>,
    /// Uncommitted delivered reports, kept only when committer restarts are
    /// being injected: the re-sent-report pool a failover re-assembles from.
    retained: Vec<EpochReport>,
    /// Per-shard change cursors for delta capture (empty without a domain).
    cursors: Vec<DeltaCursor>,
    /// Shards whose readiness may have changed. Seeded with every shard:
    /// epochs expecting no reports from a shard (no tenant routes there, or
    /// everyone already retired) commit empty batches immediately — their
    /// TTL sweeps still run on schedule, exactly as the whole-fleet
    /// barrier's sweep would have covered them.
    work: Vec<usize>,
    /// Commit-batch scratch reused across `(shard, epoch)` commits: the flat
    /// op list and its parallel tenant/staleness columns. Capacity is
    /// retained between commits, so steady-state commits allocate nothing.
    scratch_ops: Vec<PendingOp>,
    scratch_tenants: Vec<usize>,
    scratch_staleness: Vec<usize>,
}

impl<'a, 'h> Committer<'a, 'h> {
    fn new(
        ctx: &'a FleetContext<'h>,
        windows: &'a [(usize, usize)],
        tenant_shard: &'a [usize],
        frontiers: &'a ShardFrontiers,
        domain: Option<&'a FaultDomain<'h>>,
    ) -> Self {
        let epochs = ctx.epochs();
        let shards = ctx.shard_count();
        let mut nominal = vec![vec![0usize; shards]; epochs];
        for (tenant, &(start, end)) in windows.iter().enumerate() {
            for slot in &mut nominal[start.min(epochs)..end.min(epochs)] {
                slot[tenant_shard[tenant]] += 1;
            }
        }
        // The cursors anchor at the same quiescent point as the store's base
        // image: nothing has committed yet, so the first captured delta
        // covers exactly the first commit.
        let cursors = match domain {
            Some(domain) => (0..shards)
                .map(|shard| {
                    let mut cursor = DeltaCursor::default();
                    domain.shared_arc.prime_delta_cursor(shard, &mut cursor);
                    cursor
                })
                .collect(),
            None => Vec::new(),
        };
        Committer {
            ctx,
            windows,
            tenant_shard,
            frontiers,
            domain,
            epochs,
            expected: nominal.clone(),
            nominal,
            received: vec![vec![0usize; shards]; epochs],
            pending: (0..epochs)
                .map(|_| (0..shards).map(|_| Vec::new()).collect())
                .collect(),
            epoch_stats: vec![Vec::new(); epochs],
            cached: vec![(0, 0); windows.len()],
            shard_next: vec![0usize; shards],
            completed: 0,
            early_last: vec![None; windows.len()],
            failed: vec![None; windows.len()],
            enqueued: vec![vec![false; epochs]; windows.len()],
            retained: Vec::new(),
            cursors,
            work: (0..shards).collect(),
            scratch_ops: Vec::new(),
            scratch_tenants: Vec::new(),
            scratch_staleness: Vec::new(),
        }
    }

    /// Whether delivered reports must be retained for restart re-assembly.
    fn retains(&self) -> bool {
        self.domain.is_some_and(|d| {
            d.injector
                .spec()
                .is_some_and(|s| s.enables(FaultKind::CommitterRestart))
        })
    }

    fn run(
        mut self,
        mut inbox: Inbox<'_>,
        out: &mut TransportOutcome,
        on_release: &mut dyn FnMut(Vec<usize>),
        on_fold: &mut dyn FnMut(usize),
    ) {
        let recorder = self.ctx.recorder();
        // Fold-to-fold wall time per fleet-wide epoch (the async analogue of
        // the barrier's per-epoch wall clock).
        let mut fold_started = recorder.start();
        loop {
            self.commit_ready(out, on_release);
            // Fold fully committed epochs into the fleet-wide curve, in
            // order.
            while self.completed < self.epochs
                && self.shard_next.iter().all(|&next| next > self.completed)
            {
                let folded = self.completed;
                let stepped = self.epoch_stats[folded].len();
                for (tenant, hits, misses) in std::mem::take(&mut self.epoch_stats[folded]) {
                    self.cached[tenant] = (hits, misses);
                }
                let hits: u64 = self.cached.iter().map(|&(h, _)| h).sum();
                let misses: u64 = self.cached.iter().map(|&(_, m)| m).sum();
                out.hit_rate_curve.push(hit_rate(hits, misses));
                recorder.observe(fold_started, |m| &m.epoch_ns);
                fold_started = recorder.start();
                recorder.event(|| Event::EpochCommit {
                    epoch: folded as u64,
                });
                // The epoch-fold hook — where the work-stealing drive lets
                // its cap governor decide. Called after the fold's bookwork
                // so a decision never delays the commit itself.
                on_fold(stepped);
                self.completed += 1;
                if let Some(domain) = self.domain {
                    if domain.injector.committer_restart(folded) {
                        self.restart(folded, domain, out);
                    }
                }
            }
            if self.completed >= self.epochs {
                return;
            }
            if !self.work.is_empty() {
                // A restart re-admitted reports; drain them before blocking
                // on the channel (which may already be empty and closed).
                continue;
            }
            let Some(report) = inbox.recv() else {
                panic!(
                    "async transport lost epoch reports ({} of {} epochs committed)",
                    self.completed, self.epochs
                );
            };
            self.admit(report, out);
        }
    }

    /// Admits one delivered report: dedups by `(tenant, epoch)` (the
    /// idempotence that makes duplicated and reordered deliveries safe),
    /// handles abort notices by releasing the dead tenant's future slots,
    /// and queues the report for its shard's commit.
    fn admit(&mut self, report: EpochReport, out: &mut TransportOutcome) {
        let tenant = report.tenant;
        let shard = self.tenant_shard[tenant];
        let nominal_end = self.windows[tenant].1.min(self.epochs);
        if report.aborted {
            if self.failed[tenant].is_none() && self.early_last[tenant].is_none() {
                self.failed[tenant] = Some(report.epoch);
                out.failed[tenant] = Some(report.epoch);
                // The dead tenant reported every epoch before the abort, so
                // its shard stops waiting for it from the abort epoch on.
                let lo = report.epoch.max(self.windows[tenant].0).min(nominal_end);
                for slot in &mut self.expected[lo..nominal_end] {
                    slot[shard] -= 1;
                }
                self.work.push(shard);
            }
            return;
        }
        if report.epoch >= self.epochs || self.enqueued[tenant][report.epoch] {
            return; // duplicate delivery: already admitted once
        }
        self.enqueued[tenant][report.epoch] = true;
        if report.last && self.early_last[tenant].is_none() {
            // The tenant retired before its nominal window end: its shard's
            // later epochs no longer wait for it.
            self.early_last[tenant] = Some(report.epoch);
            let lo = (report.epoch + 1).min(nominal_end);
            for slot in &mut self.expected[lo..nominal_end] {
                slot[shard] -= 1;
            }
        }
        if self.retains() {
            self.retained.push(report.clone());
        }
        self.received[report.epoch][shard] += 1;
        self.pending[report.epoch][shard].push(report);
        self.work.push(shard);
    }

    /// Drains the shard worklist: commits every ready `(shard, epoch)`
    /// batch, in tenant order within the batch, sweeps the shard, captures
    /// its delta checkpoint, and advances its frontier.
    fn commit_ready(&mut self, out: &mut TransportOutcome, on_release: &mut dyn FnMut(Vec<usize>)) {
        let recorder = self.ctx.recorder();
        while let Some(shard) = self.work.pop() {
            while self.shard_next[shard] < self.epochs
                && self.received[self.shard_next[shard]][shard]
                    == self.expected[self.shard_next[shard]][shard]
            {
                let epoch = self.shard_next[shard];
                let mut batch = std::mem::take(&mut self.pending[epoch][shard]);
                batch.sort_by_key(|r| r.tenant);
                let ops_retained = self.scratch_ops.capacity();
                let cols_retained = self
                    .scratch_tenants
                    .capacity()
                    .min(self.scratch_staleness.capacity());
                self.scratch_ops.clear();
                self.scratch_tenants.clear();
                self.scratch_staleness.clear();
                for report in &mut batch {
                    let drained = std::mem::take(&mut report.ops);
                    self.scratch_tenants
                        .resize(self.scratch_tenants.len() + drained.len(), report.tenant);
                    self.scratch_staleness.resize(
                        self.scratch_staleness.len() + drained.len(),
                        report.staleness,
                    );
                    self.scratch_ops.extend(drained);
                }
                let saved = (self.scratch_ops.len().min(ops_retained)
                    * std::mem::size_of::<PendingOp>()
                    + self.scratch_tenants.len().min(cols_retained)
                        * 2
                        * std::mem::size_of::<usize>()) as u64;
                recorder.with(|m| m.scratch_bytes_saved.add(saved));
                commit_epoch(
                    self.ctx,
                    &self.scratch_ops,
                    &self.scratch_tenants,
                    &self.scratch_staleness,
                    out,
                );
                recorder.event(|| Event::ShardCommit {
                    shard: shard as u64,
                    epoch: epoch as u64,
                    ops: self.scratch_ops.len() as u64,
                });
                let reclaimed = self.ctx.sweep_shard(shard, epoch);
                recorder.with(|m| m.sweep_reclaimed.add(reclaimed));
                recorder.event(|| Event::TtlSweep {
                    shard: shard as u64,
                    epoch: epoch as u64,
                    reclaimed,
                });
                for report in &batch {
                    self.epoch_stats[epoch].push((report.tenant, report.hits, report.misses));
                    out.summary.view_staleness.record(report.staleness);
                }
                self.shard_next[shard] = epoch + 1;
                if !self.retained.is_empty() {
                    // Committed reports are durable; only uncommitted ones
                    // need re-assembly after a restart.
                    let tenant_shard = self.tenant_shard;
                    self.retained
                        .retain(|r| !(r.epoch == epoch && tenant_shard[r.tenant] == shard));
                }
                if let Some(domain) = self.domain {
                    // Checkpoint at the commit boundary: the delta captures
                    // exactly this commit (batch + sweep), because tenants
                    // never mutate the shared store and no other commit of
                    // this shard can run concurrently.
                    let delta = domain.shared_arc.capture_shard_delta(
                        shard,
                        epoch,
                        &mut self.cursors[shard],
                    );
                    recorder.with(|m| m.checkpoints.inc());
                    recorder.event(|| Event::CheckpointSave {
                        shard: shard as u64,
                        epoch: epoch as u64,
                        namespaces: delta.namespaces.len() as u64,
                    });
                    {
                        let mut store = domain.store.lock().expect("checkpoint store poisoned");
                        // Advance the compaction floor past tenancy windows
                        // this commit closed, *before* recording: the
                        // record's compaction pass then folds the newly
                        // released backlog immediately.
                        store.set_floor(shard, domain.crash_floor(shard, epoch + 1));
                        let receipt = store.record(delta);
                        if receipt.bytes() > 0 {
                            recorder.with(|m| {
                                m.durable_segments.inc();
                                m.durable_bytes.add(receipt.bytes());
                                if receipt.folded {
                                    m.durable_folds.inc();
                                }
                            });
                        }
                    }
                    if domain.injector.shard_loss(shard, epoch) {
                        // Shard-level repository loss: wipe the shard and
                        // warm re-seed it from the delta chain — before the
                        // frontier advances, so no tenant can observe the
                        // gap.
                        domain.tallies.fault(&domain.tallies.shard_losses);
                        recorder.with(|m| m.faults_injected.inc());
                        let image = domain
                            .store
                            .lock()
                            .expect("checkpoint store poisoned")
                            .store()
                            .materialize(shard, epoch + 1)
                            .expect("the delta chain always reaches its own head");
                        domain
                            .shared_arc
                            .restore_shard(shard, &image)
                            .expect("checkpoint images restore cleanly");
                        recorder.with(|m| m.recoveries.inc());
                    }
                }
                if recorder.is_enabled() {
                    // Frontier lag: how far this shard's frontier trails the
                    // fleet's most advanced shard after this commit.
                    let lead = self.shard_next.iter().copied().max().unwrap_or(0);
                    let lag = (lead - self.shard_next[shard]) as u64;
                    recorder.with(|m| m.shard_lag.observe(shard, lag));
                    recorder.event(|| Event::FrontierAdvance {
                        shard: shard as u64,
                        epoch: epoch as u64,
                        lag,
                    });
                }
                // Advancing after the sweep keeps `staleness = 0` exact: no
                // tenant enters its shard's next epoch while that shard
                // still moves.
                on_release(self.frontiers.advance(shard, epoch + 1));
            }
        }
    }

    /// An injected committer crash-and-failover: every piece of volatile
    /// assembly state (expected counts, received counts, pending batches,
    /// dedup bits) is discarded and rebuilt from the nominal windows, the
    /// durable per-shard frontiers, the early-retirement/death ledgers, and
    /// the retained (conceptually re-sent) reports. Committed state — the
    /// shared store, the checkpoint chains, `shard_next` — survives, exactly
    /// as a real failover inherits the durable log but not the assembler's
    /// memory.
    fn restart(&mut self, epoch: usize, domain: &FaultDomain<'_>, out: &mut TransportOutcome) {
        let recorder = self.ctx.recorder();
        domain.tallies.fault(&domain.tallies.committer_restarts);
        recorder.with(|m| {
            m.faults_injected.inc();
            m.committer_restarts.inc();
        });
        recorder.event(|| Event::CommitterRestart {
            epoch: epoch as u64,
        });
        let shards = self.shard_next.len();
        for shard in 0..shards {
            for e in self.shard_next[shard]..self.epochs {
                self.received[e][shard] = 0;
                self.pending[e][shard].clear();
                self.expected[e][shard] = self.nominal[e][shard];
            }
        }
        for tenant in 0..self.windows.len() {
            let shard = self.tenant_shard[tenant];
            let nominal_end = self.windows[tenant].1.min(self.epochs);
            if let Some(last) = self.early_last[tenant] {
                let lo = (last + 1).min(nominal_end);
                for e in lo..nominal_end {
                    if e >= self.shard_next[shard] {
                        self.expected[e][shard] -= 1;
                    }
                }
            }
            if let Some(failed) = self.failed[tenant] {
                let lo = failed.max(self.windows[tenant].0).min(nominal_end);
                for e in lo..nominal_end {
                    if e >= self.shard_next[shard] {
                        self.expected[e][shard] -= 1;
                    }
                }
            }
            for e in self.shard_next[shard]..self.epochs {
                self.enqueued[tenant][e] = false;
            }
        }
        // Re-assemble from the retained pool — the reports tenants would
        // re-send to a failover committer. `admit` re-retains each one, so a
        // second restart can re-assemble again.
        for report in std::mem::take(&mut self.retained) {
            self.admit(report, out);
        }
        self.work.extend(0..shards);
    }
}

/// Crashes a tenant mid-epoch and rebuilds it from the checkpoint chain: the
/// tenant's in-memory state is lost with the crash, so recovery materializes
/// its shard's image at the tenant's join epoch, replays every epoch up to
/// the crash **deterministically** against a private clone advanced delta by
/// delta (each replayed epoch reads exactly the repository state its
/// original execution read — under `staleness = 0` this makes recovery
/// bit-exact), then switches the rebuilt tenant's view back to the live
/// shared repository. Replayed publishes are discarded: they were already
/// committed the first time round, and the idempotent committer would drop
/// re-sent ones anyway.
///
/// With `staleness > 0` tail deltas the committer has not captured yet may
/// be missing; replay then reads a slightly older image — still within the
/// transport's staleness bound, so no consistency guarantee weakens.
///
/// Returns the number of epochs replayed.
fn crash_and_recover(
    ctx: &FleetContext<'_>,
    domain: &FaultDomain<'_>,
    handle: &mut TenantHandle<'_>,
    epoch: usize,
) -> u64 {
    let recorder = ctx.recorder();
    let tenant = handle.index();
    domain.tallies.fault(&domain.tallies.tenants_crashed);
    recorder.with(|m| m.faults_injected.inc());
    recorder.event(|| Event::TenantCrash {
        tenant: tenant as u64,
        epoch: epoch as u64,
    });
    let start = handle.start_epoch();
    let shard = ctx.shard_of(handle.namespace());
    let (base, deltas) = {
        let store = domain.store.lock().expect("checkpoint store poisoned");
        let store = store.store();
        // With `staleness > 0` a free-running tenant can crash before the
        // committer has committed (hence checkpointed) epochs up to its own
        // window start; replay then begins from the newest image the chain
        // can produce — still within the staleness bound. Under K = 0 the
        // frontier gate keeps the chain complete through the crash epoch,
        // so the clamp is a no-op and replay stays bit-exact.
        let base_epoch = start.min(store.chain_end(shard));
        let base = store
            .materialize(shard, base_epoch)
            .expect("compaction floors pin every crash-scheduled tenancy window");
        let deltas: Vec<Option<DeltaSnapshot>> =
            (start..epoch).map(|e| store.delta(shard, e).ok()).collect();
        (base, deltas)
    };
    let replay_repo = Arc::new(
        SharedSignatureRepository::from_snapshot(&base)
            .expect("checkpoint images are valid snapshots"),
    );
    let mut run = (domain.respawn)(tenant, Arc::clone(&replay_repo));
    let mut replayed = 0u64;
    for (e, delta) in (start..epoch).zip(deltas) {
        run.step_epoch(e, ctx.epoch_secs);
        if run.first_reuse_epoch.is_none()
            && e + 1 > run.start_epoch
            && run.controller.stats().fleet_reuses > 0
        {
            run.first_reuse_epoch = Some(e + 1 - run.start_epoch);
        }
        if let Some(outbox) = &run.outbox {
            // Replayed publishes were already committed the first time.
            outbox.lock().expect("tenant outbox poisoned").clear();
        }
        if let Some(delta) = delta {
            replay_repo
                .apply_shard_delta(&delta)
                .expect("replay follows the chain in epoch order");
        }
        replayed += 1;
        recorder.with(|m| m.replayed_epochs.inc());
    }
    domain
        .tallies
        .replayed_epochs
        .fetch_add(replayed, Ordering::Relaxed);
    // Switch the rebuilt tenant from its private replay clone to the live
    // shared repository; recovery guarantees the anchor state it resolved
    // against matches what the live store holds (exactly, under K = 0).
    run.controller
        .store_mut()
        .as_any_mut()
        .and_then(|any| any.downcast_mut::<TenantRepoView>())
        .expect("shared-mode tenants read through a TenantRepoView")
        .retarget(Arc::clone(domain.shared_arc) as _);
    handle.replace(run);
    recorder.with(|m| m.recoveries.inc());
    recorder.event(|| Event::TenantRecover {
        tenant: tenant as u64,
        epoch: epoch as u64,
        replayed,
    });
    replayed
}

/// The asynchronous bounded-staleness transport.
///
/// Every tenant runs on its own thread, free to advance up to
/// [`staleness`](Self::staleness) epochs beyond **its shard's** commit
/// frontier; the committer ([`run_committer`]) assembles each shard's epoch
/// reports (arriving over the vendored mini mpsc channel), applies them in
/// tenant order, runs that shard's TTL sweep and advances its frontier.
/// Views are therefore never more than `staleness` epochs stale, and with
/// `staleness = 0` the schedule collapses to the BSP barrier per shard: no
/// tenant may enter an epoch before every prior epoch of the only shard it
/// can observe committed, so the store is frozen while anyone reads it and
/// the run bit-matches [`BspBarrier`].
#[derive(Debug, Clone, Copy)]
pub struct BoundedStaleness {
    /// Maximum number of epochs a tenant's view may trail its own position.
    pub staleness: usize,
}

impl CommitTransport for BoundedStaleness {
    fn name(&self) -> String {
        format!("async(staleness={})", self.staleness)
    }

    fn drive(&self, harness: &mut FleetHarness<'_>) -> TransportOutcome {
        let (ctx, handles) = harness.split();
        let tenant_count = handles.len();
        let mut out = TransportOutcome::new(self.name(), tenant_count);
        if ctx.epochs() == 0 || tenant_count == 0 {
            return out;
        }
        let windows: Vec<(usize, usize)> = handles
            .iter()
            .map(|h| (h.start_epoch(), h.end_epoch()))
            .collect();
        let tenant_shard: Vec<usize> = handles
            .iter()
            .map(|h| ctx.shard_of(h.namespace()))
            .collect();
        let frontiers = ShardFrontiers::new(ctx.shard_count(), self.staleness);
        let domain = fault_domain(&ctx, &windows, &tenant_shard);
        let domain_ref = domain.as_ref();
        let (tx, rx) = crossbeam_channel::unbounded::<EpochReport>();
        std::thread::scope(|scope| {
            for mut handle in handles {
                let tx = tx.clone();
                let frontiers = &frontiers;
                let ctx = &ctx;
                let shard = tenant_shard[handle.index()];
                scope.spawn(move || {
                    // If this thread unwinds (a poisoned frontier during
                    // shutdown), the guard tells the committer, which
                    // releases the tenant's future slots — the failure is
                    // contained instead of deadlocking the whole fleet.
                    let (start, end) = (handle.start_epoch(), handle.end_epoch());
                    let mut guard = AbortOnDrop {
                        tx: &tx,
                        tenant: handle.index(),
                        epoch: start,
                        armed: true,
                    };
                    let crash_epoch =
                        domain_ref.and_then(|d| d.injector.crash_epoch(handle.index(), start, end));
                    let mut crashed = false;
                    for epoch in start..end {
                        guard.epoch = epoch;
                        let staleness = frontiers.wait_within(shard, epoch);
                        // The whole epoch body runs under `catch_unwind`: a
                        // panicking service model (or a poisoned outbox)
                        // kills this tenant, not the fleet — the drop guard
                        // reports the abort and the committer retires it.
                        let stepped = catch_unwind(AssertUnwindSafe(|| {
                            if !crashed && crash_epoch == Some(epoch) {
                                crashed = true;
                                // The doomed attempt: mid-epoch work that
                                // dies with the crash, publishes and all.
                                handle.step_epoch(epoch, ctx);
                                let _ = handle.drain_outbox();
                                crash_and_recover(
                                    ctx,
                                    domain_ref.expect("crash faults imply a fault domain"),
                                    &mut handle,
                                    epoch,
                                );
                            }
                            handle.step_epoch(epoch, ctx);
                            handle.observe_reuse(epoch);
                            handle.drain_outbox()
                        }));
                        let Ok(ops) = stepped else {
                            return; // the drop guard reports the abort
                        };
                        let retiring = handle.retires_at(epoch);
                        if retiring {
                            handle.retire();
                        }
                        let (hits, misses) = handle.repo_stats();
                        let last = retiring || epoch + 1 == end;
                        let report = EpochReport {
                            tenant: handle.index(),
                            epoch,
                            staleness,
                            ops,
                            hits,
                            misses,
                            last,
                            aborted: false,
                        };
                        if tx.send(report).is_err() || last {
                            break;
                        }
                        guard.epoch = epoch + 1;
                    }
                    guard.disarm();
                });
            }
            drop(tx);

            // If the committer unwinds for any reason, the guard poisons the
            // frontiers first, so blocked tenant threads die (and the scope
            // joins) instead of sleeping forever under a panic.
            let mut poison_guard = PoisonOnDrop {
                frontiers: &frontiers,
                doorbell: None,
                armed: true,
            };
            let inbox = match domain_ref {
                Some(domain) if domain.injector.enabled() => Inbox::Faulty(FaultyInbox::new(
                    &rx,
                    domain.injector,
                    &domain.tallies,
                    ctx.recorder(),
                )),
                _ => Inbox::Plain(&rx),
            };
            Committer::new(&ctx, &windows, &tenant_shard, &frontiers, domain_ref).run(
                inbox,
                &mut out,
                &mut |_released| {},
                &mut |_stepped| {},
            );
            poison_guard.armed = false;
        });
        if let Some(domain) = domain {
            out.faults = Some(summarize_faults(domain));
        }
        out
    }
}

/// One tenant's schedulable state under [`WorkStealing`]: its handle plus
/// the next epoch it will step. Lives in the tenant's slot whenever the
/// tenant is queued (injector or a worker deque) or parked on a frontier; a
/// worker takes it out only to run one epoch.
struct TenantTask<'a> {
    handle: TenantHandle<'a>,
    next_epoch: usize,
    /// Whether this tenant's scheduled crash already fired (the re-executed
    /// crash epoch must not re-trigger it).
    crashed: bool,
}

/// Everything a pool worker shares with its peers and the committer.
struct StealPool<'a, 'h> {
    ctx: &'a FleetContext<'h>,
    frontiers: &'a ShardFrontiers,
    doorbell: &'a Doorbell,
    injector: &'a Injector<usize>,
    stealers: &'a [Stealer<usize>],
    slots: &'a [Mutex<Option<TenantTask<'h>>>],
    windows: &'a [(usize, usize)],
    tenant_shard: &'a [usize],
    /// Tenants that have not sent their `last` report yet; the pool drains
    /// when it reaches zero.
    remaining: &'a AtomicUsize,
    /// The drive's fault/recovery domain, when configured.
    domain: Option<&'a FaultDomain<'h>>,
    /// The adaptive thread-cap governor, when the pool runs adaptive.
    governor: Option<&'a PoolGovernor>,
}

impl<'h> StealPool<'_, 'h> {
    /// One worker's scheduling loop: pop the local deque, then steal from
    /// the shared injector (batch) or a peer's deque; run the claimed
    /// tenant's next epoch; sleep on the doorbell only when every queue was
    /// observed empty at an unchanged doorbell generation.
    fn run_worker(
        &self,
        worker: usize,
        local: &Worker<usize>,
        tx: &crossbeam_channel::Sender<EpochReport>,
    ) {
        let recorder = self.ctx.recorder();
        loop {
            // Snapshot the doorbell before scanning: a task injected after an
            // empty scan bumps the generation, so the sleep below returns
            // immediately instead of missing the wakeup.
            let heard = self.doorbell.generation();
            assert!(
                !self.frontiers.poisoned(),
                "transport committer unwound; worker aborting"
            );
            // Adaptive cap gate: a worker above the cap contributes nothing
            // until the governor grows it back. Worker 0 never gates, so the
            // pool always makes progress; anything left in a gated worker's
            // deque stays stealable from its cold end. Gated sleeps are not
            // hunger signals, so they bypass the idle-wake tally.
            if let Some(governor) = self.governor {
                if worker > 0 && worker >= governor.cap() {
                    if self.remaining.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    // Hand queued continuations back to the injector before
                    // sleeping: a peer that scanned before this worker's last
                    // push would never learn about work stranded in a gated
                    // deque, and with the committer also drained that is a
                    // fleet-wide lost wakeup.
                    let mut flushed = false;
                    while let Some(task) = local.pop() {
                        self.injector.push(task);
                        flushed = true;
                    }
                    if flushed {
                        self.doorbell.ring();
                        continue;
                    }
                    self.doorbell.wait_beyond(heard);
                    continue;
                }
            }
            // A task that did not come off the local deque was stolen — from
            // the shared injector or a peer's cold end.
            let mut stolen = false;
            let task = local.pop().or_else(|| {
                stolen = true;
                self.injector
                    .steal_batch_and_pop(local)
                    .or_else(|| self.stealers.iter().map(|s| s.steal()).collect())
                    .success()
            });
            match task {
                Some(tenant) => {
                    if stolen {
                        recorder.with(|m| m.steals.inc());
                        recorder.event(|| Event::WorkerSteal {
                            worker: worker as u64,
                        });
                    }
                    self.run_tenant(tenant, local, tx)
                }
                None => {
                    if self.remaining.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    if let Some(governor) = self.governor {
                        governor.note_idle_wake();
                    }
                    self.doorbell.wait_beyond(heard);
                    recorder.with(|m| m.wakes.inc());
                    recorder.event(|| Event::WorkerWake {
                        worker: worker as u64,
                    });
                }
            }
        }
    }

    /// Steps one epoch of `tenant` (or parks it on its shard's frontier) and
    /// reschedules the continuation through the local deque, where an idle
    /// peer can steal it.
    fn run_tenant(
        &self,
        tenant: usize,
        local: &Worker<usize>,
        tx: &crossbeam_channel::Sender<EpochReport>,
    ) {
        let mut task = self.slots[tenant]
            .lock()
            .expect("tenant slot poisoned")
            .take()
            .expect("tenant scheduled while not in its slot");
        let shard = self.tenant_shard[tenant];
        let epoch = task.next_epoch;
        // Park point: the task must be back in its slot before asking the
        // frontier, so a release racing the answer finds the tenant where
        // the next worker will look for it.
        *self.slots[tenant].lock().expect("tenant slot poisoned") = Some(task);
        let Some(staleness) = self.frontiers.enter_or_park(shard, epoch, tenant) else {
            // Parked; the committer re-injects it on advance.
            if let Some(governor) = self.governor {
                governor.note_park();
            }
            let recorder = self.ctx.recorder();
            recorder.with(|m| m.parks.inc());
            recorder.event(|| Event::WorkerPark {
                tenant: tenant as u64,
                epoch: epoch as u64,
            });
            return;
        };
        task = self.slots[tenant]
            .lock()
            .expect("tenant slot poisoned")
            .take()
            .expect("admitted tenant missing from its slot");
        // A panicking tenant (service model or poisoned outbox) must kill
        // only itself, never the pool: the epoch body runs under
        // `catch_unwind`, the guard reports the abort to the committer
        // (which retires the tenant and releases its slots), and this
        // worker — not the dead tenant — keeps the drain accounting right.
        let mut guard = AbortOnDrop {
            tx,
            tenant,
            epoch,
            armed: true,
        };
        let stepped = catch_unwind(AssertUnwindSafe(|| {
            if !task.crashed {
                if let Some(domain) = self.domain {
                    let (start, end) = self.windows[tenant];
                    if domain.injector.crash_epoch(tenant, start, end) == Some(epoch) {
                        task.crashed = true;
                        // The doomed attempt: mid-epoch work that dies with
                        // the crash, publishes and all.
                        task.handle.step_epoch(epoch, self.ctx);
                        let _ = task.handle.drain_outbox();
                        crash_and_recover(self.ctx, domain, &mut task.handle, epoch);
                    }
                }
            }
            task.handle.step_epoch(epoch, self.ctx);
            task.handle.observe_reuse(epoch);
            task.handle.drain_outbox()
        }));
        let Ok(ops) = stepped else {
            // Send the abort notice now, then retire this tenant from the
            // pool's drain accounting so idle workers can still exit.
            drop(guard);
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.doorbell.ring();
            }
            return;
        };
        let retiring = task.handle.retires_at(epoch);
        if retiring {
            task.handle.retire();
        }
        let (hits, misses) = task.handle.repo_stats();
        let last = retiring || epoch + 1 == self.windows[tenant].1;
        let sent = tx
            .send(EpochReport {
                tenant,
                epoch,
                staleness,
                ops,
                hits,
                misses,
                last,
                aborted: false,
            })
            .is_ok();
        guard.disarm();
        if last || !sent {
            // The tenant is done (or the committer is gone — the poisoned
            // frontiers panic this worker on its next loop). The final
            // finisher rings the doorbell so idle peers notice the pool is
            // drained and exit.
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.doorbell.ring();
            }
            return;
        }
        task.next_epoch = epoch + 1;
        // Reschedule through the local deque: LIFO keeps the hot tenant on
        // this worker when nobody is idle, while an idle peer steals it from
        // the cold end.
        *self.slots[tenant].lock().expect("tenant slot poisoned") = Some(task);
        local.push(tenant);
    }
}

/// The work-stealing transport: bounded-staleness consistency on a **fixed
/// worker pool** instead of one thread per tenant.
///
/// [`threads`](Self::threads) workers pull per-epoch tenant tasks from a
/// shared deque (the vendored mini `crossbeam-deque`: a global injector plus
/// per-worker deques with stealers), so a 1000-tenant fleet runs on a
/// handful of threads — the regime where one-thread-per-tenant loses to the
/// barrier on small hosts. A tenant whose shard frontier is too far behind
/// is **parked as data** (never blocking a pool worker) and re-injected by
/// the committer when its shard catches up.
///
/// Consistency is exactly [`BoundedStaleness`]'s: same per-shard frontiers,
/// same staleness bound, same committer ([`run_committer`]). Tenant stepping
/// is sequential per tenant, commits are per shard in tenant order, and
/// sweep times are fixed by the epoch grid — none of it depends on which
/// worker executes what — so the results are **invariant to the thread
/// cap**, and `staleness = 0` bit-matches [`BspBarrier`] (fuzzed across
/// scenarios in `tests/differential.rs`).
#[derive(Debug, Clone, Copy)]
pub struct WorkStealing {
    /// Worker threads in the pool (clamped to `1..=tenants`).
    pub threads: usize,
    /// Maximum number of epochs a tenant's view may trail its shard's commit
    /// frontier.
    pub staleness: usize,
    /// Adaptively cap the active workers between `1` and `threads`: a
    /// [`PoolGovernor`] shrinks the cap when tenants park faster than the
    /// committer folds epochs and grows it back when no worker goes hungry,
    /// deciding only at epoch folds. Cap-invariance makes this a pure
    /// wall-time knob — the results stay bit-identical to the fixed pool.
    pub adaptive: bool,
}

impl CommitTransport for WorkStealing {
    fn name(&self) -> String {
        format!(
            "steal{}(threads={},staleness={})",
            if self.adaptive { "-adaptive" } else { "" },
            self.threads,
            self.staleness
        )
    }

    fn drive(&self, harness: &mut FleetHarness<'_>) -> TransportOutcome {
        let (ctx, handles) = harness.split();
        let tenant_count = handles.len();
        let mut out = TransportOutcome::new(self.name(), tenant_count);
        if ctx.epochs() == 0 || tenant_count == 0 {
            return out;
        }
        let windows: Vec<(usize, usize)> = handles
            .iter()
            .map(|h| (h.start_epoch(), h.end_epoch()))
            .collect();
        let tenant_shard: Vec<usize> = handles
            .iter()
            .map(|h| ctx.shard_of(h.namespace()))
            .collect();
        let threads = self.threads.clamp(1, tenant_count);
        let frontiers = ShardFrontiers::new(ctx.shard_count(), self.staleness);
        let domain = fault_domain(&ctx, &windows, &tenant_shard);
        let domain_ref = domain.as_ref();
        let injector = Injector::new();
        let doorbell = Doorbell::default();
        let governor = self.adaptive.then(|| PoolGovernor::new(threads));
        let governor_ref = governor.as_ref();
        let mut active = 0usize;
        let slots: Vec<Mutex<Option<TenantTask<'_>>>> = handles
            .into_iter()
            .map(|handle| {
                let index = handle.index();
                let (start, end) = windows[index];
                // Zero-length windows never step and never report; everyone
                // else starts queued at their join epoch.
                let task = (start < end).then_some(TenantTask {
                    handle,
                    next_epoch: start,
                    crashed: false,
                });
                if task.is_some() {
                    active += 1;
                    injector.push(index);
                }
                Mutex::new(task)
            })
            .collect();
        let remaining = AtomicUsize::new(active);
        let (tx, rx) = crossbeam_channel::unbounded::<EpochReport>();
        let locals: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<usize>> = locals.iter().map(|w| w.stealer()).collect();
        std::thread::scope(|scope| {
            for (worker, local) in locals.into_iter().enumerate() {
                let tx = tx.clone();
                let pool = StealPool {
                    ctx: &ctx,
                    frontiers: &frontiers,
                    doorbell: &doorbell,
                    injector: &injector,
                    stealers: &stealers,
                    slots: &slots,
                    windows: &windows,
                    tenant_shard: &tenant_shard,
                    remaining: &remaining,
                    domain: domain_ref,
                    governor: governor_ref,
                };
                scope.spawn(move || pool.run_worker(worker, &local, &tx));
            }
            drop(tx);

            // Committer on this thread; its unwind poisons the frontiers and
            // rings the doorbell so both parked tenants and idle workers die
            // instead of deadlocking the scope.
            let mut poison_guard = PoisonOnDrop {
                frontiers: &frontiers,
                doorbell: Some(&doorbell),
                armed: true,
            };
            let inbox = match domain_ref {
                Some(domain) if domain.injector.enabled() => Inbox::Faulty(FaultyInbox::new(
                    &rx,
                    domain.injector,
                    &domain.tallies,
                    ctx.recorder(),
                )),
                _ => Inbox::Plain(&rx),
            };
            Committer::new(&ctx, &windows, &tenant_shard, &frontiers, domain_ref).run(
                inbox,
                &mut out,
                &mut |released| {
                    // An empty release set means no tenant became runnable
                    // (the frontier mutex orders park vs advance), so idle
                    // workers have nothing to find — don't wake them.
                    if released.is_empty() {
                        return;
                    }
                    for tenant in released {
                        injector.push(tenant);
                    }
                    doorbell.ring();
                },
                &mut |stepped| {
                    let Some(governor) = governor_ref else { return };
                    match governor.on_epoch_fold(stepped) {
                        Some(CapChange::Grew) => {
                            ctx.recorder().with(|m| m.pool_grows.inc());
                            // Gated workers sleep on the doorbell; the ring
                            // lets them re-read the grown cap.
                            doorbell.ring();
                        }
                        Some(CapChange::Shrank) => {
                            ctx.recorder().with(|m| m.pool_shrinks.inc());
                        }
                        None => {}
                    }
                },
            );
            poison_guard.armed = false;
        });
        if let Some(domain) = domain {
            out.faults = Some(summarize_faults(domain));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_histogram_summarizes() {
        let mut h = StalenessHistogram::default();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(0);
        h.record(0);
        h.record(2);
        assert_eq!(h.counts(), &[2, 0, 1]);
        assert_eq!(h.total(), 3);
        assert_eq!(h.max(), 2);
        assert!((h.mean() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn transport_config_materializes_named_backends() {
        assert_eq!(TransportConfig::default(), TransportConfig::Bsp);
        assert_eq!(TransportConfig::Bsp.backend().name(), "bsp");
        assert_eq!(
            TransportConfig::BoundedStaleness { staleness: 3 }
                .backend()
                .name(),
            "async(staleness=3)"
        );
        assert_eq!(
            TransportConfig::WorkStealing {
                threads: 4,
                staleness: 1,
                adaptive: false
            }
            .backend()
            .name(),
            "steal(threads=4,staleness=1)"
        );
        assert_eq!(
            TransportConfig::WorkStealing {
                threads: 4,
                staleness: 1,
                adaptive: true
            }
            .backend()
            .name(),
            "steal-adaptive(threads=4,staleness=1)"
        );
    }

    #[test]
    fn transport_parse_accepts_every_backend_and_rejects_the_rest() {
        assert_eq!(
            TransportConfig::parse("bsp", 4, 2),
            Ok(TransportConfig::Bsp)
        );
        assert_eq!(
            TransportConfig::parse("async", 4, 2),
            Ok(TransportConfig::BoundedStaleness { staleness: 2 })
        );
        assert_eq!(
            TransportConfig::parse("steal", 4, 2),
            Ok(TransportConfig::WorkStealing {
                threads: 4,
                staleness: 2,
                adaptive: false
            })
        );
        assert_eq!(
            TransportConfig::parse("steal-adaptive", 4, 2),
            Ok(TransportConfig::WorkStealing {
                threads: 4,
                staleness: 2,
                adaptive: true
            })
        );
        let err = TransportConfig::parse("quorum", 4, 2).expect_err("unknown backend");
        assert!(err.contains("'quorum'"), "{err}");
        for valid in ["'bsp'", "'async'", "'steal'", "'steal-adaptive'"] {
            assert!(err.contains(valid), "{err} should list {valid}");
        }
    }

    #[test]
    fn fault_injection_is_rejected_on_bsp_and_accepted_on_async_backends() {
        let spec = FaultSpec::parse("7:crash,drop").expect("valid spec");
        assert_eq!(
            TransportConfig::Bsp.check_faults(&spec),
            Err(FaultSpecError::BackendUnsupported {
                backend: "bsp".to_string()
            })
        );
        assert_eq!(
            TransportConfig::BoundedStaleness { staleness: 0 }.check_faults(&spec),
            Ok(())
        );
        assert_eq!(
            TransportConfig::WorkStealing {
                threads: 2,
                staleness: 1,
                adaptive: true
            }
            .check_faults(&spec),
            Ok(())
        );
    }

    #[test]
    fn poisoned_frontiers_wake_and_kill_waiters() {
        let frontiers = ShardFrontiers::new(2, 0);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| frontiers.wait_within(0, 5));
            frontiers.poison();
            assert!(
                waiter.join().is_err(),
                "poisoned frontiers must panic their waiters, not strand them"
            );
        });
        assert!(frontiers.poisoned());
    }

    #[test]
    fn shard_frontiers_gate_per_shard() {
        let frontiers = ShardFrontiers::new(2, 1);
        assert_eq!(frontiers.wait_within(0, 0), 0);
        frontiers.advance(0, 2);
        assert_eq!(frontiers.wait_within(0, 3), 1);
        // Shard 1's frontier is untouched by shard 0's advance.
        assert_eq!(frontiers.wait_within(1, 1), 1);
        std::thread::scope(|scope| {
            let blocked = scope.spawn(|| frontiers.wait_within(1, 3));
            // Advancing the *other* shard must not release it; advancing its
            // own does.
            frontiers.advance(0, 9);
            frontiers.advance(1, 2);
            assert_eq!(blocked.join().expect("waiter"), 1);
        });
    }

    #[test]
    fn parked_tenants_release_only_when_their_shard_catches_up() {
        let frontiers = ShardFrontiers::new(2, 0);
        assert_eq!(frontiers.enter_or_park(0, 0, 7), Some(0));
        // Too far ahead: parked instead of admitted.
        assert_eq!(frontiers.enter_or_park(0, 2, 7), None);
        assert_eq!(frontiers.enter_or_park(0, 1, 8), None);
        // The other shard's advance releases nobody.
        assert!(frontiers.advance(1, 5).is_empty());
        // Advancing shard 0 to one committed epoch admits only tenant 8.
        assert_eq!(frontiers.advance(0, 1), vec![8]);
        assert_eq!(frontiers.advance(0, 2), vec![7]);
        assert_eq!(frontiers.enter_or_park(0, 2, 7), Some(0));
    }

    #[test]
    fn doorbell_never_misses_a_ring() {
        let doorbell = Doorbell::default();
        let heard = doorbell.generation();
        doorbell.ring();
        // A ring after the snapshot makes the wait return immediately.
        doorbell.wait_beyond(heard);
        let heard = doorbell.generation();
        std::thread::scope(|scope| {
            let sleeper = scope.spawn(|| doorbell.wait_beyond(heard));
            doorbell.ring();
            sleeper.join().expect("sleeper woke");
        });
    }
}
