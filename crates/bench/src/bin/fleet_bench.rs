//! `fleet-bench` — the recorded performance trajectory of the fleet hot path.
//!
//! Runs the standard mixed fleet end to end (shared and isolated repository
//! modes), the BSP-vs-async commit-transport comparison (same fleet under
//! the lock-step barrier and under bounded staleness, with a `k = 0`
//! bit-match check), the work-stealing thread-cap sweep (the 1000-tenant
//! fleet on pools of 1/2/4 workers vs the barrier and vs one thread per
//! tenant, with its own `k = 0` bit-match check), the flight-recorder
//! overhead comparison (the same work-stealing fleet with the obs recorder
//! off and on), the serving measurement (the wait-free read path under
//! mixed read/publish load, plus wire round trips through a live
//! `dejavu-serve` daemon), the single-epoch scale scenario (100k tenants in
//! one 24 h commit window on a pool with one worker per host core, fixed
//! and adaptive caps, plus the chunked-vs-exact distance-kernel
//! microbenchmark), and a shared-repository lookup microbenchmark,
//! then emits `BENCH_fleet.json` so every perf PR leaves comparable
//! numbers behind.
//! Each recorded run is labelled with the git revision and the host's core
//! count, so trajectory numbers from different machines stay attributable.
//!
//! ```text
//! cargo run --release -p dejavu-bench --bin fleet-bench            # full: 200 and 1000 tenants
//! cargo run --release -p dejavu-bench --bin fleet-bench -- --quick # CI smoke: 40 tenants
//! ```
//!
//! Flags:
//!
//! * `--quick` — small fleet (40 tenants, 1 day) and fewer microbench samples.
//! * `--fleet TENANTS:DAYS` — override the fleet configurations (repeatable).
//! * `--scale-tenants N` — tenant count for the single-epoch scale scenario
//!   (default 10k under `--quick`, 100k otherwise).
//! * `--out PATH` — where to write the JSON (default `BENCH_fleet.json`).
//! * `--label NAME` — label recorded with this run (default `current`).
//! * `--append` — append this run to an existing trajectory file instead of
//!   overwriting it.
//! * `--baseline PATH` — compare against a previously recorded file and exit
//!   non-zero if `shared_lookup_hit_per_sec` regressed more than
//!   `--max-regress` (default 0.30, i.e. 30%).

use dejavu_cloud::ResourceAllocation;
use dejavu_core::{RepositoryKey, SignatureRepository};
use dejavu_fleet::{
    standard_fleet, FaultSpec, FleetConfig, FleetEngine, SharedRepoConfig,
    SharedSignatureRepository, SharingMode, TransportConfig,
};
use dejavu_obs::Recorder;
use dejavu_simcore::{SimDuration, SimTime};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    quick: bool,
    out: String,
    label: String,
    append: bool,
    baseline: Option<String>,
    max_regress: f64,
    fleets: Vec<(usize, usize)>,
    scale_tenants: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: "BENCH_fleet.json".to_string(),
        label: "current".to_string(),
        append: false,
        baseline: None,
        max_regress: 0.30,
        fleets: Vec::new(),
        scale_tenants: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--append" => args.append = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--label" => args.label = it.next().expect("--label needs a name"),
            "--baseline" => args.baseline = Some(it.next().expect("--baseline needs a path")),
            "--fleet" => {
                let spec = it.next().expect("--fleet needs TENANTS:DAYS");
                let (t, d) = spec.split_once(':').expect("--fleet needs TENANTS:DAYS");
                args.fleets.push((
                    t.parse().expect("tenant count"),
                    d.parse().expect("day count"),
                ));
            }
            "--scale-tenants" => {
                args.scale_tenants = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale-tenants needs a tenant count"),
                )
            }
            "--max-regress" => {
                args.max_regress = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-regress needs a fraction")
            }
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One end-to-end fleet measurement.
struct FleetMeasurement {
    tenants: usize,
    days: usize,
    mode: &'static str,
    epochs: usize,
    secs: f64,
    epochs_per_sec: f64,
    hit_rate: f64,
}

fn run_fleet(tenants: usize, days: usize, sharing: SharingMode) -> FleetMeasurement {
    let scenario = standard_fleet(tenants, days, 11);
    let engine = FleetEngine::new(
        scenario,
        FleetConfig {
            sharing,
            ..Default::default()
        },
    );
    let start = Instant::now();
    let report = engine.run();
    let secs = start.elapsed().as_secs_f64();
    FleetMeasurement {
        tenants,
        days,
        mode: match sharing {
            SharingMode::Shared => "shared",
            SharingMode::Isolated => "isolated",
        },
        epochs: report.epochs,
        secs,
        epochs_per_sec: report.epochs as f64 / secs.max(1e-12),
        hit_rate: report.fleet_hit_rate(),
    }
}

/// The warm-vs-cold convergence measurement: how many epochs a newcomer
/// fleet needs to reach its first `FleetReuse`, starting cold vs starting
/// from a snapshot of a previously-run seed fleet. This is the paper's
/// central claim (a tuned cache lets newcomers skip the learning phase),
/// measured at fleet scale.
struct WarmStartMeasurement {
    seed_tenants: usize,
    seed_days: usize,
    newcomers: usize,
    days: usize,
    snapshot_bytes: usize,
    cold_first_reuse_epochs: Option<f64>,
    cold_reusing_tenants: usize,
    warm_first_reuse_epochs: Option<f64>,
    warm_reusing_tenants: usize,
    cold_hit_rate: f64,
    warm_hit_rate: f64,
}

fn warm_vs_cold(
    seed_tenants: usize,
    seed_days: usize,
    newcomers: usize,
    days: usize,
) -> WarmStartMeasurement {
    // Seed fleet: run it shared and persist the tuned repository.
    let seed_engine = FleetEngine::new(
        standard_fleet(seed_tenants, seed_days, 11),
        FleetConfig::default(),
    );
    let repo = Arc::new(SharedSignatureRepository::new(
        seed_engine.config().repo.clone(),
    ));
    seed_engine.run_on(Arc::clone(&repo));
    let snapshot = repo.save_snapshot();

    // Newcomer fleet (different seed → different tenants), cold vs warm.
    let newcomer_engine =
        FleetEngine::new(standard_fleet(newcomers, days, 23), FleetConfig::default());
    let cold = newcomer_engine.run();
    let (warm, _) = newcomer_engine
        .run_warm(&snapshot)
        .expect("snapshot produced by this process loads");
    WarmStartMeasurement {
        seed_tenants,
        seed_days,
        newcomers,
        days,
        snapshot_bytes: snapshot.len(),
        cold_first_reuse_epochs: cold.mean_epochs_to_first_reuse(),
        cold_reusing_tenants: cold.tenants_with_fleet_reuse(),
        warm_first_reuse_epochs: warm.mean_epochs_to_first_reuse(),
        warm_reusing_tenants: warm.tenants_with_fleet_reuse(),
        cold_hit_rate: cold.fleet_hit_rate(),
        warm_hit_rate: warm.fleet_hit_rate(),
    }
}

/// The BSP-vs-async transport comparison: the same shared fleet driven by
/// the lock-step epoch barrier and by the bounded-staleness transport
/// (free-running tenant threads, views at most `staleness` epochs stale).
/// Also verifies that `staleness = 0` bit-matches the barrier, so the
/// recorded speedup is attributable to relaxed synchronization alone.
struct TransportMeasurement {
    tenants: usize,
    days: usize,
    staleness: usize,
    bsp_epochs_per_sec: f64,
    async_epochs_per_sec: f64,
    speedup: f64,
    view_staleness_mean: f64,
    view_staleness_max: usize,
    async0_bit_match: bool,
}

fn transport_compare(tenants: usize, days: usize, staleness: usize) -> TransportMeasurement {
    let run = |transport: TransportConfig| {
        let engine = FleetEngine::new(
            standard_fleet(tenants, days, 11),
            FleetConfig {
                transport,
                ..Default::default()
            },
        );
        let start = Instant::now();
        let report = engine.run();
        (report, start.elapsed().as_secs_f64())
    };
    let (bsp_report, bsp_secs) = run(TransportConfig::Bsp);
    let (async_report, async_secs) = run(TransportConfig::BoundedStaleness { staleness });
    let (async0_report, _) = run(TransportConfig::BoundedStaleness { staleness: 0 });
    let async0_bit_match = async0_report.hit_rate_curve == bsp_report.hit_rate_curve
        && bsp_report
            .tenants
            .iter()
            .zip(&async0_report.tenants)
            .all(|(a, b)| {
                a.dejavu.total_cost == b.dejavu.total_cost
                    && a.stats.tunings == b.stats.tunings
                    && a.cross_tenant_hits == b.cross_tenant_hits
            });
    let bsp_epochs_per_sec = bsp_report.epochs as f64 / bsp_secs.max(1e-12);
    let async_epochs_per_sec = async_report.epochs as f64 / async_secs.max(1e-12);
    TransportMeasurement {
        tenants,
        days,
        staleness,
        bsp_epochs_per_sec,
        async_epochs_per_sec,
        speedup: async_epochs_per_sec / bsp_epochs_per_sec.max(1e-12),
        view_staleness_mean: async_report.transport.view_staleness.mean(),
        view_staleness_max: async_report.transport.view_staleness.max(),
        async0_bit_match,
    }
}

/// The work-stealing thread-cap sweep: the same fleet under the barrier,
/// under one-thread-per-tenant bounded staleness, and under the
/// work-stealing pool at several thread caps — the configuration meant for
/// 1000+-tenant fleets on small hosts, where one thread per tenant loses to
/// the barrier. Also verifies that `staleness = 0` on the pool bit-matches
/// the barrier, so the recorded throughput is attributable to scheduling
/// alone.
struct WorkStealingMeasurement {
    tenants: usize,
    days: usize,
    staleness: usize,
    bsp_epochs_per_sec: f64,
    async_epochs_per_sec: f64,
    /// `(thread cap, epochs/s)` per sweep point.
    caps: Vec<(usize, f64)>,
    /// Pool epochs/s (best cap) over one-thread-per-tenant epochs/s.
    speedup_vs_async: f64,
    steal0_bit_match: bool,
}

fn work_stealing_sweep(
    tenants: usize,
    days: usize,
    staleness: usize,
    caps: &[usize],
) -> WorkStealingMeasurement {
    let run = |transport: TransportConfig| {
        let engine = FleetEngine::new(
            standard_fleet(tenants, days, 11),
            FleetConfig {
                transport,
                ..Default::default()
            },
        );
        let start = Instant::now();
        let report = engine.run();
        (report, start.elapsed().as_secs_f64())
    };
    let (bsp_report, bsp_secs) = run(TransportConfig::Bsp);
    let (_, async_secs) = run(TransportConfig::BoundedStaleness { staleness });
    let mut cap_rates = Vec::new();
    for &threads in caps {
        let (report, secs) = run(TransportConfig::WorkStealing {
            threads,
            staleness,
            adaptive: false,
        });
        cap_rates.push((threads, report.epochs as f64 / secs.max(1e-12)));
    }
    let (steal0_report, _) = run(TransportConfig::WorkStealing {
        threads: *caps.last().unwrap_or(&2),
        staleness: 0,
        adaptive: false,
    });
    let steal0_bit_match = steal0_report.hit_rate_curve == bsp_report.hit_rate_curve
        && bsp_report
            .tenants
            .iter()
            .zip(&steal0_report.tenants)
            .all(|(a, b)| {
                a.dejavu.total_cost == b.dejavu.total_cost
                    && a.stats.tunings == b.stats.tunings
                    && a.cross_tenant_hits == b.cross_tenant_hits
            });
    let epochs = bsp_report.epochs as f64;
    let async_epochs_per_sec = epochs / async_secs.max(1e-12);
    let best = cap_rates
        .iter()
        .map(|&(_, rate)| rate)
        .fold(0.0f64, f64::max);
    WorkStealingMeasurement {
        tenants,
        days,
        staleness,
        bsp_epochs_per_sec: epochs / bsp_secs.max(1e-12),
        async_epochs_per_sec,
        caps: cap_rates,
        speedup_vs_async: best / async_epochs_per_sec.max(1e-12),
        steal0_bit_match,
    }
}

/// The flight-recorder overhead comparison: the same work-stealing fleet
/// with the obs recorder disabled and enabled. The disabled path compiles to
/// null checks, so `overhead_pct` should sit well inside the CI gate's
/// existing 30% lookup-regression headroom; the enabled run also yields the
/// recorder's own telemetry (peek latency quantiles, park/steal counts,
/// event volume) for the trajectory file.
struct ObsMeasurement {
    tenants: usize,
    days: usize,
    off_epochs_per_sec: f64,
    on_epochs_per_sec: f64,
    /// `(off/on - 1) * 100`: positive when recording costs throughput.
    overhead_pct: f64,
    peek_p50_ns: u64,
    peek_p90_ns: u64,
    peek_p99_ns: u64,
    parks: u64,
    steals: u64,
    events: u64,
}

fn obs_compare(tenants: usize, days: usize) -> ObsMeasurement {
    let run = |recorder: Recorder| {
        let engine = FleetEngine::new(
            standard_fleet(tenants, days, 11),
            FleetConfig {
                transport: TransportConfig::WorkStealing {
                    threads: 4,
                    staleness: 1,
                    adaptive: false,
                },
                recorder: recorder.clone(),
                ..Default::default()
            },
        );
        let start = Instant::now();
        let report = engine.run();
        (
            report.epochs as f64 / start.elapsed().as_secs_f64().max(1e-12),
            recorder,
        )
    };
    let (off_epochs_per_sec, _) = run(Recorder::disabled());
    let (on_epochs_per_sec, recorder) = run(Recorder::enabled());
    let metrics = recorder.metrics().expect("enabled recorder has metrics");
    ObsMeasurement {
        tenants,
        days,
        off_epochs_per_sec,
        on_epochs_per_sec,
        overhead_pct: (off_epochs_per_sec / on_epochs_per_sec.max(1e-12) - 1.0) * 100.0,
        peek_p50_ns: metrics.peek_ns.p50(),
        peek_p90_ns: metrics.peek_ns.p90(),
        peek_p99_ns: metrics.peek_ns.p99(),
        parks: metrics.parks.get(),
        steals: metrics.steals.get(),
        events: recorder.events().len() as u64 + recorder.dropped_events(),
    }
}

/// The fault-injection recovery-cost comparison: the same bounded-staleness
/// fleet clean and under an all-kinds deterministic fault schedule (tenant
/// crashes with checkpoint replay, committer restarts, dropped/duplicated/
/// reordered reports, shard losses). At `staleness = 0` recovery must be
/// invisible — the faulty run bit-matches the clean one and reconverges in
/// zero epochs — so the recorded overhead is the price of the fault model
/// itself (delta capture, replay, re-assembly).
struct FaultMeasurement {
    tenants: usize,
    days: usize,
    spec: String,
    clean_epochs_per_sec: f64,
    faulty_epochs_per_sec: f64,
    /// `(clean/faulty - 1) * 100`: positive when recovery costs throughput.
    recovery_overhead_pct: f64,
    injected: u64,
    tenants_crashed: u64,
    replayed_epochs: u64,
    committer_restarts: u64,
    shard_losses: u64,
    checkpoints: u64,
    /// Epochs after the last hit-rate-curve divergence from the clean run
    /// (0 = the curves never diverged, i.e. instant reconvergence).
    epochs_to_reconverge: usize,
    bit_match: bool,
}

fn fault_compare(tenants: usize, days: usize) -> FaultMeasurement {
    let run = |faults: Option<FaultSpec>| {
        let engine = FleetEngine::new(
            standard_fleet(tenants, days, 11),
            FleetConfig {
                transport: TransportConfig::BoundedStaleness { staleness: 0 },
                faults,
                checkpoint_every: 8,
                ..Default::default()
            },
        );
        let start = Instant::now();
        let report = engine.run();
        (report, start.elapsed().as_secs_f64())
    };
    let spec = FaultSpec::all(42);
    let (clean_report, clean_secs) = run(None);
    let (faulty_report, faulty_secs) = run(Some(spec));
    let bit_match = faulty_report.hit_rate_curve == clean_report.hit_rate_curve
        && clean_report
            .tenants
            .iter()
            .zip(&faulty_report.tenants)
            .all(|(a, b)| {
                a.dejavu.total_cost == b.dejavu.total_cost
                    && a.stats.tunings == b.stats.tunings
                    && a.cross_tenant_hits == b.cross_tenant_hits
            });
    let epochs_to_reconverge = clean_report
        .hit_rate_curve
        .iter()
        .zip(&faulty_report.hit_rate_curve)
        .rposition(|(a, b)| a != b)
        .map(|last| last + 1)
        .unwrap_or(0);
    let summary = faulty_report
        .faults
        .clone()
        .expect("fault runs carry a summary");
    let clean_epochs_per_sec = clean_report.epochs as f64 / clean_secs.max(1e-12);
    let faulty_epochs_per_sec = faulty_report.epochs as f64 / faulty_secs.max(1e-12);
    FaultMeasurement {
        tenants,
        days,
        spec: spec.render(),
        clean_epochs_per_sec,
        faulty_epochs_per_sec,
        recovery_overhead_pct: (clean_epochs_per_sec / faulty_epochs_per_sec.max(1e-12) - 1.0)
            * 100.0,
        injected: summary.injected,
        tenants_crashed: summary.tenants_crashed,
        replayed_epochs: summary.replayed_epochs,
        committer_restarts: summary.committer_restarts,
        shard_losses: summary.shard_losses,
        checkpoints: summary.checkpoints,
        epochs_to_reconverge,
        bit_match,
    }
}

/// The serving measurement: the shared repository as an online service.
///
/// The number that matters is the **wait-free read path under mixed
/// read/publish load** — `readers` threads hammering `lookup` while a
/// publisher re-publishes into the same namespace at a defined ~1k/s
/// cadence (every publish takes the shard write lock and swings the
/// snapshot cell).
/// Before the wait-free read path, those readers would have serialized
/// against the publisher on a shard `RwLock`; now the sustained aggregate
/// throughput must stay at or above the old single-threaded read-locked
/// baseline (~477k lookups/s from PR 2), and the latency tail (p999) is
/// the stall evidence the reader-never-blocks test pins qualitatively.
/// The repository is obs-instrumented (PR 6 recorder) so the section also
/// carries the recorder's own lookup-latency quantiles; wire round trips
/// through a live `dejavu-serve` daemon are recorded as an informational
/// extra (syscall-bound, not comparable to the in-process number).
struct ServingMeasurement {
    anchors: usize,
    readers: usize,
    samples_per_reader: usize,
    /// Aggregate in-process lookups/s across all readers, publisher live.
    sustained_lookups_per_sec: f64,
    p50_ns: f64,
    p99_ns: f64,
    p999_ns: f64,
    /// Publishes the concurrent writer landed while the readers ran.
    publishes: u64,
    /// The recorder's own lookup-latency quantiles (obs instrumentation).
    obs_lookup_p50_ns: u64,
    obs_lookup_p99_ns: u64,
    /// Wire round trips against a live dejavu-serve daemon (informational).
    wire_lookups_per_sec: f64,
    wire_p50_ns: f64,
    wire_p99_ns: f64,
}

fn serving_bench(
    anchors: usize,
    readers: usize,
    samples_per_reader: usize,
    wire_samples: usize,
) -> ServingMeasurement {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let recorder = Recorder::enabled();
    let shared = Arc::new(
        SharedSignatureRepository::new(SharedRepoConfig::default()).with_recorder(recorder.clone()),
    );
    for a in 0..anchors {
        shared.insert(
            0,
            7,
            &signature(a),
            (a % 3) as u32,
            ResourceAllocation::large(1 + (a % 9) as u32),
            SimTime::ZERO,
        );
    }
    let hit_sigs: Vec<Vec<f64>> = (0..64.min(anchors)).map(signature).collect();

    let stop = AtomicBool::new(false);
    let publishes = AtomicU64::new(0);
    let mut all_ns: Vec<f64> = Vec::new();
    let read_secs = std::thread::scope(|scope| {
        // The mixed-load publisher: every insert takes the shard write lock
        // and republishes the snapshot — the exact interference the
        // wait-free read path must be immune to.
        let publisher = scope.spawn(|| {
            let mut j = 0usize;
            while !stop.load(Ordering::Acquire) {
                shared.insert(
                    0,
                    7,
                    &signature(j % anchors),
                    (j % 3) as u32,
                    ResourceAllocation::large(1 + (j % 9) as u32),
                    SimTime::ZERO,
                );
                publishes.fetch_add(1, Ordering::Relaxed);
                j += 1;
                // A defined ~1k/s publish cadence: a serving mixed load has
                // a write *rate*, not a saturating writer — an unthrottled
                // publish loop on a small host measures the scheduler's
                // timeslicing, not the read path it is meant to interfere
                // with. One snapshot swing per millisecond still lands mid-
                // lookup hundreds of times per run.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        let reader_threads: Vec<_> = (0..readers)
            .map(|r| {
                let hit_sigs = &hit_sigs;
                let shared = &shared;
                scope.spawn(move || {
                    // Per-op latency is sampled (every 8th lookup) so the
                    // two clock reads per sample don't tax the throughput
                    // number; sustained comes from the wall time of the
                    // whole loop.
                    const LAT_EVERY: usize = 8;
                    let mut ns: Vec<f64> = Vec::with_capacity(samples_per_reader / LAT_EVERY + 1);
                    let start = Instant::now();
                    for i in 0..samples_per_reader {
                        let sig = &hit_sigs[(i + r) % hit_sigs.len()];
                        if i % LAT_EVERY == 0 {
                            let t = Instant::now();
                            std::hint::black_box(shared.lookup(
                                1,
                                7,
                                sig,
                                (i % 3) as u32,
                                SimTime::ZERO,
                            ));
                            ns.push(t.elapsed().as_nanos() as f64);
                        } else {
                            std::hint::black_box(shared.lookup(
                                1,
                                7,
                                sig,
                                (i % 3) as u32,
                                SimTime::ZERO,
                            ));
                        }
                    }
                    (ns, start.elapsed().as_secs_f64())
                })
            })
            .collect();
        let mut slowest = 0.0f64;
        for thread in reader_threads {
            let (ns, secs) = thread.join().expect("reader thread");
            all_ns.extend(ns);
            slowest = slowest.max(secs);
        }
        stop.store(true, Ordering::Release);
        publisher.join().expect("publisher thread");
        slowest
    });
    all_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let total_ops = (readers * samples_per_reader) as f64;
    let metrics = recorder.metrics().expect("enabled recorder has metrics");

    // Informational wire round trips: the same repository, served.
    let handle = dejavu_serve::serve_tcp(
        Arc::clone(&shared),
        "127.0.0.1:0",
        dejavu_serve::ServeConfig::default(),
    )
    .expect("serving bench server binds");
    let client = dejavu_serve::RemoteRepository::connect_tcp(
        &handle.tcp_addr().expect("tcp server").to_string(),
        1,
    )
    .expect("serving bench session opens");
    let wire = measure(wire_samples, |i| {
        let sig = &hit_sigs[i % hit_sigs.len()];
        std::hint::black_box(
            client
                .lookup(1, 7, sig, (i % 3) as u32, SimTime::ZERO)
                .expect("wire lookup"),
        );
    });
    drop(client);
    handle.stop();

    ServingMeasurement {
        anchors,
        readers,
        samples_per_reader,
        sustained_lookups_per_sec: total_ops / read_secs.max(1e-12),
        p50_ns: percentile(&all_ns, 0.50),
        p99_ns: percentile(&all_ns, 0.99),
        p999_ns: percentile(&all_ns, 0.999),
        publishes: publishes.load(Ordering::Relaxed),
        obs_lookup_p50_ns: metrics.lookup_ns.p50(),
        obs_lookup_p99_ns: metrics.lookup_ns.p99(),
        wire_lookups_per_sec: wire.per_sec,
        wire_p50_ns: wire.p50_ns,
        wire_p99_ns: wire.p99_ns,
    }
}

/// The scale measurement: the full mixed fleet at 100k tenants (10k under
/// `--quick`) squeezed into a single 24 h epoch. The whole simulated day is
/// one commit window and every tenant observes hourly, so the run stresses
/// tenant *count* — per-tenant signature prep, work-stealing scheduling, and
/// commit batching — rather than epoch count. Runs once on a fixed pool with
/// one worker per host core (the multi-core recording mode) and once under
/// the adaptive cap governor, surfacing the governor and scratch-reuse
/// counters from the flight recorder.
struct ScaleMeasurement {
    tenants: usize,
    epochs: usize,
    threads: usize,
    secs: f64,
    epochs_per_sec: f64,
    /// `tenants * epochs / secs`: the throughput axis that actually grows
    /// with fleet size when the epoch count is pinned at one.
    tenant_epochs_per_sec: f64,
    hit_rate: f64,
    adaptive_secs: f64,
    adaptive_tenant_epochs_per_sec: f64,
    pool_grows: u64,
    pool_shrinks: u64,
    parks: u64,
    steals: u64,
    scratch_bytes_saved: u64,
}

fn scale_bench(tenants: usize) -> ScaleMeasurement {
    let scenario = || {
        let mut s = standard_fleet(tenants, 1, 17);
        s.name = format!("scale-{tenants}");
        // One fleet-wide epoch covering the whole day; hourly observation
        // keeps per-tenant work proportional to the standard fleets.
        s.epoch = SimDuration::from_hours(24.0);
        s.tick = SimDuration::from_hours(1.0);
        s
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let run = |adaptive: bool| {
        let recorder = Recorder::enabled();
        let engine = FleetEngine::new(
            scenario(),
            FleetConfig {
                transport: TransportConfig::WorkStealing {
                    threads,
                    staleness: 1,
                    adaptive,
                },
                recorder: recorder.clone(),
                ..Default::default()
            },
        );
        let start = Instant::now();
        let report = engine.run();
        (report, start.elapsed().as_secs_f64(), recorder)
    };
    let (report, secs, recorder) = run(false);
    let fixed = recorder.metrics().expect("enabled recorder has metrics");
    let (report_a, adaptive_secs, recorder_a) = run(true);
    let adaptive = recorder_a.metrics().expect("enabled recorder has metrics");
    let epochs = report.epochs;
    assert_eq!(epochs, report_a.epochs, "adaptive run drifted in epochs");
    ScaleMeasurement {
        tenants,
        epochs,
        threads,
        secs,
        epochs_per_sec: epochs as f64 / secs.max(1e-12),
        tenant_epochs_per_sec: (tenants * epochs) as f64 / secs.max(1e-12),
        hit_rate: report.fleet_hit_rate(),
        adaptive_secs,
        adaptive_tenant_epochs_per_sec: (tenants * epochs) as f64 / adaptive_secs.max(1e-12),
        pool_grows: adaptive.pool_grows.get(),
        pool_shrinks: adaptive.pool_shrinks.get(),
        parks: fixed.parks.get(),
        steals: fixed.steals.get(),
        scratch_bytes_saved: fixed.scratch_bytes_saved.get(),
    }
}

/// Chunked-vs-exact distance-kernel microbenchmark: nanoseconds per
/// dimension for the squared-distance kernel at signature-sized (8),
/// feature-sized (32) and centroid-slab-sized (128) inputs. Both paths are
/// called directly (bypassing the env-latched dispatcher) so the comparison
/// is order-of-summation only.
struct KernelMeasurement {
    dims: usize,
    chunked_ns_per_dim: f64,
    exact_ns_per_dim: f64,
    /// `exact / chunked`: above 1.0 when the lane-blocked kernel wins.
    speedup: f64,
}

fn kernel_microbench(samples: usize) -> Vec<KernelMeasurement> {
    use dejavu_ml::kernels::{squared_distance_chunked, squared_distance_exact};
    use std::hint::black_box;
    // SplitMix64 over the index: deterministic operands with sign and
    // magnitude spread, no RNG dependency.
    let gen = |salt: u64, dims: usize| -> Vec<f64> {
        (0..dims as u64)
            .map(|i| {
                let mut z = (salt ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z ^ (z >> 31)) as f64 / u64::MAX as f64 - 0.5) * 8.0
            })
            .collect()
    };
    [8usize, 32, 128]
        .iter()
        .map(|&dims| {
            let a = gen(0x243F_6A88_85A3_08D3, dims);
            let b = gen(0x1319_8A2E_0370_7344, dims);
            let time = |f: fn(&[f64], &[f64]) -> f64| {
                let mut acc = 0.0;
                for _ in 0..samples / 10 {
                    acc += f(black_box(&a), black_box(&b));
                }
                let start = Instant::now();
                for _ in 0..samples {
                    acc += f(black_box(&a), black_box(&b));
                }
                let ns = start.elapsed().as_nanos() as f64;
                black_box(acc);
                ns / (samples as f64 * dims as f64)
            };
            let chunked_ns_per_dim = time(squared_distance_chunked);
            let exact_ns_per_dim = time(squared_distance_exact);
            KernelMeasurement {
                dims,
                chunked_ns_per_dim,
                exact_ns_per_dim,
                speedup: exact_ns_per_dim / chunked_ns_per_dim.max(1e-12),
            }
        })
        .collect()
}

/// A 30-metric signature for anchor `a`, shaped like the profiler's output:
/// magnitudes spread over decades, distinct anchors well beyond the match
/// tolerance.
fn signature(a: usize) -> Vec<f64> {
    let base = 10.0 * 1.17f64.powi(a as i32 % 64);
    (0..30)
        .map(|m| base * (0.05 + ((m * 7 + a * 3) % 13) as f64 * 0.4))
        .collect()
}

struct LookupMeasurement {
    samples: usize,
    per_sec: f64,
    p50_ns: f64,
    p99_ns: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn measure<F: FnMut(usize)>(samples: usize, mut op: F) -> LookupMeasurement {
    let mut ns: Vec<f64> = Vec::with_capacity(samples);
    let total = Instant::now();
    for i in 0..samples {
        let t = Instant::now();
        op(i);
        ns.push(t.elapsed().as_nanos() as f64);
    }
    let secs = total.elapsed().as_secs_f64();
    ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    LookupMeasurement {
        samples,
        per_sec: samples as f64 / secs.max(1e-12),
        p50_ns: percentile(&ns, 0.50),
        p99_ns: percentile(&ns, 0.99),
    }
}

/// Microbenchmarks the shared repository (signature-matched lookups over a
/// realistically anchor-heavy namespace) against the isolated per-tenant
/// repository (key-direct lookups).
fn lookup_microbench(anchors: usize, samples: usize) -> Vec<(String, LookupMeasurement)> {
    let shared = SharedSignatureRepository::new(SharedRepoConfig::default());
    for a in 0..anchors {
        shared.insert(
            0,
            7,
            &signature(a),
            (a % 3) as u32,
            ResourceAllocation::large(1 + (a % 9) as u32),
            SimTime::ZERO,
        );
    }
    let hit_sigs: Vec<Vec<f64>> = (0..64).map(signature).collect();
    let miss_sig: Vec<f64> = (0..30).map(|m| 1.0 + m as f64 * 1e6).collect();

    let mut results = Vec::new();
    results.push((
        "shared_lookup_hit".to_string(),
        measure(samples, |i| {
            let sig = &hit_sigs[i % hit_sigs.len()];
            std::hint::black_box(shared.lookup(1, 7, sig, (i % 3) as u32, SimTime::ZERO));
        }),
    ));
    results.push((
        "shared_lookup_miss".to_string(),
        measure(samples, |_| {
            std::hint::black_box(shared.lookup(1, 7, &miss_sig, 0, SimTime::ZERO));
        }),
    ));
    results.push((
        "shared_peek".to_string(),
        measure(samples, |i| {
            let sig = &hit_sigs[i % hit_sigs.len()];
            std::hint::black_box(shared.peek(7, sig, (i % 3) as u32, SimTime::ZERO, Some(99)));
        }),
    ));

    let mut isolated = SignatureRepository::new();
    for a in 0..anchors {
        isolated.insert(
            RepositoryKey {
                class: a,
                interference_bucket: (a % 3) as u32,
            },
            ResourceAllocation::large(1 + (a % 9) as u32),
            SimTime::ZERO,
        );
    }
    results.push((
        "isolated_lookup_hit".to_string(),
        measure(samples, |i| {
            let key = RepositoryKey {
                class: i % anchors,
                interference_bucket: ((i % anchors) % 3) as u32,
            };
            std::hint::black_box(isolated.lookup(key));
        }),
    ));
    results
}

/// Extracts the number following the LAST occurrence of `"key":` in a
/// hand-rolled JSON file — for trajectory files holding several runs, that is
/// the most recent one.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.rfind(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args = parse_args();
    let (default_sizes, anchors, samples): (&[(usize, usize)], usize, usize) = if args.quick {
        (&[(40, 1)], 128, 2_000)
    } else {
        (&[(200, 3), (1000, 1)], 512, 20_000)
    };
    let fleet_sizes: &[(usize, usize)] = if args.fleets.is_empty() {
        default_sizes
    } else {
        &args.fleets
    };

    let mut fleets = Vec::new();
    for &(tenants, days) in fleet_sizes {
        for sharing in [SharingMode::Shared, SharingMode::Isolated] {
            let m = run_fleet(tenants, days, sharing);
            eprintln!(
                "fleet {:>5} tenants x {} day(s) [{:>8}]: {:>7.2} epochs/s ({} epochs in {:.3}s, hit rate {:.1}%)",
                m.tenants, m.days, m.mode, m.epochs_per_sec, m.epochs, m.secs, m.hit_rate * 100.0
            );
            fleets.push(m);
        }
    }

    let warm = if args.quick {
        warm_vs_cold(24, 1, 8, 1)
    } else {
        warm_vs_cold(48, 2, 16, 1)
    };
    let fmt_epochs = |e: Option<f64>| match e {
        Some(v) => format!("{v:.1}"),
        None => "never".to_string(),
    };
    eprintln!(
        "warm-start: first reuse after {} epochs ({}/{} tenants) vs cold {} epochs ({}/{}); hit rate {:.1}% vs {:.1}% ({} B snapshot)",
        fmt_epochs(warm.warm_first_reuse_epochs),
        warm.warm_reusing_tenants,
        warm.newcomers,
        fmt_epochs(warm.cold_first_reuse_epochs),
        warm.cold_reusing_tenants,
        warm.newcomers,
        warm.warm_hit_rate * 100.0,
        warm.cold_hit_rate * 100.0,
        warm.snapshot_bytes,
    );

    let transport = if args.quick {
        transport_compare(40, 1, 2)
    } else {
        transport_compare(200, 3, 2)
    };
    eprintln!(
        "transport {:>4} tenants x {} day(s): bsp {:>7.2} epochs/s vs async(k={}) {:>7.2} ({:.2}x; view staleness mean {:.2} max {}; k=0 bit-match {})",
        transport.tenants,
        transport.days,
        transport.bsp_epochs_per_sec,
        transport.staleness,
        transport.async_epochs_per_sec,
        transport.speedup,
        transport.view_staleness_mean,
        transport.view_staleness_max,
        transport.async0_bit_match,
    );

    let steal = if args.quick {
        work_stealing_sweep(40, 1, 1, &[2])
    } else {
        work_stealing_sweep(1000, 1, 1, &[1, 2, 4])
    };
    let caps_text: Vec<String> = steal
        .caps
        .iter()
        .map(|(threads, rate)| format!("{threads}T {rate:.2}"))
        .collect();
    eprintln!(
        "work-stealing {:>4} tenants x {} day(s) (k={}): bsp {:>7.2} epochs/s vs async {:>7.2} vs steal [{}] ({:.2}x over async; k=0 bit-match {})",
        steal.tenants,
        steal.days,
        steal.staleness,
        steal.bsp_epochs_per_sec,
        steal.async_epochs_per_sec,
        caps_text.join(", "),
        steal.speedup_vs_async,
        steal.steal0_bit_match,
    );

    let obs = if args.quick {
        obs_compare(40, 1)
    } else {
        obs_compare(200, 1)
    };
    eprintln!(
        "observability {:>4} tenants x {} day(s): off {:>7.2} epochs/s vs on {:>7.2} ({:+.1}% overhead; peek p50/p90/p99 {}/{}/{} ns; {} parks, {} steals, {} events)",
        obs.tenants,
        obs.days,
        obs.off_epochs_per_sec,
        obs.on_epochs_per_sec,
        obs.overhead_pct,
        obs.peek_p50_ns,
        obs.peek_p90_ns,
        obs.peek_p99_ns,
        obs.parks,
        obs.steals,
        obs.events,
    );

    let faults = if args.quick {
        fault_compare(40, 1)
    } else {
        fault_compare(200, 1)
    };
    eprintln!(
        "faults {:>4} tenants x {} day(s) (spec '{}'): clean {:>7.2} epochs/s vs faulty {:>7.2} ({:+.1}% recovery overhead; {} injected: {} crashes/{} replayed epochs, {} restarts, {} shard losses, {} checkpoints; reconverged after {} epochs; bit-match {})",
        faults.tenants,
        faults.days,
        faults.spec,
        faults.clean_epochs_per_sec,
        faults.faulty_epochs_per_sec,
        faults.recovery_overhead_pct,
        faults.injected,
        faults.tenants_crashed,
        faults.replayed_epochs,
        faults.committer_restarts,
        faults.shard_losses,
        faults.checkpoints,
        faults.epochs_to_reconverge,
        faults.bit_match,
    );

    // Readers scale with the host: on a 1-core recording container extra
    // reader threads only add scheduling overhead over the wait-free path,
    // while a multi-core host should demonstrate read scaling.
    let serving_readers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4);
    let serving = if args.quick {
        serving_bench(anchors, serving_readers, samples, 2_000)
    } else {
        serving_bench(anchors, serving_readers, 100_000, 10_000)
    };
    eprintln!(
        "serving {} readers x {} lookups ({} anchors, publisher live): {:>10.0} lookups/s sustained (p50/p99/p999 {:.0}/{:.0}/{:.0} ns; {} publishes; obs lookup p50/p99 {}/{} ns); wire {:>8.0} lookups/s (p50/p99 {:.0}/{:.0} ns)",
        serving.readers,
        serving.samples_per_reader,
        serving.anchors,
        serving.sustained_lookups_per_sec,
        serving.p50_ns,
        serving.p99_ns,
        serving.p999_ns,
        serving.publishes,
        serving.obs_lookup_p50_ns,
        serving.obs_lookup_p99_ns,
        serving.wire_lookups_per_sec,
        serving.wire_p50_ns,
        serving.wire_p99_ns,
    );

    let scale_tenants = args
        .scale_tenants
        .unwrap_or(if args.quick { 10_000 } else { 100_000 });
    let scale = scale_bench(scale_tenants);
    eprintln!(
        "scale {:>6} tenants x {} epoch ({} threads): {:>9.0} tenant-epochs/s in {:.3}s (hit rate {:.1}%); adaptive {:>9.0} in {:.3}s ({} grows, {} shrinks); {} parks, {} steals, {} scratch bytes saved",
        scale.tenants,
        scale.epochs,
        scale.threads,
        scale.tenant_epochs_per_sec,
        scale.secs,
        scale.hit_rate * 100.0,
        scale.adaptive_tenant_epochs_per_sec,
        scale.adaptive_secs,
        scale.pool_grows,
        scale.pool_shrinks,
        scale.parks,
        scale.steals,
        scale.scratch_bytes_saved,
    );

    let kernels = kernel_microbench(if args.quick { 200_000 } else { 2_000_000 });
    for k in &kernels {
        eprintln!(
            "kernel dims {:>3}: chunked {:.3} ns/dim vs exact {:.3} ns/dim ({:.2}x)",
            k.dims, k.chunked_ns_per_dim, k.exact_ns_per_dim, k.speedup
        );
    }

    let lookups = lookup_microbench(anchors, samples);
    for (name, m) in &lookups {
        eprintln!(
            "{name:>22}: {:>12.0} ops/s  p50 {:>7.0} ns  p99 {:>7.0} ns  ({} samples, {anchors} anchors)",
            m.per_sec, m.p50_ns, m.p99_ns, m.samples
        );
    }

    // The headline number the CI regression gate watches.
    let shared_hit_per_sec = lookups
        .iter()
        .find(|(n, _)| n == "shared_lookup_hit")
        .map(|(_, m)| m.per_sec)
        .expect("shared_lookup_hit always measured");

    // The label is spliced into hand-rolled JSON: escape the two characters
    // that would break the string literal.
    let label = args.label.replace('\\', "\\\\").replace('"', "\\\"");
    // Attribution labels: the git revision this run measured and the host's
    // core count, so trajectory numbers from different checkouts/machines
    // stay comparable. Outside a git checkout the revision reads "unknown".
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|rev| !rev.is_empty() && rev.chars().all(|c| c.is_ascii_hexdigit()))
        .unwrap_or_else(|| "unknown".to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut run = String::new();
    let _ = write!(
        run,
        "    {{\n      \"label\": \"{}\",\n      \"mode\": \"{}\",\n      \"git_rev\": \"{}\",\n      \"host_cores\": {},\n      \"workers\": {},\n      \"shared_lookup_hit_per_sec\": {:.0},\n      \"fleets\": [\n",
        label,
        if args.quick { "quick" } else { "full" },
        git_rev,
        host_cores,
        host_cores,
        shared_hit_per_sec,
    );
    for (i, m) in fleets.iter().enumerate() {
        let _ = writeln!(
            run,
            "        {{\"tenants\": {}, \"days\": {}, \"mode\": \"{}\", \"epochs\": {}, \"secs\": {:.4}, \"epochs_per_sec\": {:.2}, \"hit_rate\": {:.4}}}{}",
            m.tenants, m.days, m.mode, m.epochs, m.secs, m.epochs_per_sec, m.hit_rate,
            if i + 1 < fleets.len() { "," } else { "" }
        );
    }
    let json_epochs = |e: Option<f64>| match e {
        Some(v) => format!("{v:.2}"),
        None => "null".to_string(),
    };
    run.push_str("      ],\n");
    let _ = writeln!(
        run,
        "      \"warm_start\": {{\"seed_tenants\": {}, \"seed_days\": {}, \"newcomers\": {}, \"days\": {}, \"snapshot_bytes\": {}, \"warm_first_reuse_epochs\": {}, \"warm_reusing_tenants\": {}, \"cold_first_reuse_epochs\": {}, \"cold_reusing_tenants\": {}, \"warm_hit_rate\": {:.4}, \"cold_hit_rate\": {:.4}}},",
        warm.seed_tenants,
        warm.seed_days,
        warm.newcomers,
        warm.days,
        warm.snapshot_bytes,
        json_epochs(warm.warm_first_reuse_epochs),
        warm.warm_reusing_tenants,
        json_epochs(warm.cold_first_reuse_epochs),
        warm.cold_reusing_tenants,
        warm.warm_hit_rate,
        warm.cold_hit_rate,
    );
    let _ = writeln!(
        run,
        "      \"transport\": {{\"tenants\": {}, \"days\": {}, \"staleness\": {}, \"bsp_epochs_per_sec\": {:.2}, \"async_epochs_per_sec\": {:.2}, \"speedup\": {:.3}, \"view_staleness_mean\": {:.3}, \"view_staleness_max\": {}, \"async0_bit_match\": {}}},",
        transport.tenants,
        transport.days,
        transport.staleness,
        transport.bsp_epochs_per_sec,
        transport.async_epochs_per_sec,
        transport.speedup,
        transport.view_staleness_mean,
        transport.view_staleness_max,
        transport.async0_bit_match,
    );
    let caps_json: Vec<String> = steal
        .caps
        .iter()
        .map(|(threads, rate)| format!("{{\"threads\": {threads}, \"epochs_per_sec\": {rate:.2}}}"))
        .collect();
    let _ = writeln!(
        run,
        "      \"work_stealing\": {{\"tenants\": {}, \"days\": {}, \"staleness\": {}, \"bsp_epochs_per_sec\": {:.2}, \"async_epochs_per_sec\": {:.2}, \"caps\": [{}], \"speedup_vs_async\": {:.3}, \"steal0_bit_match\": {}}},",
        steal.tenants,
        steal.days,
        steal.staleness,
        steal.bsp_epochs_per_sec,
        steal.async_epochs_per_sec,
        caps_json.join(", "),
        steal.speedup_vs_async,
        steal.steal0_bit_match,
    );
    let _ = writeln!(
        run,
        "      \"observability\": {{\"tenants\": {}, \"days\": {}, \"off_epochs_per_sec\": {:.2}, \"on_epochs_per_sec\": {:.2}, \"overhead_pct\": {:.2}, \"peek_p50_ns\": {}, \"peek_p90_ns\": {}, \"peek_p99_ns\": {}, \"parks\": {}, \"steals\": {}, \"events\": {}}},",
        obs.tenants,
        obs.days,
        obs.off_epochs_per_sec,
        obs.on_epochs_per_sec,
        obs.overhead_pct,
        obs.peek_p50_ns,
        obs.peek_p90_ns,
        obs.peek_p99_ns,
        obs.parks,
        obs.steals,
        obs.events,
    );
    let _ = writeln!(
        run,
        "      \"faults\": {{\"tenants\": {}, \"days\": {}, \"spec\": \"{}\", \"clean_epochs_per_sec\": {:.2}, \"faulty_epochs_per_sec\": {:.2}, \"recovery_overhead_pct\": {:.2}, \"injected\": {}, \"tenants_crashed\": {}, \"replayed_epochs\": {}, \"committer_restarts\": {}, \"shard_losses\": {}, \"checkpoints\": {}, \"epochs_to_reconverge\": {}, \"bit_match\": {}}},",
        faults.tenants,
        faults.days,
        faults.spec,
        faults.clean_epochs_per_sec,
        faults.faulty_epochs_per_sec,
        faults.recovery_overhead_pct,
        faults.injected,
        faults.tenants_crashed,
        faults.replayed_epochs,
        faults.committer_restarts,
        faults.shard_losses,
        faults.checkpoints,
        faults.epochs_to_reconverge,
        faults.bit_match,
    );
    let _ = writeln!(
        run,
        "      \"serving\": {{\"anchors\": {}, \"readers\": {}, \"samples_per_reader\": {}, \"sustained_lookups_per_sec\": {:.0}, \"p50_ns\": {:.0}, \"p99_ns\": {:.0}, \"p999_ns\": {:.0}, \"publishes\": {}, \"obs_lookup_p50_ns\": {}, \"obs_lookup_p99_ns\": {}, \"wire_lookups_per_sec\": {:.0}, \"wire_p50_ns\": {:.0}, \"wire_p99_ns\": {:.0}}},",
        serving.anchors,
        serving.readers,
        serving.samples_per_reader,
        serving.sustained_lookups_per_sec,
        serving.p50_ns,
        serving.p99_ns,
        serving.p999_ns,
        serving.publishes,
        serving.obs_lookup_p50_ns,
        serving.obs_lookup_p99_ns,
        serving.wire_lookups_per_sec,
        serving.wire_p50_ns,
        serving.wire_p99_ns,
    );
    let kernels_json: Vec<String> = kernels
        .iter()
        .map(|k| {
            format!(
                "{{\"dims\": {}, \"chunked_ns_per_dim\": {:.4}, \"exact_ns_per_dim\": {:.4}, \"speedup\": {:.3}}}",
                k.dims, k.chunked_ns_per_dim, k.exact_ns_per_dim, k.speedup
            )
        })
        .collect();
    let _ = writeln!(
        run,
        "      \"scale\": {{\"tenants\": {}, \"epochs\": {}, \"threads\": {}, \"secs\": {:.4}, \"epochs_per_sec\": {:.2}, \"tenant_epochs_per_sec\": {:.0}, \"hit_rate\": {:.4}, \"adaptive_secs\": {:.4}, \"adaptive_tenant_epochs_per_sec\": {:.0}, \"pool_grows\": {}, \"pool_shrinks\": {}, \"parks\": {}, \"steals\": {}, \"scratch_bytes_saved\": {}, \"kernels\": [{}]}},",
        scale.tenants,
        scale.epochs,
        scale.threads,
        scale.secs,
        scale.epochs_per_sec,
        scale.tenant_epochs_per_sec,
        scale.hit_rate,
        scale.adaptive_secs,
        scale.adaptive_tenant_epochs_per_sec,
        scale.pool_grows,
        scale.pool_shrinks,
        scale.parks,
        scale.steals,
        scale.scratch_bytes_saved,
        kernels_json.join(", "),
    );
    run.push_str("      \"lookups\": [\n");
    for (i, (name, m)) in lookups.iter().enumerate() {
        let _ = writeln!(
            run,
            "        {{\"name\": \"{name}\", \"anchors\": {anchors}, \"samples\": {}, \"per_sec\": {:.0}, \"p50_ns\": {:.0}, \"p99_ns\": {:.0}}}{}",
            m.samples, m.per_sec, m.p50_ns, m.p99_ns,
            if i + 1 < lookups.len() { "," } else { "" }
        );
    }
    run.push_str("      ]\n    }");

    let existing = if args.append {
        std::fs::read_to_string(&args.out).ok()
    } else {
        None
    };
    let json = match existing {
        // Splice the new run into the existing trajectory's `runs` array.
        Some(prior) => {
            let trimmed = prior.trim_end();
            let body = trimmed
                .strip_suffix("]\n}")
                .or_else(|| trimmed.strip_suffix("]}"))
                .unwrap_or_else(|| panic!("{} is not a fleet-bench trajectory file", args.out))
                .trim_end()
                .to_string();
            format!("{body},\n{run}\n  ]\n}}\n")
        }
        None => format!("{{\n  \"runs\": [\n{run}\n  ]\n}}\n"),
    };
    std::fs::write(&args.out, &json).expect("write BENCH_fleet.json");
    eprintln!("wrote {}", args.out);

    if let Some(baseline) = &args.baseline {
        let base = std::fs::read_to_string(baseline).expect("read baseline file");
        let base_per_sec = extract_number(&base, "shared_lookup_hit_per_sec")
            .expect("baseline has shared_lookup_hit_per_sec");
        let floor = base_per_sec * (1.0 - args.max_regress);
        eprintln!(
            "regression gate: {shared_hit_per_sec:.0} ops/s vs baseline {base_per_sec:.0} (floor {floor:.0})"
        );
        if shared_hit_per_sec < floor {
            eprintln!(
                "FAIL: shared_lookup_hit_per_sec regressed more than {:.0}%",
                args.max_regress * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("regression gate passed");
    }
}
