//! Cross-crate integration tests: the full DejaVu pipeline (profile → cluster
//! → classify → cache → reuse) against the simulated platform, service models
//! and baselines.

use dejavu::baselines::{FixedMax, Oracle, RightScale};
use dejavu::cloud::{AllocationSpace, DecisionReason, ResourceAllocation};
use dejavu::core::{DejaVuConfig, DejaVuController, DejaVuPhase};
use dejavu::experiments::engine::{RunConfig, SimulationEngine};
use dejavu::services::{CassandraService, ServiceModel, SpecWebService, SpecWebWorkload};
use dejavu::simcore::SimDuration;
use dejavu::traces::{hotmail_week, messenger_week, RequestMix};

fn scale_out_engine(days: usize, seed: u64) -> SimulationEngine {
    let trace = messenger_week(seed).days(0, days);
    SimulationEngine::new(RunConfig::scale_out(
        "integration",
        trace,
        RequestMix::update_heavy(),
        seed,
    ))
}

#[test]
fn dejavu_learns_then_reuses_and_beats_overprovisioning_on_cost() {
    let engine = scale_out_engine(3, 1);
    let service = CassandraService::update_heavy();
    let space = engine.config().space.clone();

    let mut dejavu = DejaVuController::new(
        DejaVuConfig::builder().seed(1).build(),
        Box::new(service),
        space.clone(),
    );
    let dejavu_run = engine.run(&service, &mut dejavu);
    assert_eq!(dejavu.phase(), DejaVuPhase::Reuse);
    assert!(dejavu.stats().num_classes >= 2);
    assert!(dejavu.stats().cache_hits > 10);
    assert!(!dejavu.repository().is_empty());

    let mut fixed = FixedMax::new(&space);
    let fixed_run = engine.run(&service, &mut fixed);
    assert!(dejavu_run.total_cost < fixed_run.total_cost);
    assert!(dejavu_run.reuse_savings_vs(&fixed_run) > 0.15);
    // The service stays healthy the overwhelming majority of the time.
    assert!(dejavu_run.slo_violation_fraction < 0.10);
}

#[test]
fn dejavu_adaptations_are_seconds_not_minutes() {
    let engine = scale_out_engine(2, 2);
    let service = CassandraService::update_heavy();
    let mut dejavu = DejaVuController::new(
        DejaVuConfig::builder().seed(2).build(),
        Box::new(service),
        engine.config().space.clone(),
    );
    let _ = engine.run(&service, &mut dejavu);
    let stats = dejavu.stats();
    assert!(
        stats.mean_adaptation_secs() <= 15.0,
        "mean {}",
        stats.mean_adaptation_secs()
    );
    assert!(stats
        .adaptation_times_secs
        .iter()
        .all(|&s| s <= engine.config().space.len() as f64 * 70.0));
}

#[test]
fn rightscale_converges_but_needs_multiple_calm_periods() {
    let engine = scale_out_engine(2, 3);
    let service = CassandraService::update_heavy();
    let mut rs =
        RightScale::with_calm_time(engine.config().space.clone(), SimDuration::from_mins(3.0));
    let run = engine.run(&service, &mut rs);
    assert!(!run.adaptations.is_empty());
    assert!(
        run.adaptations
            .iter()
            .all(|a| a.reason == DecisionReason::ThresholdVote),
        "RightScale only acts on votes"
    );
    // It eventually serves the evening peak with a sizeable deployment.
    assert!(run.instance_count.max().unwrap() >= 8.0);
}

#[test]
fn oracle_never_does_worse_than_dejavu_on_cost() {
    let engine = scale_out_engine(3, 4);
    let service = CassandraService::update_heavy();
    let mut oracle = Oracle::new(Box::new(service), engine.config().space.clone());
    let oracle_run = engine.run(&service, &mut oracle);
    let mut dejavu = DejaVuController::new(
        DejaVuConfig::builder().seed(4).build(),
        Box::new(service),
        engine.config().space.clone(),
    );
    let dejavu_run = engine.run(&service, &mut dejavu);
    assert!(oracle_run.total_cost <= dejavu_run.total_cost * 1.05);
    assert!(oracle_run.slo_violation_fraction < 0.05);
}

#[test]
fn scale_up_pipeline_switches_instance_types() {
    let trace = hotmail_week(5).days(0, 3);
    let engine = SimulationEngine::new(RunConfig::scale_up(
        "integration-scale-up",
        trace,
        RequestMix::read_only(),
        5,
    ));
    let service = SpecWebService::new(SpecWebWorkload::Support);
    let mut dejavu = DejaVuController::new(
        DejaVuConfig::builder().seed(5).build(),
        Box::new(service),
        engine.config().space.clone(),
    );
    let run = engine.run(&service, &mut dejavu);
    // Both configurations appear: large most of the time, extra-large at the peak.
    assert!(run.capacity_units.min().unwrap() <= 5.0);
    assert!(run.capacity_units.max().unwrap() >= 10.0);
    // QoS stays acceptable the vast majority of the time.
    assert!(run.slo_violation_fraction < 0.2);
}

#[test]
fn unforeseen_volume_triggers_full_capacity_fallback() {
    // The HotMail-style trace contains a day-4 surge beyond anything the
    // learning day contained.
    let trace = hotmail_week(6).days(0, 5);
    let engine = SimulationEngine::new(RunConfig::scale_out(
        "integration-unforeseen",
        trace,
        RequestMix::update_heavy(),
        6,
    ));
    let service = CassandraService::update_heavy();
    let mut dejavu = DejaVuController::new(
        DejaVuConfig::builder().seed(6).build(),
        Box::new(service),
        engine.config().space.clone(),
    );
    let run = engine.run(&service, &mut dejavu);
    let full_capacity_events = run
        .adaptations
        .iter()
        .filter(|a| a.reason == DecisionReason::CacheMiss && a.to == ResourceAllocation::large(10))
        .count();
    assert!(
        full_capacity_events >= 1 || dejavu.stats().unforeseen >= 1,
        "the surge should trigger at least one unforeseen-workload fallback"
    );
}

#[test]
fn facade_reexports_compose() {
    // The facade exposes every layer needed to assemble a controller by hand.
    let space = AllocationSpace::scale_out(2, 10).expect("valid range");
    let controller = DejaVuController::new(
        DejaVuConfig::builder().learning_hours(12).seed(9).build(),
        Box::new(CassandraService::update_heavy()),
        space,
    );
    assert_eq!(controller.repository().len(), 0);
    let slo = CassandraService::update_heavy().slo();
    assert_eq!(slo.target(), 60.0);
}
