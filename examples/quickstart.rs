//! Quickstart: run DejaVu end to end on a two-day slice of the Messenger-style
//! trace and print what it learned and saved.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dejavu::baselines::FixedMax;
use dejavu::core::{DejaVuConfig, DejaVuController};
use dejavu::experiments::engine::{RunConfig, SimulationEngine};
use dejavu::services::CassandraService;
use dejavu::traces::{messenger_week, RequestMix};

fn main() {
    // A Cassandra-like service under an update-heavy workload, scaled out over
    // 1–10 large instances, driven by the first three days of the trace.
    let service = CassandraService::update_heavy();
    let trace = messenger_week(42).days(0, 3);
    let config = RunConfig::scale_out("quickstart", trace, RequestMix::update_heavy(), 42);
    let engine = SimulationEngine::new(config);

    // DejaVu: learn on day one, reuse cached allocations afterwards.
    let mut dejavu = DejaVuController::new(
        DejaVuConfig::builder().seed(42).build(),
        Box::new(service),
        engine.config().space.clone(),
    );
    let dejavu_run = engine.run(&service, &mut dejavu);

    // The overprovisioning baseline the paper compares cost against.
    let mut fixed = FixedMax::new(&engine.config().space.clone());
    let fixed_run = engine.run(&service, &mut fixed);

    let stats = dejavu.stats();
    println!("workload classes identified : {}", stats.num_classes);
    println!(
        "signature metrics           : {:?}",
        dejavu.signature_metrics()
    );
    println!(
        "cache hit rate              : {:.1}%",
        stats.hit_rate() * 100.0
    );
    println!(
        "mean adaptation time        : {:.1} s",
        stats.mean_adaptation_secs()
    );
    println!(
        "SLO violations              : {:.1}% of samples",
        dejavu_run.slo_violation_fraction * 100.0
    );
    println!(
        "provisioning cost           : ${:.2} (vs ${:.2} always at full capacity)",
        dejavu_run.total_cost, fixed_run.total_cost
    );
    println!(
        "savings over the reuse days : {:.1}%",
        dejavu_run.reuse_savings_vs(&fixed_run) * 100.0
    );
    println!("\ncached allocations:");
    for (key, entry) in dejavu.repository().entries() {
        println!(
            "  class {} / interference bucket {} -> {} ({} reuses)",
            key.class, key.interference_bucket, entry.allocation, entry.hits
        );
    }
}
