//! Offline API-shape stand-in for [serde](https://serde.rs).
//!
//! The workspace builds hermetically (no crates.io access), so this crate
//! provides just enough of serde's surface for the sources to compile: the
//! `Serialize`/`Deserialize` marker traits and derive macros that emit empty
//! impls of them, so `T: Serialize` bounds work — `dejavu_fleet::snapshot`
//! asserts those bounds on its snapshot types at compile time to keep them
//! serde-shaped for the planned swap to the real crates. The actual byte
//! format of fleet snapshots is the hand-rolled, versioned text codec in
//! `dejavu_fleet::snapshot`, chosen for bit-exact determinism; replacing this
//! stub with the real serde stays a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. The vendored derive implements
/// it (with no methods) for every non-generic type that derives `Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`. The vendored derive implements
/// it for every non-generic type that derives `Deserialize`.
pub trait Deserialize<'de>: Sized {}
