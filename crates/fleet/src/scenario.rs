//! Fleet scenarios: which tenants run, on what traces, with what services.
//!
//! A [`Scenario`] is a reproducible description of a whole fleet: every tenant
//! gets a deterministic seed derived from the scenario seed, so two runs of
//! the same scenario are bit-identical. The [`ScenarioBuilder`] composes
//! tenant *families* — groups whose workloads genuinely recur across members
//! (same service, same request mix, traces drawn from a small seed pool) —
//! because recurrence is precisely what makes a shared signature repository
//! pay off.

use crate::engine::RunConfig;
use crate::shared_repo::{namespace_for, TenantId};
use dejavu_cloud::{AllocationSpace, InterferenceSchedule};
use dejavu_services::{
    CassandraService, RubisService, ServiceModel, SpecWebService, SpecWebWorkload,
};
use dejavu_simcore::SimDuration;
use dejavu_traces::{
    hotmail_week, messenger_week, sine_trace, spikes::with_flash_crowds, LoadTrace, RequestMix,
    ServiceKind,
};

/// Which allocation lattice a tenant scales over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceKind {
    /// Horizontal scaling over `min..=max` large instances.
    ScaleOut {
        /// Minimum instance count.
        min: u32,
        /// Maximum instance count.
        max: u32,
    },
    /// Vertical scaling of a fixed instance count (large ↔ extra-large).
    ScaleUp {
        /// The fixed instance count.
        instances: u32,
    },
}

impl SpaceKind {
    /// Materializes the allocation space.
    pub fn space(self) -> AllocationSpace {
        match self {
            SpaceKind::ScaleOut { min, max } => {
                AllocationSpace::scale_out(min, max).expect("builder ranges are valid")
            }
            SpaceKind::ScaleUp { instances } => {
                AllocationSpace::scale_up(instances).expect("builder counts are valid")
            }
        }
    }
}

/// Which service model a tenant deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceSpec {
    /// Cassandra-like store under the YCSB update-heavy mix.
    CassandraUpdateHeavy,
    /// SPECweb-like 3-tier web service.
    SpecWeb(SpecWebWorkload),
    /// RUBiS-like auction site with the default browsing mix.
    RubisBrowsing,
}

impl ServiceSpec {
    /// Builds the service model.
    pub fn build(self) -> Box<dyn ServiceModel> {
        match self {
            ServiceSpec::CassandraUpdateHeavy => Box::new(CassandraService::update_heavy()),
            ServiceSpec::SpecWeb(workload) => Box::new(SpecWebService::new(workload)),
            ServiceSpec::RubisBrowsing => Box::new(RubisService::default_browsing()),
        }
    }

    /// The service kind, for namespacing.
    pub fn kind(self) -> ServiceKind {
        match self {
            ServiceSpec::CassandraUpdateHeavy => ServiceKind::Cassandra,
            ServiceSpec::SpecWeb(_) => ServiceKind::SpecWeb,
            ServiceSpec::RubisBrowsing => ServiceKind::Rubis,
        }
    }

    /// The request mix the family's clients offer.
    pub fn mix(self) -> RequestMix {
        self.build().default_mix()
    }
}

/// One tenant of the fleet.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Fleet-wide tenant id (also the deterministic commit order).
    pub id: TenantId,
    /// Label used in reports.
    pub name: String,
    /// The deployed service.
    pub service: ServiceSpec,
    /// The load trace driving this tenant.
    pub trace: LoadTrace,
    /// Request mix offered by the tenant's clients.
    pub mix: RequestMix,
    /// The allocation lattice the tenant scales over.
    pub space: SpaceKind,
    /// Interference injected by the tenant's co-located neighbours.
    pub interference: InterferenceSchedule,
    /// Deterministic per-tenant seed (client noise, profiling, clustering).
    pub seed: u64,
    /// Fleet time at which the tenant joins. The BSP engine admits tenants at
    /// epoch barriers, so the effective join is the first barrier at or after
    /// this time; the tenant's trace (and local clock) starts there.
    pub start: SimDuration,
    /// Fleet time at which the tenant retires (truncating its trace), if it
    /// leaves mid-run. Retirement also happens at the next epoch barrier.
    pub stop: Option<SimDuration>,
}

impl TenantSpec {
    /// The namespace this tenant shares entries under: tenants with the same
    /// service kind, request mix and allocation space can reuse each other's
    /// tuning decisions; everyone else is isolated by construction.
    pub fn namespace(&self) -> u64 {
        namespace_for(self.service.kind(), self.mix, &self.space.space())
    }

    /// Builds the single-tenant run configuration.
    pub fn run_config(&self, tick: SimDuration) -> RunConfig {
        let base = match self.space {
            SpaceKind::ScaleOut { .. } => {
                RunConfig::scale_out(self.name.clone(), self.trace.clone(), self.mix, self.seed)
            }
            SpaceKind::ScaleUp { .. } => {
                RunConfig::scale_up(self.name.clone(), self.trace.clone(), self.mix, self.seed)
            }
        };
        base.with_interference(self.interference.clone())
            .with_tick(tick)
    }
}

/// A reproducible fleet description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label.
    pub name: String,
    /// The tenants, in commit order.
    pub tenants: Vec<TenantSpec>,
    /// Observation tick of every tenant engine.
    pub tick: SimDuration,
    /// Epoch length: worker threads synchronize on the shared repository at
    /// every epoch boundary.
    pub epoch: SimDuration,
}

/// One tenant's nominal tenancy window in whole epochs, derived from its
/// start/stop times and trace duration. Admission and retirement are
/// epoch-aligned, so these windows are what every commit transport schedules
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochWindow {
    /// First global epoch in which the tenant steps (its join barrier).
    pub start: usize,
    /// Global epoch count at whose barrier the tenant retires, if it leaves
    /// before its trace runs out.
    pub stop: Option<usize>,
    /// Nominal end of the window (exclusive): `min(stop, start + trace
    /// epochs)`.
    pub end: usize,
}

impl Scenario {
    /// Every tenant's [`EpochWindow`], in tenant order.
    pub fn epoch_windows(&self) -> Vec<EpochWindow> {
        let epoch_secs = self.epoch.as_secs();
        let to_epochs = |secs: f64| (secs / epoch_secs).ceil() as usize;
        self.tenants
            .iter()
            .map(|spec| {
                let start = to_epochs(spec.start.as_secs());
                let stop = spec.stop.map(|stop| to_epochs(stop.as_secs()).max(start));
                let trace_epochs = to_epochs(spec.trace.duration().as_secs());
                let end = match stop {
                    Some(stop) => stop.min(start + trace_epochs),
                    None => start + trace_epochs,
                };
                EpochWindow { start, stop, end }
            })
            .collect()
    }

    /// The fleet horizon: the epoch count covering every tenant's window.
    pub fn horizon_epochs(&self) -> usize {
        self.epoch_windows()
            .iter()
            .map(|w| w.end)
            .max()
            .unwrap_or(0)
    }
}

/// SplitMix64 — derives stable per-tenant seeds from the scenario seed.
fn mix_seed(base: u64, salt: u64) -> u64 {
    let mut z = base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds scenarios out of tenant families.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    seed: u64,
    days: usize,
    tick: SimDuration,
    epoch: SimDuration,
    tenants: Vec<TenantSpec>,
}

impl ScenarioBuilder {
    /// Starts a scenario with the given label and master seed, simulating
    /// `days` days per tenant (capped at the week the traces cover).
    pub fn new(name: impl Into<String>, seed: u64, days: usize) -> Self {
        ScenarioBuilder {
            name: name.into(),
            seed,
            days: days.clamp(1, 7),
            tick: SimDuration::from_secs(120.0),
            epoch: SimDuration::from_hours(1.0),
            tenants: Vec::new(),
        }
    }

    /// Overrides the observation tick (default 120 s).
    pub fn tick(mut self, tick: SimDuration) -> Self {
        self.tick = tick;
        self
    }

    /// Overrides the epoch length (default 1 h).
    pub fn epoch(mut self, epoch: SimDuration) -> Self {
        self.epoch = epoch;
        self
    }

    fn push(
        &mut self,
        family: &str,
        service: ServiceSpec,
        trace: LoadTrace,
        space: SpaceKind,
        interference: InterferenceSchedule,
    ) {
        let id = self.tenants.len();
        self.tenants.push(TenantSpec {
            id,
            name: format!("{family}-{id}"),
            service,
            mix: service.mix(),
            trace,
            space,
            interference,
            seed: mix_seed(self.seed, id as u64 + 1),
            start: SimDuration::from_secs(0.0),
            stop: None,
        });
    }

    /// Adds `n` Cassandra tenants on diurnal HotMail/Messenger-style traces —
    /// the bread-and-butter fleet whose day-to-day workloads recur across
    /// members (traces come from a pool of 3 seeds per family).
    pub fn diurnal_fleet(mut self, n: usize) -> Self {
        for i in 0..n {
            let trace_seed = 1 + (i % 3) as u64;
            let trace = if i % 2 == 0 {
                hotmail_week(trace_seed)
            } else {
                messenger_week(trace_seed)
            };
            self.push(
                "diurnal",
                ServiceSpec::CassandraUpdateHeavy,
                trace.days(0, self.days),
                SpaceKind::ScaleOut { min: 1, max: 10 },
                InterferenceSchedule::none(),
            );
        }
        self
    }

    /// Adds `n` Cassandra tenants whose diurnal traces are hit by flash
    /// crowds, exercising the unforeseen-workload fallback fleet-wide.
    pub fn spike_storm(mut self, n: usize) -> Self {
        for i in 0..n {
            let trace_seed = 1 + (i % 3) as u64;
            let base = messenger_week(trace_seed).days(0, self.days);
            let trace = with_flash_crowds(&base, 2, 1.35, mix_seed(self.seed, 0x5710 + i as u64));
            self.push(
                "spike",
                ServiceSpec::CassandraUpdateHeavy,
                trace,
                SpaceKind::ScaleOut { min: 1, max: 10 },
                InterferenceSchedule::none(),
            );
        }
        self
    }

    /// Adds `n` RUBiS tenants under sine-wave loads with a small pool of
    /// periods/amplitudes (Figure 1's workload, fleet-sized).
    pub fn sine_sweep(mut self, n: usize) -> Self {
        for i in 0..n {
            let period_hours = [6.0, 8.0, 12.0][i % 3];
            let base = [0.45, 0.55][i % 2];
            let amplitude = [0.3, 0.35][(i / 2) % 2];
            let trace = sine_trace(
                &format!("sine-{period_hours}h"),
                SimDuration::from_hours(1.0),
                SimDuration::from_days(self.days as f64),
                SimDuration::from_hours(period_hours),
                base,
                amplitude,
            )
            .expect("builder sine parameters are valid");
            self.push(
                "sine",
                ServiceSpec::RubisBrowsing,
                trace,
                SpaceKind::ScaleOut { min: 1, max: 10 },
                InterferenceSchedule::none(),
            );
        }
        self
    }

    /// Adds `n` Cassandra tenants co-located with noisy neighbours (the
    /// paper's §4.3 interference microbenchmark, fleet-sized).
    pub fn interference_heavy(mut self, n: usize) -> Self {
        for i in 0..n {
            let trace_seed = 1 + (i % 3) as u64;
            self.push(
                "interference",
                ServiceSpec::CassandraUpdateHeavy,
                hotmail_week(trace_seed).days(0, self.days),
                SpaceKind::ScaleOut { min: 1, max: 10 },
                InterferenceSchedule::paper_scenario(),
            );
        }
        self
    }

    /// Adds `n` SPECweb tenants (support/banking/e-commerce rotating) on the
    /// scale-up lattice.
    pub fn specweb_fleet(mut self, n: usize) -> Self {
        let workloads = [
            SpecWebWorkload::Support,
            SpecWebWorkload::Banking,
            SpecWebWorkload::Ecommerce,
        ];
        for i in 0..n {
            let trace_seed = 1 + (i % 3) as u64;
            self.push(
                "specweb",
                ServiceSpec::SpecWeb(workloads[i % workloads.len()]),
                hotmail_week(trace_seed).days(0, self.days),
                SpaceKind::ScaleUp { instances: 5 },
                InterferenceSchedule::none(),
            );
        }
        self
    }

    /// Schedules a staggered start for every tenant from id `from` onward:
    /// the first joins the fleet at `first_at`, each subsequent one `every`
    /// later. Tenants added by later family calls keep their default
    /// immediate start unless scheduled again.
    pub fn stagger_arrivals(
        mut self,
        from: usize,
        first_at: SimDuration,
        every: SimDuration,
    ) -> Self {
        for t in self.tenants.iter_mut().skip(from) {
            let wave = t.id - from;
            t.start = first_at + every * wave as f64;
        }
        self
    }

    /// Schedules tenant `tenant` to join the fleet at `at` (effective at the
    /// first epoch barrier at or after `at`).
    pub fn arrive_at(mut self, tenant: usize, at: SimDuration) -> Self {
        self.tenants[tenant].start = at;
        self
    }

    /// Schedules tenant `tenant` to leave the fleet at `at` (effective at the
    /// first epoch barrier at or after `at`), truncating its run.
    pub fn depart_at(mut self, tenant: usize, at: SimDuration) -> Self {
        self.tenants[tenant].stop = Some(at);
        self
    }

    /// Finishes the scenario.
    pub fn build(self) -> Scenario {
        Scenario {
            name: self.name,
            tenants: self.tenants,
            tick: self.tick,
            epoch: self.epoch,
        }
    }
}

/// The standard mixed fleet the `fleet` experiment runs: mostly diurnal
/// tenants, plus spike storms, sine sweeps, interference-heavy co-location and
/// a SPECweb contingent.
pub fn standard_fleet(tenants: usize, days: usize, seed: u64) -> Scenario {
    let tenants = tenants.max(1);
    let diurnal = (tenants * 40).div_ceil(100);
    let spike = tenants * 15 / 100;
    let sine = tenants * 15 / 100;
    let interference = tenants * 15 / 100;
    let specweb = tenants - diurnal - spike - sine - interference;
    ScenarioBuilder::new(format!("standard-fleet-{tenants}"), seed, days)
        .diurnal_fleet(diurnal)
        .spike_storm(spike)
        .sine_sweep(sine)
        .interference_heavy(interference)
        .specweb_fleet(specweb)
        .build()
}

/// The standard fleet under churn: the last quarter of the tenants join
/// staggered (one per epoch, starting after `warmup_hours`), and every tenth
/// of the founding tenants departs at the halfway point. Exercises elastic
/// tenancy: newcomers measure how fast the warm shared cache converges them,
/// and departures verify their knowledge survives them.
pub fn churn_fleet(tenants: usize, days: usize, seed: u64, warmup_hours: u64) -> Scenario {
    let mut scenario = standard_fleet(tenants, days, seed);
    scenario.name = format!("churn-fleet-{tenants}");
    let mut builder_tenants = std::mem::take(&mut scenario.tenants);
    let late_from = builder_tenants.len() - builder_tenants.len() / 4;
    for t in builder_tenants.iter_mut().skip(late_from) {
        let wave = t.id - late_from;
        t.start = SimDuration::from_hours(warmup_hours as f64) + scenario.epoch * wave as f64;
    }
    let half = SimDuration::from_hours(days as f64 * 12.0);
    for t in builder_tenants.iter_mut().take(late_from).step_by(10) {
        t.stop = Some(half);
    }
    scenario.tenants = builder_tenants;
    scenario
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_fleet_has_requested_size_and_unique_ids() {
        let s = standard_fleet(20, 2, 7);
        assert_eq!(s.tenants.len(), 20);
        for (i, t) in s.tenants.iter().enumerate() {
            assert_eq!(t.id, i);
        }
        let seeds: std::collections::HashSet<u64> = s.tenants.iter().map(|t| t.seed).collect();
        assert_eq!(seeds.len(), 20, "per-tenant seeds must be distinct");
    }

    #[test]
    fn scenarios_are_reproducible() {
        let a = standard_fleet(8, 2, 42);
        let b = standard_fleet(8, 2, 42);
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.trace.levels(), y.trace.levels());
        }
    }

    #[test]
    fn same_family_tenants_share_a_namespace() {
        let s = ScenarioBuilder::new("ns", 1, 2)
            .diurnal_fleet(4)
            .specweb_fleet(4)
            .build();
        assert_eq!(s.tenants[0].namespace(), s.tenants[1].namespace());
        assert_ne!(s.tenants[0].namespace(), s.tenants[4].namespace());
        // SPECweb workloads rotate every 3 tenants: 4 and 7 run Support again.
        assert_eq!(s.tenants[4].namespace(), s.tenants[7].namespace());
        assert_ne!(s.tenants[4].namespace(), s.tenants[5].namespace());
    }

    #[test]
    fn churn_fleet_staggers_late_joiners_and_schedules_departures() {
        let s = churn_fleet(20, 2, 7, 24);
        assert_eq!(s.tenants.len(), 20);
        // Founding tenants start immediately; the last quarter is staggered.
        assert!(s.tenants[..15].iter().all(|t| t.start.is_zero()));
        for (i, t) in s.tenants[15..].iter().enumerate() {
            let expected = SimDuration::from_hours(24.0) + s.epoch * i as f64;
            assert_eq!(t.start.as_secs(), expected.as_secs(), "tenant {}", t.id);
            assert!(t.stop.is_none(), "late joiners stay");
        }
        // Every tenth founder departs at the halfway point.
        let leavers: Vec<usize> = s
            .tenants
            .iter()
            .filter(|t| t.stop.is_some())
            .map(|t| t.id)
            .collect();
        assert_eq!(leavers, vec![0, 10]);
        assert_eq!(
            s.tenants[0].stop.unwrap().as_secs(),
            SimDuration::from_hours(24.0).as_secs()
        );
        // The schedule is derived deterministically from the scenario.
        let again = churn_fleet(20, 2, 7, 24);
        for (a, b) in s.tenants.iter().zip(&again.tenants) {
            assert_eq!(a.start.as_secs(), b.start.as_secs());
            assert_eq!(a.stop.map(|d| d.as_secs()), b.stop.map(|d| d.as_secs()));
        }
    }

    #[test]
    fn stagger_and_window_builders_set_tenant_schedules() {
        let s = ScenarioBuilder::new("windows", 1, 2)
            .diurnal_fleet(4)
            .stagger_arrivals(
                2,
                SimDuration::from_hours(2.0),
                SimDuration::from_hours(1.0),
            )
            .arrive_at(1, SimDuration::from_hours(5.0))
            .depart_at(0, SimDuration::from_hours(30.0))
            .build();
        assert!(s.tenants[0].start.is_zero());
        assert_eq!(s.tenants[1].start.as_hours(), 5.0);
        assert_eq!(s.tenants[2].start.as_hours(), 2.0);
        assert_eq!(s.tenants[3].start.as_hours(), 3.0);
        assert_eq!(s.tenants[0].stop.unwrap().as_hours(), 30.0);
        assert!(s.tenants[3].stop.is_none());
    }

    #[test]
    fn epoch_windows_are_barrier_aligned() {
        let s = ScenarioBuilder::new("win", 1, 2)
            .diurnal_fleet(3)
            .arrive_at(1, SimDuration::from_hours(5.5))
            .depart_at(2, SimDuration::from_hours(30.0))
            .build();
        let w = s.epoch_windows();
        assert_eq!(
            w[0],
            EpochWindow {
                start: 0,
                stop: None,
                end: 48
            }
        );
        // A mid-epoch arrival is admitted at the next barrier; the trace
        // still runs in full, shifted.
        assert_eq!(
            w[1],
            EpochWindow {
                start: 6,
                stop: None,
                end: 54
            }
        );
        assert_eq!(
            w[2],
            EpochWindow {
                start: 0,
                stop: Some(30),
                end: 30
            }
        );
        assert_eq!(s.horizon_epochs(), 54);
    }

    #[test]
    fn run_configs_follow_the_space_kind() {
        let s = ScenarioBuilder::new("rc", 1, 1)
            .diurnal_fleet(1)
            .specweb_fleet(1)
            .build();
        let out = s.tenants[0].run_config(s.tick);
        assert_eq!(out.space.len(), 10);
        let up = s.tenants[1].run_config(s.tick);
        assert_eq!(up.space.len(), 2);
        assert_eq!(out.tick, s.tick);
    }
}
