//! A generative model of how low-level metrics respond to a workload.
//!
//! The paper validates empirically (Figure 4) that hardware counters and
//! xentop metrics respond smoothly and distinctly to changes in workload
//! intensity and type, with small trial-to-trial variance — that is the only
//! property DejaVu requires of them. This module encodes that property
//! directly: every metric's expected per-second rate is a deterministic
//! function of the workload (service kind, intensity, read/write mix), with
//! the coefficients chosen so that
//!
//! * the Table-1 events are strongly informative for RUBiS-like workloads,
//! * a FLOPS-rate-style counter cleanly separates SPECweb workload volumes
//!   (Figure 4(a)),
//! * a few counters are deliberately uninformative (noise), which is what the
//!   CFS feature-selection stage must learn to discard, and
//! * xentop metrics track utilization and the read/write mix.

use crate::counter::{MetricCatalog, MetricId, MetricKind};
use dejavu_traces::{ServiceKind, Workload};
use serde::{Deserialize, Serialize};

/// The workload operating point a metric value is generated for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPoint {
    /// Which service is exercised.
    pub service: ServiceKind,
    /// Normalized intensity (fraction of full-capacity peak, `[0, 1.5]`).
    pub intensity: f64,
    /// Fraction of read requests in `[0, 1]`.
    pub read_fraction: f64,
}

impl WorkloadPoint {
    /// Creates a workload point.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is negative/not finite or `read_fraction` is
    /// outside `[0, 1]`.
    pub fn new(service: ServiceKind, intensity: f64, read_fraction: f64) -> Self {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "invalid intensity"
        );
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction must be in [0, 1]"
        );
        WorkloadPoint {
            service,
            intensity,
            read_fraction,
        }
    }
}

impl From<&Workload> for WorkloadPoint {
    fn from(w: &Workload) -> Self {
        WorkloadPoint {
            service: w.service,
            intensity: w.intensity.value(),
            read_fraction: w.mix.read_fraction(),
        }
    }
}

impl From<Workload> for WorkloadPoint {
    fn from(w: Workload) -> Self {
        WorkloadPoint::from(&w)
    }
}

/// The response coefficients of one metric: expected rate =
/// `base + per_intensity * intensity + per_read * read_fraction
///  + interaction * intensity * read_fraction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricResponse {
    /// Rate at zero load.
    pub base: f64,
    /// Sensitivity to workload intensity.
    pub per_intensity: f64,
    /// Sensitivity to the read fraction.
    pub per_read: f64,
    /// Intensity × read-fraction interaction term.
    pub interaction: f64,
    /// Relative trial-to-trial noise (fraction of the expected value).
    pub relative_noise: f64,
}

/// The generative metric model over a [`MetricCatalog`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricModel {
    catalog: MetricCatalog,
    /// Response coefficients precomputed per `(service, metric)`. `response`
    /// is a pure function of the catalogue, so this is a lookup table of the
    /// values `compute_response` derives — the samplers call it for every
    /// metric of every profile, fleet-wide. Derived state: when the vendored
    /// serde stub is swapped for the real crate, mark this `#[serde(skip)]`
    /// and rebuild it on deserialize rather than trusting the wire.
    responses: Vec<MetricResponse>,
}

impl Default for MetricModel {
    fn default() -> Self {
        MetricModel::new(MetricCatalog::standard())
    }
}

impl MetricModel {
    /// Creates a model over the given catalogue.
    pub fn new(catalog: MetricCatalog) -> Self {
        let mut model = MetricModel {
            catalog,
            responses: Vec::new(),
        };
        model.responses = ServiceKind::ALL
            .iter()
            .flat_map(|&service| {
                model
                    .catalog
                    .descriptors()
                    .iter()
                    .map(move |d| (service, d.id))
                    .collect::<Vec<_>>()
            })
            .map(|(service, id)| model.compute_response(id, service))
            .collect();
        model
    }

    fn service_index(service: ServiceKind) -> usize {
        ServiceKind::ALL
            .iter()
            .position(|&s| s == service)
            .expect("every service kind is in ALL")
    }

    /// The catalogue this model generates values for.
    pub fn catalog(&self) -> &MetricCatalog {
        &self.catalog
    }

    /// How strongly this service exercises the CPU/cache counters.
    fn service_factor(service: ServiceKind) -> f64 {
        match service {
            // RUBiS: CPU + cache heavy dynamic content.
            ServiceKind::Rubis => 1.0,
            // Cassandra: memory/write intensive.
            ServiceKind::Cassandra => 0.7,
            // SPECweb support: mostly I/O.
            ServiceKind::SpecWeb => 0.5,
        }
    }

    /// The response coefficients of metric `id` for `service`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the catalogue.
    pub fn response(&self, id: MetricId, service: ServiceKind) -> MetricResponse {
        self.responses[Self::service_index(service) * self.catalog.len() + id.0]
    }

    fn compute_response(&self, id: MetricId, service: ServiceKind) -> MetricResponse {
        let desc = self
            .catalog
            .get(id)
            .expect("metric id must come from this catalogue");
        let sf = Self::service_factor(service);
        let idx = id.0 as f64;
        match (desc.kind, desc.name.as_str()) {
            // Table-1 events (ids 0..8): strongly informative, especially for RUBiS.
            (MetricKind::Hpc, _) if id.0 < 8 => MetricResponse {
                base: 50.0 + 5.0 * idx,
                per_intensity: (200.0 + 40.0 * idx) * sf,
                per_read: if id.0.is_multiple_of(2) { 60.0 } else { -45.0 } * (1.0 + 0.2 * idx),
                interaction: 25.0 * sf,
                relative_noise: 0.02,
            },
            // FLOPS rate: the Figure-4(a) counter; dominant for SPECweb.
            (MetricKind::Hpc, "flops_rate") => MetricResponse {
                base: 30.0,
                per_intensity: match service {
                    ServiceKind::SpecWeb => 900.0,
                    ServiceKind::Rubis => 350.0,
                    ServiceKind::Cassandra => 250.0,
                },
                per_read: 120.0,
                interaction: 40.0,
                relative_noise: 0.015,
            },
            // Deliberately uninformative counters: almost pure noise.
            (MetricKind::Hpc, "prefetch_hits" | "simd_inst" | "bus_trans_io") => MetricResponse {
                base: 500.0,
                per_intensity: 4.0,
                per_read: 2.0,
                interaction: 0.0,
                relative_noise: 0.25,
            },
            // Remaining HPC events: moderately informative, partially redundant
            // with the Table-1 set.
            (MetricKind::Hpc, _) => MetricResponse {
                base: 80.0 + 3.0 * idx,
                per_intensity: (90.0 + 15.0 * (idx % 5.0)) * sf,
                per_read: if id.0.is_multiple_of(3) { 35.0 } else { -20.0 },
                interaction: 10.0 * sf,
                relative_noise: 0.05,
            },
            // xentop metrics.
            (MetricKind::Xentop, "xentop_cpu_pct") => MetricResponse {
                base: 4.0,
                per_intensity: 82.0 * sf.max(0.7),
                per_read: -6.0,
                interaction: 0.0,
                relative_noise: 0.03,
            },
            (MetricKind::Xentop, "xentop_mem_mb") => MetricResponse {
                base: 750.0,
                per_intensity: 600.0,
                per_read: -120.0,
                interaction: 0.0,
                relative_noise: 0.02,
            },
            (MetricKind::Xentop, "xentop_net_rx_kbps") => MetricResponse {
                base: 20.0,
                per_intensity: 1_800.0,
                per_read: -150.0,
                interaction: 0.0,
                relative_noise: 0.04,
            },
            (MetricKind::Xentop, "xentop_net_tx_kbps") => MetricResponse {
                base: 25.0,
                per_intensity: 9_000.0,
                per_read: 2_500.0,
                interaction: 500.0,
                relative_noise: 0.04,
            },
            (MetricKind::Xentop, "xentop_vbd_rd") => MetricResponse {
                base: 5.0,
                per_intensity: 150.0,
                per_read: 40.0,
                interaction: 700.0,
                relative_noise: 0.05,
            },
            (MetricKind::Xentop, _) => MetricResponse {
                base: 5.0,
                per_intensity: 200.0,
                per_read: -30.0,
                interaction: -600.0,
                relative_noise: 0.05,
            },
        }
    }

    /// Expected per-second rate of metric `id` at workload `point`.
    pub fn expected_rate(&self, id: MetricId, point: &WorkloadPoint) -> f64 {
        let r = self.response(id, point.service);
        (r.base
            + r.per_intensity * point.intensity
            + r.per_read * point.read_fraction
            + r.interaction * point.intensity * point.read_fraction)
            .max(0.0)
    }

    /// Expected per-second rates for every metric in the catalogue, in id order.
    pub fn expected_rates(&self, point: &WorkloadPoint) -> Vec<f64> {
        self.catalog
            .descriptors()
            .iter()
            .map(|d| self.expected_rate(d.id, point))
            .collect()
    }

    /// Relative noise of metric `id` for the given service.
    pub fn relative_noise(&self, id: MetricId, service: ServiceKind) -> f64 {
        self.response(id, service).relative_noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_traces::RequestMix;

    #[test]
    fn rates_increase_with_intensity() {
        let model = MetricModel::default();
        for &service in &ServiceKind::ALL {
            let lo = WorkloadPoint::new(service, 0.2, 0.5);
            let hi = WorkloadPoint::new(service, 0.9, 0.5);
            // The FLOPS counter must separate volumes for every service (Fig. 4).
            let flops = model.catalog().find("flops_rate").unwrap().id;
            assert!(model.expected_rate(flops, &hi) > model.expected_rate(flops, &lo));
            // xentop CPU must track utilization.
            let cpu = model.catalog().find("xentop_cpu_pct").unwrap().id;
            assert!(model.expected_rate(cpu, &hi) > model.expected_rate(cpu, &lo));
        }
    }

    #[test]
    fn read_write_mix_shifts_signature() {
        let model = MetricModel::default();
        let update_heavy = WorkloadPoint::new(
            ServiceKind::Cassandra,
            0.6,
            RequestMix::update_heavy().read_fraction(),
        );
        let read_mostly = WorkloadPoint::new(ServiceKind::Cassandra, 0.6, 0.95);
        let wr = model.catalog().find("xentop_vbd_wr").unwrap().id;
        let rd = model.catalog().find("xentop_vbd_rd").unwrap().id;
        assert!(model.expected_rate(wr, &update_heavy) > model.expected_rate(wr, &read_mostly));
        assert!(model.expected_rate(rd, &read_mostly) > model.expected_rate(rd, &update_heavy));
    }

    #[test]
    fn table1_metrics_respond_strongly_for_rubis() {
        let model = MetricModel::default();
        let lo = WorkloadPoint::new(ServiceKind::Rubis, 0.2, 0.8);
        let hi = WorkloadPoint::new(ServiceKind::Rubis, 0.8, 0.8);
        for i in 0..8 {
            let id = MetricId(i);
            let delta = model.expected_rate(id, &hi) - model.expected_rate(id, &lo);
            assert!(delta > 50.0, "table-1 metric {i} must respond to load");
        }
    }

    #[test]
    fn noise_metrics_barely_respond() {
        let model = MetricModel::default();
        let id = model.catalog().find("prefetch_hits").unwrap().id;
        let lo = WorkloadPoint::new(ServiceKind::Rubis, 0.1, 0.5);
        let hi = WorkloadPoint::new(ServiceKind::Rubis, 1.0, 0.5);
        let delta = (model.expected_rate(id, &hi) - model.expected_rate(id, &lo)).abs();
        assert!(delta < 10.0);
        assert!(model.relative_noise(id, ServiceKind::Rubis) > 0.1);
    }

    #[test]
    fn rates_are_never_negative() {
        let model = MetricModel::default();
        for &service in &ServiceKind::ALL {
            for intensity in [0.0, 0.3, 0.7, 1.0, 1.4] {
                for read in [0.0, 0.5, 1.0] {
                    let p = WorkloadPoint::new(service, intensity, read);
                    assert!(model.expected_rates(&p).iter().all(|&r| r >= 0.0));
                }
            }
        }
    }

    #[test]
    fn workload_conversion() {
        let w = Workload::with_intensity(ServiceKind::SpecWeb, 0.4, RequestMix::read_only());
        let p = WorkloadPoint::from(&w);
        assert_eq!(p.service, ServiceKind::SpecWeb);
        assert_eq!(p.intensity, 0.4);
        assert_eq!(p.read_fraction, 1.0);
        let p2: WorkloadPoint = w.into();
        assert_eq!(p, p2);
    }

    #[test]
    #[should_panic]
    fn invalid_point_rejected() {
        let _ = WorkloadPoint::new(ServiceKind::Rubis, 0.5, 1.5);
    }
}
