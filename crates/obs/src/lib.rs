//! Fleet flight recorder: a zero-overhead metrics registry + event trace.
//!
//! The fleet's instrumentation used to be ad-hoc — relaxed atomics in the
//! shared repository, staleness histograms hand-rolled in the transport
//! summary — with no shared registry and no event trace. This crate is the
//! one implementation everything records through:
//!
//! * [`Counter`] / [`Gauge`] — relaxed [`AtomicU64`] wrappers, lock-free.
//! * [`LogHistogram`] — a log₂-bucketed latency/size histogram (64 fixed
//!   buckets of relaxed atomics) with deterministic p50/p90/p99 extraction.
//! * [`ExactHistogram`] — an exact small-domain histogram (index = value),
//!   the shared implementation behind the transport's staleness summaries.
//! * [`Event`] — typed trace events (epoch begin/commit, shard batch commit,
//!   TTL sweep with reclaim count, frontier advance/lag, worker
//!   steal/park/wake, snapshot save/load) kept in a bounded ring buffer.
//! * [`Recorder`] — the handle instrumented code records through.
//! * [`ObsReport`] — a canonical-order text export of everything above.
//!
//! # The disabled path costs nothing
//!
//! [`Recorder::disabled`] is a `const fn` returning a handle with no
//! backing storage. Every probe method is `#[inline]` and begins with a
//! check of that option; with a disabled recorder the closure arguments are
//! never evaluated, no clock is read, and the probes fold to a null-pointer
//! test the optimizer deletes wherever the handle is constant. Simulation
//! results never depend on the recorder either way: recording only ever
//! *writes* obs state, so runs are bit-identical with obs on or off (pinned
//! by the differential fuzzer's obs toggle).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

mod report;

pub use report::ObsReport;

/// A monotonic counter: a relaxed [`AtomicU64`] with no further ceremony.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at `value` (used when restoring snapshots).
    pub const fn new(value: u64) -> Self {
        Counter(AtomicU64::new(value))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }

    /// Overwrites the value (snapshot restore only — counters are otherwise
    /// monotonic).
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Relaxed);
    }
}

/// A last-writer-wins gauge with an optional running maximum.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Relaxed);
    }

    /// Raises the value to `value` if larger.
    #[inline]
    pub fn record_max(&self, value: u64) {
        self.0.fetch_max(value, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Number of log₂ buckets in a [`LogHistogram`] — one per bit of a `u64`.
pub const LOG_BUCKETS: usize = 64;

/// A lock-free log₂-bucketed histogram for latencies (nanoseconds) and
/// sizes.
///
/// Bucket `i` counts values `v` with `floor(log2(v)) == i`; values `0` and
/// `1` share bucket 0. Quantiles are extracted deterministically: the
/// quantile is the *lower bound* of the bucket containing the requested
/// rank (`rank = ceil(q · count)`), so two histograms with equal bucket
/// counts always report equal quantiles.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; LOG_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index `record` files `value` under.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// The smallest value filed under bucket `index` (0 for bucket 0, which
/// also holds the value 1).
pub fn bucket_floor(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << index
    }
}

impl LogHistogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The lower bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`; 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (index, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_floor(index);
            }
        }
        bucket_floor(LOG_BUCKETS - 1)
    }

    /// Median bucket lower bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile bucket lower bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile bucket lower bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(bucket lower bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(index, bucket)| {
                let count = bucket.load(Relaxed);
                (count > 0).then_some((bucket_floor(index), count))
            })
            .collect()
    }
}

/// An exact histogram over a small non-negative integer domain: bucket `i`
/// counts observations of the value `i` itself.
///
/// This is the shared implementation behind the transport layer's staleness
/// summaries (re-exported there as `StalenessHistogram`); equality compares
/// bucket contents exactly, which the differential fuzzer relies on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExactHistogram {
    counts: Vec<u64>,
}

impl ExactHistogram {
    /// Records one observation of `value`.
    pub fn record(&mut self, value: usize) {
        if self.counts.len() <= value {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
    }

    /// Observation counts, indexed by value.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The largest value ever observed (0 when empty).
    pub fn max(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(value, &count)| value as u64 * count)
            .sum();
        weighted as f64 / total as f64
    }
}

/// Per-shard frontier-lag accounting: for each shard, how far its commit
/// frontier trailed the leading shard when it advanced.
///
/// Sized lazily to the highest shard observed; a `Mutex` is fine here
/// because only the committer thread records, once per shard-epoch.
#[derive(Debug, Default)]
pub struct ShardLagTable {
    shards: Mutex<Vec<ShardLag>>,
}

/// One shard's accumulated frontier-lag statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLag {
    /// Frontier advances observed for this shard.
    pub observations: u64,
    /// Sum of observed lags (epochs).
    pub sum: u64,
    /// Largest observed lag (epochs).
    pub max: u64,
}

impl ShardLag {
    /// Mean observed lag (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.sum as f64 / self.observations as f64
        }
    }
}

impl ShardLagTable {
    /// Records that `shard`'s frontier advanced while trailing the leading
    /// shard by `lag` epochs.
    pub fn observe(&self, shard: usize, lag: u64) {
        let mut shards = self.shards.lock().unwrap();
        if shards.len() <= shard {
            shards.resize(shard + 1, ShardLag::default());
        }
        let entry = &mut shards[shard];
        entry.observations += 1;
        entry.sum += lag;
        entry.max = entry.max.max(lag);
    }

    /// A copy of the per-shard statistics, indexed by shard.
    pub fn snapshot(&self) -> Vec<ShardLag> {
        self.shards.lock().unwrap().clone()
    }
}

/// The fixed-shape metrics registry: every instrumented subsystem records
/// into a named field here, so the report's ordering is canonical by
/// construction.
#[derive(Debug, Default)]
pub struct Metrics {
    // --- shared repository ---
    /// Shared-store lookup latency (ns), recorded per `lookup` call.
    pub lookup_ns: LogHistogram,
    /// Read-only peek latency (ns), recorded per `peek_resolved*` call.
    pub peek_ns: LogHistogram,
    /// Publish latency (ns), one observation per committed `Publish` op.
    pub publish_ns: LogHistogram,
    /// Ball-tree visit counts: exact distance checks per anchor resolve.
    pub tree_visits: LogHistogram,
    /// Resolve-memo hits (peek served without touching the ball tree).
    pub memo_hits: Counter,
    /// Resolve-memo misses (peek fell through to the ball tree).
    pub memo_misses: Counter,
    /// Entries reclaimed by TTL sweeps, fleet-wide.
    pub sweep_reclaimed: Counter,

    // --- commit transport ---
    /// Committer batch latency (ns), one observation per (shard, epoch)
    /// commit+sweep batch.
    pub commit_batch_ns: LogHistogram,
    /// Committer batch sizes (ops per (shard, epoch) batch).
    pub commit_batch_ops: LogHistogram,
    /// Per-shard commit-frontier lag behind the leading shard.
    pub shard_lag: ShardLagTable,
    /// Tenant parks: a tenant blocked on its staleness bound.
    pub parks: Counter,
    /// Successful steals: a worker ran a task taken from the injector or
    /// another worker's deque rather than its own.
    pub steals: Counter,
    /// Doorbell wakes: an idle worker woken by committer progress.
    pub wakes: Counter,
    /// Adaptive-cap pool growths (one worker un-gated at an epoch fold).
    pub pool_grows: Counter,
    /// Adaptive-cap pool shrinks (one worker gated at an epoch fold).
    pub pool_shrinks: Counter,
    /// Bytes served from capacity-retaining scratch (arena slabs, commit
    /// batch buffers) instead of fresh heap allocations.
    pub scratch_bytes_saved: Counter,

    // --- fleet engine ---
    /// Per-epoch wall time (ns): barrier-to-barrier under BSP, fold-to-fold
    /// at the committer for the async transports.
    pub epoch_ns: LogHistogram,
    /// Wall time of the final parallel tenant finalization (ns).
    pub finalize_ns: Gauge,

    // --- fault injection & recovery ---
    /// Faults injected by the fault plan, all kinds combined.
    pub faults_injected: Counter,
    /// Recoveries completed: tenant restarts, committer restarts and shard
    /// re-seeds that brought the fleet back to a converging state.
    pub recoveries: Counter,
    /// Epochs deterministically replayed while restarting crashed tenants.
    pub replayed_epochs: Counter,
    /// Epoch reports re-delivered after a drop fault or committer restart.
    pub retransmits: Counter,
    /// Committer kill/restart cycles.
    pub committer_restarts: Counter,
    /// Incremental delta checkpoints captured at commit boundaries.
    pub checkpoints: Counter,

    // --- durable checkpoints ---
    /// Delta segments spilled to the durable on-disk checkpoint store.
    pub durable_segments: Counter,
    /// On-disk compaction folds written by the durable checkpoint store.
    pub durable_folds: Counter,
    /// Payload bytes (segments + folds, manifest excluded) the durable
    /// checkpoint store put on disk.
    pub durable_bytes: Counter,
}

const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Typed trace events kept in the recorder's bounded ring buffer.
///
/// Events carry only simulation-determined payloads (epochs, shards, op and
/// reclaim counts) — never wall-clock readings — so under the deterministic
/// BSP transport the event stream for a fixed seed is bit-stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A fleet epoch began stepping.
    EpochBegin {
        /// Epoch index.
        epoch: u64,
    },
    /// A fleet epoch fully committed (all shards folded).
    EpochCommit {
        /// Epoch index.
        epoch: u64,
    },
    /// One (shard, epoch) batch committed.
    ShardCommit {
        /// Shard index.
        shard: u64,
        /// Epoch index.
        epoch: u64,
        /// Buffered operations applied.
        ops: u64,
    },
    /// A TTL sweep ran over one shard.
    TtlSweep {
        /// Shard index.
        shard: u64,
        /// Epoch the sweep ran at.
        epoch: u64,
        /// Entries reclaimed.
        reclaimed: u64,
    },
    /// A shard's commit frontier advanced.
    FrontierAdvance {
        /// Shard index.
        shard: u64,
        /// Epoch the frontier now covers.
        epoch: u64,
        /// Epochs this shard trailed the leading shard at advance time.
        lag: u64,
    },
    /// A work-stealing worker ran a stolen task.
    WorkerSteal {
        /// Worker index.
        worker: u64,
    },
    /// A tenant parked on its staleness bound.
    WorkerPark {
        /// Tenant index.
        tenant: u64,
        /// Epoch the tenant wanted to enter.
        epoch: u64,
    },
    /// An idle worker was woken by the doorbell.
    WorkerWake {
        /// Worker index.
        worker: u64,
    },
    /// A repository snapshot was serialized.
    SnapshotSave {
        /// Serialized size in bytes.
        bytes: u64,
    },
    /// A repository snapshot was loaded.
    SnapshotLoad {
        /// Serialized size in bytes.
        bytes: u64,
    },
    /// A tenant crashed mid-epoch (injected or organic panic).
    TenantCrash {
        /// Tenant index.
        tenant: u64,
        /// The epoch the tenant was computing when it crashed.
        epoch: u64,
    },
    /// A crashed tenant was restarted from its checkpoint and replayed back
    /// to the crash epoch.
    TenantRecover {
        /// Tenant index.
        tenant: u64,
        /// The epoch the tenant resumed at.
        epoch: u64,
        /// Epochs deterministically replayed from the checkpoint.
        replayed: u64,
    },
    /// The committer was killed and restarted; retained un-acked reports
    /// were re-delivered to rebuild its volatile assembly state.
    CommitterRestart {
        /// The epoch frontier low-water mark at restart time.
        epoch: u64,
    },
    /// An epoch report was re-delivered (after a drop fault or a committer
    /// restart).
    ReportRetransmit {
        /// Tenant index.
        tenant: u64,
        /// Epoch the report covers.
        epoch: u64,
    },
    /// An incremental delta checkpoint was captured at a commit boundary.
    CheckpointSave {
        /// Shard index.
        shard: u64,
        /// Epoch the delta covers.
        epoch: u64,
        /// Namespaces the delta carries (changed since the last capture).
        namespaces: u64,
    },
}

impl Event {
    /// Canonical kind label, used for event counts in the report.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::EpochBegin { .. } => "epoch_begin",
            Event::EpochCommit { .. } => "epoch_commit",
            Event::ShardCommit { .. } => "shard_commit",
            Event::TtlSweep { .. } => "ttl_sweep",
            Event::FrontierAdvance { .. } => "frontier_advance",
            Event::WorkerSteal { .. } => "worker_steal",
            Event::WorkerPark { .. } => "worker_park",
            Event::WorkerWake { .. } => "worker_wake",
            Event::SnapshotSave { .. } => "snapshot_save",
            Event::SnapshotLoad { .. } => "snapshot_load",
            Event::TenantCrash { .. } => "tenant_crash",
            Event::TenantRecover { .. } => "tenant_recover",
            Event::CommitterRestart { .. } => "committer_restart",
            Event::ReportRetransmit { .. } => "report_retransmit",
            Event::CheckpointSave { .. } => "checkpoint_save",
        }
    }

    /// Canonical one-line rendering.
    pub fn render(&self) -> String {
        match self {
            Event::EpochBegin { epoch } => format!("epoch_begin epoch={epoch}"),
            Event::EpochCommit { epoch } => format!("epoch_commit epoch={epoch}"),
            Event::ShardCommit { shard, epoch, ops } => {
                format!("shard_commit shard={shard} epoch={epoch} ops={ops}")
            }
            Event::TtlSweep {
                shard,
                epoch,
                reclaimed,
            } => format!("ttl_sweep shard={shard} epoch={epoch} reclaimed={reclaimed}"),
            Event::FrontierAdvance { shard, epoch, lag } => {
                format!("frontier_advance shard={shard} epoch={epoch} lag={lag}")
            }
            Event::WorkerSteal { worker } => format!("worker_steal worker={worker}"),
            Event::WorkerPark { tenant, epoch } => {
                format!("worker_park tenant={tenant} epoch={epoch}")
            }
            Event::WorkerWake { worker } => format!("worker_wake worker={worker}"),
            Event::SnapshotSave { bytes } => format!("snapshot_save bytes={bytes}"),
            Event::SnapshotLoad { bytes } => format!("snapshot_load bytes={bytes}"),
            Event::TenantCrash { tenant, epoch } => {
                format!("tenant_crash tenant={tenant} epoch={epoch}")
            }
            Event::TenantRecover {
                tenant,
                epoch,
                replayed,
            } => format!("tenant_recover tenant={tenant} epoch={epoch} replayed={replayed}"),
            Event::CommitterRestart { epoch } => format!("committer_restart epoch={epoch}"),
            Event::ReportRetransmit { tenant, epoch } => {
                format!("report_retransmit tenant={tenant} epoch={epoch}")
            }
            Event::CheckpointSave {
                shard,
                epoch,
                namespaces,
            } => format!("checkpoint_save shard={shard} epoch={epoch} namespaces={namespaces}"),
        }
    }
}

#[derive(Debug)]
struct EventRing {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

#[derive(Debug)]
struct RecorderCore {
    metrics: Metrics,
    events: Mutex<EventRing>,
}

/// The handle instrumented code records through.
///
/// Cloning is cheap (an `Arc` bump); all clones share one registry and one
/// event ring. See the crate docs for why the disabled path costs nothing.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    core: Option<Arc<RecorderCore>>,
}

impl Recorder {
    /// The no-op handle: no storage, every probe folds away.
    pub const fn disabled() -> Self {
        Recorder { core: None }
    }

    /// A live recorder with the default event-ring capacity (4096).
    pub fn enabled() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A live recorder keeping at most `capacity` trace events (oldest
    /// evicted first; evictions are counted, not silent).
    pub fn with_event_capacity(capacity: usize) -> Self {
        Recorder {
            core: Some(Arc::new(RecorderCore {
                metrics: Metrics::default(),
                events: Mutex::new(EventRing {
                    events: VecDeque::with_capacity(capacity.min(DEFAULT_EVENT_CAPACITY)),
                    capacity: capacity.max(1),
                    dropped: 0,
                }),
            })),
        }
    }

    /// Whether probes record anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// The metrics registry, if enabled.
    #[inline]
    pub fn metrics(&self) -> Option<&Metrics> {
        self.core.as_deref().map(|core| &core.metrics)
    }

    /// Runs `f` against the registry when enabled; no-op otherwise.
    #[inline]
    pub fn with(&self, f: impl FnOnce(&Metrics)) {
        if let Some(core) = self.core.as_deref() {
            f(&core.metrics);
        }
    }

    /// Reads the clock only when enabled; pair with [`Recorder::observe`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        self.core.as_deref().map(|_| Instant::now())
    }

    /// Records the nanoseconds since `started` into the histogram `pick`
    /// selects. No-op when disabled (and `started` from a disabled
    /// [`Recorder::start`] is `None`, so nothing mixes).
    #[inline]
    pub fn observe(&self, started: Option<Instant>, pick: impl FnOnce(&Metrics) -> &LogHistogram) {
        if let (Some(core), Some(started)) = (self.core.as_deref(), started) {
            let nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            pick(&core.metrics).record(nanos);
        }
    }

    /// Appends a trace event when enabled; the closure is never evaluated
    /// otherwise.
    #[inline]
    pub fn event(&self, make: impl FnOnce() -> Event) {
        if let Some(core) = self.core.as_deref() {
            let mut ring = core.events.lock().unwrap();
            if ring.events.len() == ring.capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            let event = make();
            ring.events.push_back(event);
        }
    }

    /// A copy of the retained trace, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<Event> {
        match self.core.as_deref() {
            Some(core) => core.events.lock().unwrap().events.iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped_events(&self) -> u64 {
        self.core
            .as_deref()
            .map_or(0, |core| core.events.lock().unwrap().dropped)
    }

    /// Builds the canonical report (`None` when disabled).
    pub fn report(&self) -> Option<ObsReport> {
        self.metrics()
            .map(|metrics| ObsReport::build(metrics, self.events(), self.dropped_events()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(7), 2);
        assert_eq!(bucket_of(8), 3);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 2);
        assert_eq!(bucket_floor(2), 4);
        assert_eq!(bucket_floor(10), 1024);
        assert_eq!(bucket_floor(63), 1u64 << 63);
        // Every value lands in the bucket whose floor does not exceed it.
        for value in [0u64, 1, 2, 3, 15, 16, 17, 255, 256, 1 << 40] {
            let b = bucket_of(value);
            assert!(bucket_floor(b) <= value.max(1));
            if b + 1 < LOG_BUCKETS {
                assert!(value < bucket_floor(b + 1));
            }
        }
    }

    #[test]
    fn log_histogram_quantiles_match_reference_values() {
        let h = LogHistogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 50.5);
        // rank 50 falls in bucket [32, 64) (cumulative 63), rank 90 and 99
        // in bucket [64, 128) (cumulative 100).
        assert_eq!(h.p50(), 32);
        assert_eq!(h.p90(), 64);
        assert_eq!(h.p99(), 64);
        assert_eq!(h.quantile(0.0), 0); // rank clamps to 1 → bucket of value 1
        assert_eq!(h.quantile(1.0), 64);
    }

    #[test]
    fn log_histogram_single_value_quantiles() {
        let h = LogHistogram::default();
        h.record(1000);
        assert_eq!(h.p50(), 512);
        assert_eq!(h.p99(), 512);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.nonzero_buckets(), vec![(512, 1)]);
    }

    #[test]
    fn exact_histogram_matches_reference() {
        let mut h = ExactHistogram::default();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(2);
        h.record(0);
        h.record(2);
        assert_eq!(h.counts(), &[1, 0, 2]);
        assert_eq!(h.total(), 3);
        assert_eq!(h.max(), 2);
        assert!((h.mean() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn event_ring_is_bounded_and_counts_drops() {
        let rec = Recorder::with_event_capacity(2);
        rec.event(|| Event::EpochBegin { epoch: 0 });
        rec.event(|| Event::EpochBegin { epoch: 1 });
        rec.event(|| Event::EpochBegin { epoch: 2 });
        assert_eq!(
            rec.events(),
            vec![
                Event::EpochBegin { epoch: 1 },
                Event::EpochBegin { epoch: 2 }
            ]
        );
        assert_eq!(rec.dropped_events(), 1);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        assert!(rec.start().is_none());
        rec.observe(None, |m| &m.lookup_ns);
        rec.event(|| unreachable!("event closure must not run when disabled"));
        rec.with(|_| unreachable!("with closure must not run when disabled"));
        assert!(rec.metrics().is_none());
        assert!(rec.report().is_none());
        assert!(rec.events().is_empty());
    }

    #[test]
    fn shard_lag_table_accumulates_per_shard() {
        let table = ShardLagTable::default();
        table.observe(1, 3);
        table.observe(1, 1);
        table.observe(0, 0);
        let snap = table.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].observations, 1);
        assert_eq!(snap[1].observations, 2);
        assert_eq!(snap[1].max, 3);
        assert_eq!(snap[1].mean(), 2.0);
    }

    #[test]
    fn recorder_clones_share_storage() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.with(|m| m.parks.add(3));
        assert_eq!(rec.metrics().unwrap().parks.get(), 3);
    }
}
