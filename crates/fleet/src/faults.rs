//! Deterministic fault injection for the asynchronous transports.
//!
//! A [`FaultSpec`] is the operator-facing configuration (`--faults
//! "SEED[:kind,...]"`): a seed plus the subset of fault kinds to inject. It
//! compiles into a [`FaultPlan`] — a **pure, stateless schedule**: every
//! query (`does tenant t crash, and when?`, `is tenant t's epoch-e report
//! dropped?`) is a hash of the seed and the query coordinates, never of
//! wall-clock time, thread identity or arrival order. Two runs with the same
//! seed therefore inject byte-identical fault schedules, which is what lets
//! `tests/fault_schedule.rs` assert that a faulted `K = 0` run converges
//! bit-identical to the fault-free BSP golden.
//!
//! The fault kinds:
//!
//! * **crash** ([`FaultKind::TenantCrash`]) — a tenant loses its entire
//!   in-memory state mid-epoch, after stepping but before its report is
//!   sent. Recovery respawns the tenant and replays its epochs against
//!   checkpoint materializations (see `transport.rs`).
//! * **restart** ([`FaultKind::CommitterRestart`]) — the committer loses its
//!   volatile assembly state (pending, un-committed batches) and re-assembles
//!   it from retained report copies.
//! * **drop** ([`FaultKind::DropReport`]) — an epoch report is lost in
//!   flight and retransmitted after a deterministic delay.
//! * **dup** ([`FaultKind::DupReport`]) — an epoch report is delivered a
//!   second time later; idempotent commit (per-tenant epoch sequence
//!   numbers) makes the duplicate a no-op.
//! * **reorder** ([`FaultKind::ReorderReport`]) — an epoch report is delayed
//!   past later arrivals; commit order is by `(epoch, tenant)`, never by
//!   arrival, so reordering is safe by construction.
//! * **shard-loss** ([`FaultKind::ShardLoss`]) — a whole repository shard is
//!   wiped at a commit boundary and warm re-seeded from the delta chain.
//!
//! Injection lives entirely inside the async transports' report path; the
//! BSP barrier has no report path to fault, so a spec aimed at it is a
//! configuration error ([`FaultSpecError::BackendUnsupported`]).

use std::fmt;

/// One category of injected fault. See the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A tenant loses its in-memory state mid-epoch.
    TenantCrash,
    /// The committer loses its volatile (un-committed) assembly state.
    CommitterRestart,
    /// An epoch report is lost in flight and retransmitted later.
    DropReport,
    /// An epoch report is delivered twice.
    DupReport,
    /// An epoch report is delayed past later arrivals.
    ReorderReport,
    /// A repository shard is wiped and warm re-seeded from its delta chain.
    ShardLoss,
}

impl FaultKind {
    /// Every kind, in canonical (spec-rendering) order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::TenantCrash,
        FaultKind::CommitterRestart,
        FaultKind::DropReport,
        FaultKind::DupReport,
        FaultKind::ReorderReport,
        FaultKind::ShardLoss,
    ];

    /// The spec label (`--faults "SEED:crash,drop"`).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TenantCrash => "crash",
            FaultKind::CommitterRestart => "restart",
            FaultKind::DropReport => "drop",
            FaultKind::DupReport => "dup",
            FaultKind::ReorderReport => "reorder",
            FaultKind::ShardLoss => "shard-loss",
        }
    }

    fn from_label(label: &str) -> Option<Self> {
        FaultKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Domain-separation salt: queries about different kinds never correlate.
    fn salt(self) -> u64 {
        match self {
            FaultKind::TenantCrash => 0x43_52_41_53_48,   // "CRASH"
            FaultKind::CommitterRestart => 0x52_45_53_54, // "REST"
            FaultKind::DropReport => 0x44_52_4f_50,       // "DROP"
            FaultKind::DupReport => 0x44_55_50,           // "DUP"
            FaultKind::ReorderReport => 0x52_45_4f_52_44, // "REORD"
            FaultKind::ShardLoss => 0x53_4c_4f_53_53,     // "SLOSS"
        }
    }

    fn index(self) -> usize {
        FaultKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind listed in ALL")
    }
}

/// The comma-separated list of valid labels, for error messages.
fn valid_labels() -> String {
    FaultKind::ALL
        .iter()
        .map(|k| format!("'{}'", k.label()))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Why a fault spec was rejected — the typed front door mirroring the
/// `--transport` error path: every rejection names the offending token and
/// lists the valid fault kinds instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// The spec string was empty.
    Empty,
    /// The seed was not an unsigned 64-bit integer (decimal or `0x` hex).
    BadSeed {
        /// The token that failed to parse as a seed.
        token: String,
    },
    /// A kind label was not one of the valid fault kinds.
    UnknownKind {
        /// The unrecognized label.
        kind: String,
    },
    /// The spec named a kind list but listed nothing (`"7:"`).
    NoKinds,
    /// The configured transport backend cannot inject faults.
    BackendUnsupported {
        /// The backend label (`"bsp"`).
        backend: String,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::Empty => write!(
                f,
                "empty fault spec: expected \"SEED\" or \"SEED:kind,...\" with kinds from {}",
                valid_labels()
            ),
            FaultSpecError::BadSeed { token } => write!(
                f,
                "bad fault seed '{token}': expected an unsigned 64-bit integer \
                 (decimal or 0x-hex)"
            ),
            FaultSpecError::UnknownKind { kind } => write!(
                f,
                "unknown fault kind '{kind}': valid kinds are {}",
                valid_labels()
            ),
            FaultSpecError::NoKinds => write!(
                f,
                "fault spec names a kind list but lists no kinds: valid kinds are {}",
                valid_labels()
            ),
            FaultSpecError::BackendUnsupported { backend } => write!(
                f,
                "transport '{backend}' cannot inject faults: fault injection lives in the \
                 asynchronous report path; use 'async' or 'steal'"
            ),
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// The operator-facing fault configuration: a seed plus the kinds to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed of the deterministic schedule.
    pub seed: u64,
    enabled: [bool; 6],
}

impl FaultSpec {
    /// A spec injecting every fault kind.
    pub fn all(seed: u64) -> Self {
        FaultSpec {
            seed,
            enabled: [true; 6],
        }
    }

    /// A spec injecting only `kinds` (empty slices enable nothing).
    pub fn with_kinds(seed: u64, kinds: &[FaultKind]) -> Self {
        let mut enabled = [false; 6];
        for kind in kinds {
            enabled[kind.index()] = true;
        }
        FaultSpec { seed, enabled }
    }

    /// Parses `"SEED"` (all kinds) or `"SEED:kind,kind,..."` (a subset).
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err(FaultSpecError::Empty);
        }
        let (seed_token, kinds) = match spec.split_once(':') {
            Some((seed, kinds)) => (seed, Some(kinds)),
            None => (spec, None),
        };
        let seed_token = seed_token.trim();
        let seed = match seed_token
            .strip_prefix("0x")
            .or(seed_token.strip_prefix("0X"))
        {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => seed_token.parse::<u64>(),
        }
        .map_err(|_| FaultSpecError::BadSeed {
            token: seed_token.to_string(),
        })?;
        let Some(kinds) = kinds else {
            return Ok(FaultSpec::all(seed));
        };
        let mut enabled = [false; 6];
        let mut any = false;
        for token in kinds.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let kind = FaultKind::from_label(token).ok_or_else(|| FaultSpecError::UnknownKind {
                kind: token.to_string(),
            })?;
            enabled[kind.index()] = true;
            any = true;
        }
        if !any {
            return Err(FaultSpecError::NoKinds);
        }
        Ok(FaultSpec { seed, enabled })
    }

    /// Whether `kind` is injected under this spec.
    pub fn enables(self, kind: FaultKind) -> bool {
        self.enabled[kind.index()]
    }

    /// The enabled kinds, in canonical order.
    pub fn kinds(self) -> Vec<FaultKind> {
        FaultKind::ALL
            .into_iter()
            .filter(|k| self.enables(*k))
            .collect()
    }

    /// Canonical textual form (`"7:crash,drop"`); parses back to `self`.
    pub fn render(self) -> String {
        if self.enabled == [true; 6] {
            return self.seed.to_string();
        }
        let kinds = self
            .kinds()
            .iter()
            .map(|k| k.label())
            .collect::<Vec<_>>()
            .join(",");
        format!("{}:{kinds}", self.seed)
    }

    /// Compiles the spec into its deterministic schedule.
    pub fn plan(self) -> FaultPlan {
        FaultPlan { spec: self }
    }
}

/// `splitmix64` finalizer: the avalanche permutation behind every schedule
/// query. Statelessness is the point — a query's answer depends only on the
/// seed and the query coordinates.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The compiled, stateless fault schedule. Injection *rates* are fixed
/// design constants (per-query probabilities, below); which concrete
/// `(tenant, epoch)` / `(shard, epoch)` coordinates fire is a pure function
/// of the seed.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    spec: FaultSpec,
}

/// One in `DROP_RATE` reports is dropped (then retransmitted).
const DROP_RATE: u64 = 8;
/// One in `DUP_RATE` reports is delivered twice.
const DUP_RATE: u64 = 8;
/// One in `REORDER_RATE` reports is delayed past later arrivals.
const REORDER_RATE: u64 = 8;
/// One in `CRASH_RATE` tenants crashes (once, at a seeded epoch).
const CRASH_RATE: u64 = 3;
/// One in `RESTART_RATE` committed epochs triggers a committer restart.
const RESTART_RATE: u64 = 8;
/// One in `SHARD_LOSS_RATE` `(shard, epoch)` commits wipes the shard.
const SHARD_LOSS_RATE: u64 = 16;

impl FaultPlan {
    /// The spec this plan was compiled from.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    fn roll(&self, kind: FaultKind, a: u64, b: u64) -> u64 {
        // Two chained finalizer rounds decorrelate (a, b) from (a', b') pairs
        // that collide additively; the kind salt separates the domains.
        mix(mix(self.spec.seed ^ kind.salt().rotate_left(17)) ^ mix(a).wrapping_add(mix(b ^ 0xB)))
    }

    fn fires(&self, kind: FaultKind, a: u64, b: u64, rate: u64) -> bool {
        self.spec.enables(kind) && self.roll(kind, a, b).is_multiple_of(rate)
    }

    /// The epoch (within `[start, end)`) at which `tenant` crashes, if it
    /// does. At most one crash per tenant per run: recovery replays the
    /// tenant's whole history, so a second crash would only re-exercise the
    /// same path at more cost.
    pub fn crash_epoch(&self, tenant: usize, start: usize, end: usize) -> Option<usize> {
        if end <= start || !self.fires(FaultKind::TenantCrash, tenant as u64, 0, CRASH_RATE) {
            return None;
        }
        let span = (end - start) as u64;
        Some(start + (self.roll(FaultKind::TenantCrash, tenant as u64, 1) % span) as usize)
    }

    /// How many later deliveries `tenant`'s epoch-`epoch` report is withheld
    /// for before being retransmitted, if it is dropped.
    pub fn drop_delay(&self, tenant: usize, epoch: usize) -> Option<usize> {
        self.fires(
            FaultKind::DropReport,
            tenant as u64,
            epoch as u64,
            DROP_RATE,
        )
        .then(|| 1 + (self.roll(FaultKind::DropReport, epoch as u64, tenant as u64) % 2) as usize)
    }

    /// Whether `tenant`'s epoch-`epoch` report is delivered a second time.
    pub fn duplicate(&self, tenant: usize, epoch: usize) -> bool {
        self.fires(FaultKind::DupReport, tenant as u64, epoch as u64, DUP_RATE)
    }

    /// How many later deliveries `tenant`'s epoch-`epoch` report is delayed
    /// past, if it is reordered.
    pub fn reorder_delay(&self, tenant: usize, epoch: usize) -> Option<usize> {
        self.fires(
            FaultKind::ReorderReport,
            tenant as u64,
            epoch as u64,
            REORDER_RATE,
        )
        .then(|| {
            1 + (self.roll(FaultKind::ReorderReport, epoch as u64, tenant as u64) % 3) as usize
        })
    }

    /// Whether the committer restarts after folding global epoch `epoch`.
    pub fn committer_restart(&self, epoch: usize) -> bool {
        self.fires(FaultKind::CommitterRestart, epoch as u64, 0, RESTART_RATE)
    }

    /// Whether `shard` is wiped (and warm re-seeded) right after committing
    /// epoch `epoch`.
    pub fn shard_loss(&self, shard: usize, epoch: usize) -> bool {
        self.fires(
            FaultKind::ShardLoss,
            shard as u64,
            epoch as u64,
            SHARD_LOSS_RATE,
        )
    }
}

/// The transports' injection handle: a [`FaultPlan`] when fault injection is
/// configured, or an always-benign no-op (the production path) otherwise.
/// Kept separate from the plan so every injection site reads as one cheap
/// `Option` check — the same discipline as the obs recorder's null check.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultInjector {
    plan: Option<FaultPlan>,
}

impl FaultInjector {
    /// The no-op injector (no faults configured).
    pub fn disabled() -> Self {
        FaultInjector { plan: None }
    }

    /// An injector driven by `spec`, or the no-op one for `None`.
    pub fn from_spec(spec: Option<FaultSpec>) -> Self {
        FaultInjector {
            plan: spec.map(FaultSpec::plan),
        }
    }

    /// Whether any fault kind is being injected.
    pub fn enabled(&self) -> bool {
        self.plan.is_some()
    }

    /// The spec this injector was built from, if any.
    pub fn spec(&self) -> Option<FaultSpec> {
        self.plan.map(|p| p.spec())
    }

    /// See [`FaultPlan::crash_epoch`].
    pub fn crash_epoch(&self, tenant: usize, start: usize, end: usize) -> Option<usize> {
        self.plan.and_then(|p| p.crash_epoch(tenant, start, end))
    }

    /// See [`FaultPlan::drop_delay`].
    pub fn drop_delay(&self, tenant: usize, epoch: usize) -> Option<usize> {
        self.plan.and_then(|p| p.drop_delay(tenant, epoch))
    }

    /// See [`FaultPlan::duplicate`].
    pub fn duplicate(&self, tenant: usize, epoch: usize) -> bool {
        self.plan.is_some_and(|p| p.duplicate(tenant, epoch))
    }

    /// See [`FaultPlan::reorder_delay`].
    pub fn reorder_delay(&self, tenant: usize, epoch: usize) -> Option<usize> {
        self.plan.and_then(|p| p.reorder_delay(tenant, epoch))
    }

    /// See [`FaultPlan::committer_restart`].
    pub fn committer_restart(&self, epoch: usize) -> bool {
        self.plan.is_some_and(|p| p.committer_restart(epoch))
    }

    /// See [`FaultPlan::shard_loss`].
    pub fn shard_loss(&self, shard: usize, epoch: usize) -> bool {
        self.plan.is_some_and(|p| p.shard_loss(shard, epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_only_specs_enable_every_kind() {
        let spec = FaultSpec::parse("42").expect("seed-only spec");
        assert_eq!(spec.seed, 42);
        for kind in FaultKind::ALL {
            assert!(spec.enables(kind), "{}", kind.label());
        }
        assert_eq!(spec.render(), "42");
        assert_eq!(FaultSpec::parse(&spec.render()), Ok(spec));
    }

    #[test]
    fn hex_seeds_and_kind_subsets_parse() {
        let spec = FaultSpec::parse("0xBEEF:crash, drop ,shard-loss").expect("subset spec");
        assert_eq!(spec.seed, 0xBEEF);
        assert!(spec.enables(FaultKind::TenantCrash));
        assert!(spec.enables(FaultKind::DropReport));
        assert!(spec.enables(FaultKind::ShardLoss));
        assert!(!spec.enables(FaultKind::DupReport));
        assert!(!spec.enables(FaultKind::CommitterRestart));
        assert!(!spec.enables(FaultKind::ReorderReport));
        assert_eq!(spec.render(), "48879:crash,drop,shard-loss");
        assert_eq!(FaultSpec::parse(&spec.render()), Ok(spec));
    }

    #[test]
    fn empty_specs_are_rejected() {
        assert_eq!(FaultSpec::parse(""), Err(FaultSpecError::Empty));
        assert_eq!(FaultSpec::parse("   "), Err(FaultSpecError::Empty));
        let message = FaultSpecError::Empty.to_string();
        assert!(message.contains("'crash'"), "{message}");
    }

    #[test]
    fn bad_seeds_are_rejected() {
        for bad in ["x", "-3", "1.5", "0xZZ", ":crash"] {
            let err = FaultSpec::parse(bad).expect_err(bad);
            assert!(
                matches!(err, FaultSpecError::BadSeed { .. }),
                "{bad}: {err:?}"
            );
            assert!(err.to_string().contains("bad fault seed"), "{err}");
        }
    }

    #[test]
    fn unknown_kinds_are_rejected_with_the_valid_list() {
        let err = FaultSpec::parse("7:crash,flood").expect_err("unknown kind");
        assert_eq!(
            err,
            FaultSpecError::UnknownKind {
                kind: "flood".to_string()
            }
        );
        let message = err.to_string();
        assert!(message.contains("'flood'"), "{message}");
        for kind in FaultKind::ALL {
            assert!(
                message.contains(&format!("'{}'", kind.label())),
                "{message} should list '{}'",
                kind.label()
            );
        }
    }

    #[test]
    fn empty_kind_lists_are_rejected() {
        for bad in ["7:", "7: ,, "] {
            assert_eq!(FaultSpec::parse(bad), Err(FaultSpecError::NoKinds), "{bad}");
        }
        assert!(FaultSpecError::NoKinds.to_string().contains("'reorder'"));
    }

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let a = FaultSpec::all(7).plan();
        let b = FaultSpec::all(7).plan();
        let c = FaultSpec::all(8).plan();
        let mut differs = false;
        for tenant in 0..32 {
            for epoch in 0..32 {
                assert_eq!(a.drop_delay(tenant, epoch), b.drop_delay(tenant, epoch));
                assert_eq!(a.duplicate(tenant, epoch), b.duplicate(tenant, epoch));
                assert_eq!(
                    a.reorder_delay(tenant, epoch),
                    b.reorder_delay(tenant, epoch)
                );
                assert_eq!(a.shard_loss(tenant, epoch), b.shard_loss(tenant, epoch));
                differs |= a.drop_delay(tenant, epoch) != c.drop_delay(tenant, epoch)
                    || a.duplicate(tenant, epoch) != c.duplicate(tenant, epoch);
            }
            assert_eq!(a.crash_epoch(tenant, 0, 48), b.crash_epoch(tenant, 0, 48));
        }
        assert!(differs, "seeds 7 and 8 produced identical schedules");
    }

    #[test]
    fn every_kind_fires_somewhere_at_its_rate() {
        let plan = FaultSpec::all(3).plan();
        let coords = || (0..64usize).flat_map(|a| (0..64usize).map(move |e| (a, e)));
        assert!(coords().any(|(t, e)| plan.drop_delay(t, e).is_some()));
        assert!(coords().any(|(t, e)| plan.duplicate(t, e)));
        assert!(coords().any(|(t, e)| plan.reorder_delay(t, e).is_some()));
        assert!(coords().any(|(s, e)| plan.shard_loss(s, e)));
        assert!((0..64).any(|e| plan.committer_restart(e)));
        assert!((0..64).any(|t| plan.crash_epoch(t, 0, 48).is_some()));
    }

    #[test]
    fn crash_epochs_stay_inside_the_tenancy_window() {
        for seed in 0..16 {
            let plan = FaultSpec::all(seed).plan();
            for tenant in 0..64 {
                if let Some(epoch) = plan.crash_epoch(tenant, 5, 17) {
                    assert!((5..17).contains(&epoch), "seed {seed} tenant {tenant}");
                }
                assert_eq!(plan.crash_epoch(tenant, 9, 9), None, "empty window");
            }
        }
    }

    #[test]
    fn disabled_kinds_never_fire() {
        let plan = FaultSpec::with_kinds(3, &[FaultKind::DupReport]).plan();
        for t in 0..64 {
            for e in 0..64 {
                assert_eq!(plan.drop_delay(t, e), None);
                assert_eq!(plan.reorder_delay(t, e), None);
                assert!(!plan.shard_loss(t, e));
            }
            assert_eq!(plan.crash_epoch(t, 0, 48), None);
            assert!(!plan.committer_restart(t));
        }
        assert!((0..4096).any(|i| plan.duplicate(i % 64, i / 64)));
    }

    #[test]
    fn the_disabled_injector_is_always_benign() {
        let injector = FaultInjector::disabled();
        assert!(!injector.enabled());
        assert_eq!(injector.crash_epoch(0, 0, 100), None);
        assert_eq!(injector.drop_delay(0, 0), None);
        assert!(!injector.duplicate(0, 0));
        assert_eq!(injector.reorder_delay(0, 0), None);
        assert!(!injector.committer_restart(0));
        assert!(!injector.shard_loss(0, 0));
        let armed = FaultInjector::from_spec(Some(FaultSpec::all(3)));
        assert!(armed.enabled());
    }
}
