//! A reproduction of the RightScale voting autoscaler as described in §4.1 of
//! the paper (and in RightScale's public documentation): each instance votes
//! based on its utilization; a majority above the scale-up threshold grows the
//! deployment by two instances, a majority below the scale-down threshold
//! shrinks it by one, and no further action is taken until the "resize calm
//! time" has elapsed.

use dejavu_cloud::{
    AllocationSpace, ControllerDecision, DecisionReason, Observation, ProvisioningController,
};
use dejavu_simcore::{SimDuration, SimRng, SimTime};

/// RightScale configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RightScaleConfig {
    /// Per-instance utilization above which an instance votes to grow.
    pub scale_up_threshold: f64,
    /// Per-instance utilization below which an instance votes to shrink.
    pub scale_down_threshold: f64,
    /// Instances added per scale-up action (RightScale default: 2).
    pub scale_up_step: usize,
    /// Instances removed per scale-down action (RightScale default: 1).
    pub scale_down_step: usize,
    /// Minimum time between two resize actions.
    pub resize_calm_time: SimDuration,
    /// Fraction of instances that must agree for an action to be taken.
    pub majority: f64,
    /// Per-instance utilization measurement noise.
    pub vote_noise: f64,
    /// Seed for the per-instance vote noise.
    pub seed: u64,
}

impl Default for RightScaleConfig {
    fn default() -> Self {
        RightScaleConfig {
            scale_up_threshold: 0.85,
            scale_down_threshold: 0.40,
            scale_up_step: 2,
            scale_down_step: 1,
            resize_calm_time: SimDuration::from_mins(15.0),
            majority: 0.51,
            vote_noise: 0.03,
            seed: 7,
        }
    }
}

/// The RightScale-style autoscaler.
#[derive(Debug, Clone)]
pub struct RightScale {
    name: String,
    config: RightScaleConfig,
    space: AllocationSpace,
    last_action: Option<SimTime>,
    rng: SimRng,
}

impl RightScale {
    /// Creates the autoscaler with the given calm time (the paper evaluates
    /// 3 and 15 minutes).
    pub fn new(space: AllocationSpace, config: RightScaleConfig) -> Self {
        let name = format!("rightscale-{:.0}min", config.resize_calm_time.as_mins());
        RightScale {
            name,
            rng: SimRng::seed_from_u64(config.seed),
            config,
            space,
            last_action: None,
        }
    }

    /// Convenience constructor with only the calm time changed.
    pub fn with_calm_time(space: AllocationSpace, calm: SimDuration) -> Self {
        RightScale::new(
            space,
            RightScaleConfig {
                resize_calm_time: calm,
                ..Default::default()
            },
        )
    }

    /// The configuration in use.
    pub fn config(&self) -> &RightScaleConfig {
        &self.config
    }

    fn calm_elapsed(&self, now: SimTime) -> bool {
        match self.last_action {
            None => true,
            Some(t) => now.saturating_since(t).as_secs() >= self.config.resize_calm_time.as_secs(),
        }
    }

    /// Runs the per-instance vote and returns the fraction voting to grow and
    /// to shrink.
    fn vote(&mut self, utilization: f64, instances: u32) -> (f64, f64) {
        let mut up = 0usize;
        let mut down = 0usize;
        for _ in 0..instances {
            let observed = (utilization + self.rng.normal(0.0, self.config.vote_noise)).max(0.0);
            if observed > self.config.scale_up_threshold {
                up += 1;
            } else if observed < self.config.scale_down_threshold {
                down += 1;
            }
        }
        (
            up as f64 / instances.max(1) as f64,
            down as f64 / instances.max(1) as f64,
        )
    }
}

impl ProvisioningController for RightScale {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, observation: &Observation) -> ControllerDecision {
        if !self.calm_elapsed(observation.time) {
            return ControllerDecision::keep();
        }
        let current = observation.current_allocation;
        let (up, down) = self.vote(observation.utilization, current.count());
        let target = if up >= self.config.majority {
            self.space.step_up(current, self.config.scale_up_step)
        } else if down >= self.config.majority {
            self.space.step_down(current, self.config.scale_down_step)
        } else {
            return ControllerDecision::keep();
        };
        if target == current {
            return ControllerDecision::keep();
        }
        self.last_action = Some(observation.time);
        ControllerDecision::deploy(target, SimDuration::ZERO, DecisionReason::ThresholdVote)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_cloud::ResourceAllocation;
    use dejavu_traces::{RequestMix, ServiceKind, Workload};

    fn obs(hour: f64, utilization: f64, current: ResourceAllocation) -> Observation {
        Observation {
            time: SimTime::from_hours(hour),
            workload: Workload::with_intensity(
                ServiceKind::Cassandra,
                0.5,
                RequestMix::update_heavy(),
            ),
            latency_ms: Some(40.0),
            qos_percent: None,
            utilization,
            slo_violated: false,
            current_allocation: current,
        }
    }

    fn autoscaler(calm_mins: f64) -> RightScale {
        RightScale::with_calm_time(
            AllocationSpace::scale_out(1, 10).unwrap(),
            SimDuration::from_mins(calm_mins),
        )
    }

    #[test]
    fn scales_up_by_two_under_high_utilization() {
        let mut rs = autoscaler(3.0);
        let d = rs.decide(&obs(1.0, 0.95, ResourceAllocation::large(4)));
        assert_eq!(d.target, Some(ResourceAllocation::large(6)));
        assert_eq!(d.reason, DecisionReason::ThresholdVote);
    }

    #[test]
    fn scales_down_by_one_under_low_utilization() {
        let mut rs = autoscaler(3.0);
        let d = rs.decide(&obs(1.0, 0.15, ResourceAllocation::large(6)));
        assert_eq!(d.target, Some(ResourceAllocation::large(5)));
    }

    #[test]
    fn calm_time_throttles_successive_resizes() {
        let mut rs = autoscaler(15.0);
        let d1 = rs.decide(&obs(1.0, 0.95, ResourceAllocation::large(2)));
        assert!(d1.target.is_some());
        // Five minutes later: still within the calm period.
        let d2 = rs.decide(&obs(1.0 + 5.0 / 60.0, 0.95, ResourceAllocation::large(4)));
        assert!(d2.target.is_none());
        // After the calm time it acts again.
        let d3 = rs.decide(&obs(1.0 + 16.0 / 60.0, 0.95, ResourceAllocation::large(4)));
        assert_eq!(d3.target, Some(ResourceAllocation::large(6)));
    }

    #[test]
    fn moderate_utilization_triggers_nothing() {
        let mut rs = autoscaler(3.0);
        let d = rs.decide(&obs(1.0, 0.6, ResourceAllocation::large(5)));
        assert!(d.target.is_none());
    }

    #[test]
    fn name_mentions_calm_time() {
        assert_eq!(autoscaler(3.0).name(), "rightscale-3min");
        assert_eq!(autoscaler(15.0).name(), "rightscale-15min");
    }

    #[test]
    fn convergence_to_adequate_capacity_needs_multiple_calm_periods() {
        // Going from 2 to 8 instances takes three +2 steps, i.e. at least two
        // full calm periods after the first action — the behaviour Figure 8
        // quantifies.
        let mut rs = autoscaler(3.0);
        let mut current = ResourceAllocation::large(2);
        let mut resizes = 0;
        let mut t = 0.0f64;
        while current.count() < 8 && t < 2.0 {
            let d = rs.decide(&obs(t, 0.95, current));
            if let Some(next) = d.target {
                current = next;
                resizes += 1;
            }
            t += 30.0 / 3_600.0;
        }
        assert!(resizes >= 3);
        assert!(t * 60.0 >= 6.0, "took {} minutes", t * 60.0);
    }
}
