//! Numeric datasets with named attributes and optional class labels.

use crate::error::MlError;
use serde::{Deserialize, Serialize};

/// A single observation: a feature vector plus an optional class label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Feature values, one per dataset attribute.
    pub features: Vec<f64>,
    /// Class label (cluster id / workload class), if known.
    pub label: Option<usize>,
}

impl Instance {
    /// Creates a labeled instance.
    pub fn labeled(features: Vec<f64>, label: usize) -> Self {
        Instance {
            features,
            label: Some(label),
        }
    }

    /// Creates an unlabeled instance.
    pub fn unlabeled(features: Vec<f64>) -> Self {
        Instance {
            features,
            label: None,
        }
    }
}

/// A collection of [`Instance`]s sharing the same attribute schema.
///
/// # Example
///
/// ```
/// use dejavu_ml::dataset::Dataset;
/// let mut d = Dataset::new(vec!["cpu".into(), "flops".into()]);
/// d.push_labeled(vec![0.5, 100.0], 0);
/// d.push_labeled(vec![0.9, 800.0], 1);
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.num_attributes(), 2);
/// assert_eq!(d.num_classes(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    attribute_names: Vec<String>,
    instances: Vec<Instance>,
}

impl Dataset {
    /// Creates an empty dataset with the given attribute names.
    pub fn new(attribute_names: Vec<String>) -> Self {
        Dataset {
            attribute_names,
            instances: Vec::new(),
        }
    }

    /// Attribute (feature) names.
    pub fn attribute_names(&self) -> &[String] {
        &self.attribute_names
    }

    /// Number of attributes per instance.
    pub fn num_attributes(&self) -> usize {
        self.attribute_names.len()
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Returns true if the dataset has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The instances, in insertion order.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Adds an instance, validating its dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if the feature count does not
    /// match the attribute schema.
    pub fn try_push(&mut self, instance: Instance) -> Result<(), MlError> {
        if instance.features.len() != self.num_attributes() {
            return Err(MlError::DimensionMismatch {
                expected: self.num_attributes(),
                found: instance.features.len(),
            });
        }
        self.instances.push(instance);
        Ok(())
    }

    /// Adds a labeled instance.
    ///
    /// # Panics
    ///
    /// Panics if the feature count does not match the attribute schema.
    pub fn push_labeled(&mut self, features: Vec<f64>, label: usize) {
        self.try_push(Instance::labeled(features, label))
            .expect("feature count must match the dataset schema");
    }

    /// Adds an unlabeled instance.
    ///
    /// # Panics
    ///
    /// Panics if the feature count does not match the attribute schema.
    pub fn push_unlabeled(&mut self, features: Vec<f64>) {
        self.try_push(Instance::unlabeled(features))
            .expect("feature count must match the dataset schema");
    }

    /// Number of distinct class labels (`max label + 1`), or 0 if unlabeled.
    pub fn num_classes(&self) -> usize {
        self.instances
            .iter()
            .filter_map(|i| i.label)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0)
    }

    /// Returns true if every instance carries a label.
    pub fn is_fully_labeled(&self) -> bool {
        !self.instances.is_empty() && self.instances.iter().all(|i| i.label.is_some())
    }

    /// The values of attribute `attr` across all instances.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of range.
    pub fn column(&self, attr: usize) -> Vec<f64> {
        assert!(attr < self.num_attributes(), "attribute index out of range");
        self.instances.iter().map(|i| i.features[attr]).collect()
    }

    /// The labels of all instances.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::MissingLabels`] if any instance is unlabeled.
    pub fn labels(&self) -> Result<Vec<usize>, MlError> {
        self.instances
            .iter()
            .map(|i| i.label.ok_or(MlError::MissingLabels))
            .collect()
    }

    /// Builds a new dataset containing only the attributes at `indices`
    /// (in the given order). Labels are preserved.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn project(&self, indices: &[usize]) -> Dataset {
        for &i in indices {
            assert!(i < self.num_attributes(), "attribute index out of range");
        }
        let names = indices
            .iter()
            .map(|&i| self.attribute_names[i].clone())
            .collect();
        let mut out = Dataset::new(names);
        for inst in &self.instances {
            let feats = indices.iter().map(|&i| inst.features[i]).collect();
            out.instances.push(Instance {
                features: feats,
                label: inst.label,
            });
        }
        out
    }

    /// Splits into (train, test) with the first `train_fraction` of a
    /// deterministic interleaving going to train. `train_fraction` is clamped
    /// to `[0, 1]`.
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        let f = train_fraction.clamp(0.0, 1.0);
        let n_train = (self.len() as f64 * f).round() as usize;
        let mut train = Dataset::new(self.attribute_names.clone());
        let mut test = Dataset::new(self.attribute_names.clone());
        // Interleave by stride so both halves see all classes of a sorted dataset.
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&i| (i * 7919) % self.len().max(1));
        for (rank, &idx) in order.iter().enumerate() {
            if rank < n_train {
                train.instances.push(self.instances[idx].clone());
            } else {
                test.instances.push(self.instances[idx].clone());
            }
        }
        (train, test)
    }

    /// Per-attribute (mean, standard deviation). Attributes with zero variance
    /// report a standard deviation of 1.0 so normalization is always safe.
    pub fn attribute_moments(&self) -> Vec<(f64, f64)> {
        let n = self.len().max(1) as f64;
        (0..self.num_attributes())
            .map(|a| {
                let col = self.column(a);
                let mean = col.iter().sum::<f64>() / n;
                let var = col.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                let std = if var > 0.0 { var.sqrt() } else { 1.0 };
                (mean, std)
            })
            .collect()
    }

    /// Returns a z-score-normalized copy of the dataset together with the
    /// moments used, so unseen instances can be normalized identically.
    pub fn normalized(&self) -> (Dataset, Vec<(f64, f64)>) {
        let moments = self.attribute_moments();
        let mut out = Dataset::new(self.attribute_names.clone());
        for inst in &self.instances {
            let feats = inst
                .features
                .iter()
                .zip(&moments)
                .map(|(x, (m, s))| (x - m) / s)
                .collect();
            out.instances.push(Instance {
                features: feats,
                label: inst.label,
            });
        }
        (out, moments)
    }

    /// Normalizes a single feature vector with previously computed `moments`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn normalize_with(features: &[f64], moments: &[(f64, f64)]) -> Vec<f64> {
        assert_eq!(features.len(), moments.len(), "moment length mismatch");
        features
            .iter()
            .zip(moments)
            .map(|(x, (m, s))| (x - m) / s)
            .collect()
    }

    /// Allocation-free [`normalize_with`](Self::normalize_with): writes the
    /// normalized vector into `out` (callers keep a reusable or stack
    /// buffer for their hot paths).
    ///
    /// # Panics
    ///
    /// Panics if the three lengths differ.
    pub fn normalize_with_into(features: &[f64], moments: &[(f64, f64)], out: &mut [f64]) {
        assert_eq!(features.len(), moments.len(), "moment length mismatch");
        assert_eq!(features.len(), out.len(), "output length mismatch");
        for ((o, x), (m, s)) in out.iter_mut().zip(features).zip(moments) {
            *o = (x - m) / s;
        }
    }
}

impl FromIterator<Instance> for Dataset {
    fn from_iter<T: IntoIterator<Item = Instance>>(iter: T) -> Self {
        let instances: Vec<Instance> = iter.into_iter().collect();
        let width = instances.first().map(|i| i.features.len()).unwrap_or(0);
        let names = (0..width).map(|i| format!("attr{i}")).collect();
        let mut d = Dataset::new(names);
        for i in instances {
            d.try_push(i).expect("uniform instance width");
        }
        d
    }
}

impl Extend<Instance> for Dataset {
    fn extend<T: IntoIterator<Item = Instance>>(&mut self, iter: T) {
        for i in iter {
            self.try_push(i).expect("uniform instance width");
        }
    }
}

/// Squared Euclidean distance between two equally sized vectors.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Early-exit form of [`squared_distance`]: returns the exact squared
/// distance if it is at most `bound`, or `None` as soon as the accumulating
/// sum proves it exceeds `bound`. Accumulation order matches
/// [`squared_distance`], so a returned value is bit-identical to it.
pub fn squared_distance_within(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let mut sum = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        sum += d * d;
        if sum > bound {
            return None;
        }
    }
    Some(sum)
}

/// Euclidean distance between two equally sized vectors.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        d.push_labeled(vec![1.0, 2.0], 0);
        d.push_labeled(vec![3.0, 4.0], 1);
        d.push_labeled(vec![5.0, 6.0], 1);
        d
    }

    #[test]
    fn push_and_query() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert_eq!(d.num_attributes(), 2);
        assert_eq!(d.num_classes(), 2);
        assert!(d.is_fully_labeled());
        assert_eq!(d.column(0), vec![1.0, 3.0, 5.0]);
        assert_eq!(d.labels().unwrap(), vec![0, 1, 1]);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let mut d = Dataset::new(vec!["a".into()]);
        let err = d.try_push(Instance::unlabeled(vec![1.0, 2.0])).unwrap_err();
        assert_eq!(
            err,
            MlError::DimensionMismatch {
                expected: 1,
                found: 2
            }
        );
    }

    #[test]
    fn unlabeled_dataset_has_no_classes() {
        let mut d = Dataset::new(vec!["a".into()]);
        d.push_unlabeled(vec![1.0]);
        assert_eq!(d.num_classes(), 0);
        assert!(!d.is_fully_labeled());
        assert_eq!(d.labels(), Err(MlError::MissingLabels));
    }

    #[test]
    fn projection_keeps_labels_and_order() {
        let d = sample();
        let p = d.project(&[1]);
        assert_eq!(p.num_attributes(), 1);
        assert_eq!(p.attribute_names(), &["b".to_string()]);
        assert_eq!(p.column(0), vec![2.0, 4.0, 6.0]);
        assert_eq!(p.labels().unwrap(), vec![0, 1, 1]);
    }

    #[test]
    fn split_partitions_everything() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..100 {
            d.push_labeled(vec![i as f64], i % 3);
        }
        let (train, test) = d.split(0.7);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
    }

    #[test]
    fn normalization_round_trip() {
        let d = sample();
        let (norm, moments) = d.normalized();
        // Mean of each normalized column should be ~0.
        for a in 0..norm.num_attributes() {
            let col = norm.column(a);
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-9);
        }
        let v = Dataset::normalize_with(&[1.0, 2.0], &moments);
        assert_eq!(v, norm.instances()[0].features);
    }

    #[test]
    fn zero_variance_attribute_is_safe() {
        let mut d = Dataset::new(vec!["const".into()]);
        d.push_unlabeled(vec![5.0]);
        d.push_unlabeled(vec![5.0]);
        let (norm, _) = d.normalized();
        assert!(norm.column(0).iter().all(|x| x.is_finite()));
    }

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn from_iterator_builds_schema() {
        let d: Dataset = vec![
            Instance::labeled(vec![1.0, 2.0, 3.0], 0),
            Instance::labeled(vec![4.0, 5.0, 6.0], 1),
        ]
        .into_iter()
        .collect();
        assert_eq!(d.num_attributes(), 3);
        assert_eq!(d.len(), 2);
    }
}
