//! §4.5 / §1 — provisioning-cost savings summary and the yearly dollar
//! projection for 100 and 1,000 large EC2 instances.

use crate::report::{pct, Report};
use dejavu_cloud::InstanceType;

/// The savings summary.
#[derive(Debug, Clone)]
pub struct SavingsSummary {
    /// Scale-out savings on the Messenger trace.
    pub scale_out_messenger: f64,
    /// Scale-out savings on the HotMail trace.
    pub scale_out_hotmail: f64,
    /// Scale-up savings on the HotMail trace.
    pub scale_up_hotmail: f64,
    /// Scale-up savings on the Messenger trace.
    pub scale_up_messenger: f64,
}

impl SavingsSummary {
    /// Mean savings across the four evaluated configurations.
    pub fn mean_savings(&self) -> f64 {
        (self.scale_out_messenger
            + self.scale_out_hotmail
            + self.scale_up_hotmail
            + self.scale_up_messenger)
            / 4.0
    }

    /// Yearly dollar savings for a deployment of `instances` large instances,
    /// using the July-2011 on-demand price the paper cites.
    pub fn yearly_savings_usd(&self, instances: u32) -> f64 {
        let yearly_cost = instances as f64 * InstanceType::Large.hourly_price() * 24.0 * 365.0;
        yearly_cost * self.mean_savings()
    }

    /// Renders the summary.
    pub fn report(&self) -> Report {
        let mut r = Report::new("Section 4.5: provisioning-cost savings");
        r.kv(
            "scale-out savings (Messenger)",
            pct(self.scale_out_messenger),
        );
        r.kv("scale-out savings (HotMail)", pct(self.scale_out_hotmail));
        r.kv("scale-up savings (HotMail)", pct(self.scale_up_hotmail));
        r.kv("scale-up savings (Messenger)", pct(self.scale_up_messenger));
        r.kv(
            "yearly savings, 100 instances",
            format!("${:.0}", self.yearly_savings_usd(100)),
        );
        r.kv(
            "yearly savings, 1000 instances",
            format!("${:.0}", self.yearly_savings_usd(1_000)),
        );
        r
    }
}

/// Runs all four savings experiments and aggregates them.
pub fn run(seed: u64) -> SavingsSummary {
    SavingsSummary {
        scale_out_messenger: crate::fig6::run(seed).dejavu_savings,
        scale_out_hotmail: crate::fig7::run(seed).dejavu_savings,
        scale_up_hotmail: crate::fig9::run(seed).savings,
        scale_up_messenger: crate::fig10::run(seed).savings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_are_substantial_and_scale_out_beats_scale_up() {
        let s = run(1);
        assert!(s.scale_out_messenger > 0.2 && s.scale_out_hotmail > 0.2);
        assert!(s.scale_up_messenger > 0.2 && s.scale_up_hotmail > 0.2);
        assert!(s.mean_savings() > 0.25 && s.mean_savings() < 0.65);
        // Paper: > $250k/year for 100 large instances.
        assert!(s.yearly_savings_usd(100) > 80_000.0);
        assert!(s.yearly_savings_usd(1_000) > s.yearly_savings_usd(100) * 9.9);
        assert!(s.report().to_string().contains("yearly"));
    }
}
