//! Offline mini work-stealing-deque stand-in for the `crossbeam-deque` API
//! surface.
//!
//! The workspace builds hermetically (no registry access), so this crate
//! provides the small subset `dejavu-fleet`'s work-stealing commit transport
//! needs — a shared [`Injector`] queue, per-worker [`Worker`] deques with
//! [`Stealer`] handles, and the three-valued [`Steal`] result — implemented
//! over `Mutex<VecDeque>`s. It mirrors the real crate's names and semantics
//! (FIFO injector, LIFO/FIFO worker flavours, steals always take the
//! opposite end of a LIFO worker), so swapping the genuine dependency in is
//! a manifest change only. A mutex-guarded queue is plenty here: the
//! transport schedules one task per tenant-epoch, each worth milliseconds of
//! simulation — far below contention territory, and this stand-in never
//! returns [`Steal::Retry`] (the variant exists so call sites written
//! against the real lock-free crate compile unchanged).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty at the time of stealing.
    Empty,
    /// One task was successfully stolen.
    Success(T),
    /// A concurrent operation interfered; the caller should retry. This
    /// stand-in's mutex-serialized queues never produce it, but callers
    /// written against the real lock-free crate handle it, so the variant —
    /// and the combinators below — keep those call sites source-compatible.
    Retry,
}

impl<T> Steal<T> {
    /// Whether the queue was empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Whether a task was stolen.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// Whether the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(task) => Some(task),
            _ => None,
        }
    }

    /// Returns this steal if it succeeded, otherwise tries `get_another`;
    /// a [`Steal::Retry`] from either side survives an [`Steal::Empty`] so
    /// the caller knows to come back.
    pub fn or_else<F: FnOnce() -> Steal<T>>(self, get_another: F) -> Steal<T> {
        match self {
            Steal::Success(task) => Steal::Success(task),
            Steal::Empty => get_another(),
            Steal::Retry => match get_another() {
                Steal::Success(task) => Steal::Success(task),
                _ => Steal::Retry,
            },
        }
    }
}

impl<T> FromIterator<Steal<T>> for Steal<T> {
    /// Consumes steals until the first success; reports [`Steal::Retry`] if
    /// any consumed attempt was a retry and none succeeded.
    fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
        let mut retry = false;
        for steal in iter {
            match steal {
                Steal::Success(task) => return Steal::Success(task),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if retry {
            Steal::Retry
        } else {
            Steal::Empty
        }
    }
}

/// An injector queue: the FIFO entry point every worker can push to and
/// steal from.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues a task.
    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .expect("injector poisoned")
            .push_back(task);
    }

    /// Steals the oldest task.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().expect("injector poisoned").pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Steals a batch of tasks into `dest`, returning one of them — the real
    /// crate's amortization API; this stand-in moves up to half the queue.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut queue = self.queue.lock().expect("injector poisoned");
        let Some(task) = queue.pop_front() else {
            return Steal::Empty;
        };
        let extra = queue.len().div_ceil(2).min(16);
        let mut dest_queue = dest.inner.lock().expect("worker deque poisoned");
        for _ in 0..extra {
            match queue.pop_front() {
                Some(t) => dest_queue.push_back(t),
                None => break,
            }
        }
        Steal::Success(task)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("injector poisoned").is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.queue.lock().expect("injector poisoned").len()
    }
}

/// Pop order of a [`Worker`] deque.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    Fifo,
    Lifo,
}

/// A worker's local deque. The owner pushes and pops at one end; [`Stealer`]s
/// take from the opposite end, so the owner and thieves rarely contend for
/// the same tasks.
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
    flavor: Flavor,
}

impl<T> Worker<T> {
    /// Creates a FIFO worker deque (owner pops the oldest task).
    pub fn new_fifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            flavor: Flavor::Fifo,
        }
    }

    /// Creates a LIFO worker deque (owner pops the most recent task).
    pub fn new_lifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            flavor: Flavor::Lifo,
        }
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.inner
            .lock()
            .expect("worker deque poisoned")
            .push_back(task);
    }

    /// Pops a task from the owner's end.
    pub fn pop(&self) -> Option<T> {
        let mut queue = self.inner.lock().expect("worker deque poisoned");
        match self.flavor {
            Flavor::Fifo => queue.pop_front(),
            Flavor::Lifo => queue.pop_back(),
        }
    }

    /// Whether the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("worker deque poisoned").is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("worker deque poisoned").len()
    }

    /// A handle other workers use to steal from this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A thief's handle to another worker's deque; steals take the front (the
/// end opposite a LIFO owner), so thieves drain the oldest work first.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steals the task at the front of the deque.
    pub fn steal(&self) -> Steal<T> {
        match self
            .inner
            .lock()
            .expect("worker deque poisoned")
            .pop_front()
        {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Whether the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("worker deque poisoned").is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        for i in 0..5 {
            inj.push(i);
        }
        assert_eq!(inj.len(), 5);
        for i in 0..5 {
            assert_eq!(inj.steal(), Steal::Success(i));
        }
        assert_eq!(inj.steal(), Steal::<i32>::Empty);
        assert!(inj.is_empty());
    }

    #[test]
    fn lifo_worker_pops_newest_and_thieves_steal_oldest() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1), "thieves take the old end");
        assert_eq!(w.pop(), Some(3), "the owner takes the new end");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::<i32>::Empty);
    }

    #[test]
    fn fifo_worker_pops_oldest() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
    }

    #[test]
    fn steal_batch_and_pop_moves_a_batch() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert!(!w.is_empty(), "a batch rode along");
        let batched = w.len();
        assert_eq!(inj.len(), 10 - 1 - batched);
        assert_eq!(w.pop(), Some(1), "batch preserves order");
    }

    #[test]
    fn steal_combinators_compose() {
        assert_eq!(
            Steal::Empty.or_else(|| Steal::Success(7)),
            Steal::Success(7)
        );
        assert_eq!(Steal::Success(1).or_else(|| Steal::Success(2)), {
            Steal::Success(1)
        });
        assert!(Steal::<i32>::Retry.or_else(|| Steal::Empty).is_retry());
        assert_eq!(Steal::<i32>::Empty.success(), None);
        let first: Steal<i32> = vec![Steal::Empty, Steal::Success(4), Steal::Success(5)]
            .into_iter()
            .collect();
        assert_eq!(first, Steal::Success(4));
        let retry: Steal<i32> = vec![Steal::Empty, Steal::Retry].into_iter().collect();
        assert!(retry.is_retry());
        let empty: Steal<i32> = vec![Steal::Empty, Steal::Empty].into_iter().collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn concurrent_stealing_loses_nothing() {
        let inj = Injector::new();
        let total = 1000usize;
        for i in 0..total {
            inj.push(i);
        }
        let workers: Vec<Worker<usize>> = (0..4).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<usize>> = workers.iter().map(|w| w.stealer()).collect();
        let got = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in &workers {
                let inj = &inj;
                let stealers = &stealers;
                let got = &got;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let task = w.pop().or_else(|| {
                            inj.steal_batch_and_pop(w)
                                .or_else(|| stealers.iter().map(|s| s.steal()).collect())
                                .success()
                        });
                        match task {
                            Some(t) => local.push(t),
                            None if inj.is_empty() => break,
                            None => {}
                        }
                    }
                    got.lock().unwrap().extend(local);
                });
            }
        });
        let mut got = got.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..total).collect::<Vec<_>>());
    }
}
