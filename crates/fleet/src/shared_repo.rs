//! The fleet-shared signature repository: a sharded, lock-striped store of
//! allocation decisions that many tenants read and write concurrently.
//!
//! Layered on `dejavu_core::repository`: tenants interact through the
//! [`crate::tenant_view::TenantRepoView`] adapter (which implements
//! `dejavu_core::AllocationStore`), while this module owns the shared state.
//!
//! Because class ids are local to each tenant's clusterer, entries are *not*
//! keyed by class id. Instead each namespace (service kind × request mix ×
//! allocation space) maintains a list of **anchors** — full-catalogue workload
//! signatures characterizing a class. A tenant's class is matched to an anchor
//! by normalized signature distance, so tenants whose clusterers numbered
//! classes differently (or even found different class counts) still share
//! entries for equivalent workloads. Entries are keyed by
//! `(namespace, anchor, interference bucket)`.
//!
//! Shards are lock-striped (`RwLock` per shard); a namespace's anchors and
//! entries live entirely within one shard, so anchor resolution needs a single
//! lock. Entries carry their tuning time; a TTL turns tuning decisions stale
//! so a fleet never reuses week-old allocations forever.

use dejavu_cloud::{AllocationSpace, ResourceAllocation};
use dejavu_simcore::{SimDuration, SimTime};
use dejavu_traces::{RequestMix, ServiceKind};
use std::collections::BTreeMap;
use std::sync::RwLock;

/// Identifies a tenant within one fleet run.
pub type TenantId = usize;

/// Configuration of the shared repository.
#[derive(Debug, Clone)]
pub struct SharedRepoConfig {
    /// Number of lock-striped shards.
    pub shards: usize,
    /// Entries older than this (by tuning time) are treated as stale: lookups
    /// miss and [`SharedSignatureRepository::evict_stale`] removes them.
    pub ttl: Option<SimDuration>,
    /// Maximum normalized distance at which a class signature matches an
    /// existing anchor; beyond it a new anchor is created on insert.
    pub match_tolerance: f64,
}

impl Default for SharedRepoConfig {
    fn default() -> Self {
        SharedRepoConfig {
            shards: 16,
            ttl: None,
            match_tolerance: 0.10,
        }
    }
}

/// One cached allocation decision in the shared store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedEntry {
    /// The preferred allocation for this anchor × interference bucket.
    pub allocation: ResourceAllocation,
    /// When a tuner produced this entry.
    pub tuned_at: SimTime,
    /// The tenant whose tuning produced the entry.
    pub owner: TenantId,
    /// Total lookups served from this entry.
    pub hits: u64,
    /// Lookups served to tenants other than the owner.
    pub cross_tenant_hits: u64,
}

/// Hit/miss statistics of one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups that found a fresh entry.
    pub hits: u64,
    /// Lookups that found nothing (or only stale entries).
    pub misses: u64,
    /// Entries inserted (including overwrites).
    pub insertions: u64,
    /// Entries removed for staleness.
    pub evictions: u64,
    /// Hits served to a tenant other than the entry's owner.
    pub cross_tenant_hits: u64,
    /// Anchors created in this shard.
    pub anchors_created: u64,
}

impl ShardStats {
    /// Cache hit rate over all lookups (0.0 if there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &ShardStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.cross_tenant_hits += other.cross_tenant_hits;
        self.anchors_created += other.anchors_created;
    }
}

/// A write buffered by a tenant view during an epoch, applied at the epoch
/// barrier in tenant order so fleet runs are deterministic regardless of how
/// worker threads interleave.
#[derive(Debug, Clone)]
pub enum PendingOp {
    /// Publish a tuning decision to the fleet.
    Publish {
        /// The publishing tenant.
        tenant: TenantId,
        /// The tenant's namespace.
        namespace: u64,
        /// Full-catalogue class signature values.
        signature: Vec<f64>,
        /// Interference bucket of the entry.
        interference_bucket: u32,
        /// The tuned allocation.
        allocation: ResourceAllocation,
        /// When it was tuned.
        tuned_at: SimTime,
    },
    /// Account for a cross-tenant hit observed during the epoch.
    RecordHit {
        /// The reading tenant.
        tenant: TenantId,
        /// The reading tenant's namespace.
        namespace: u64,
        /// Signature that matched.
        signature: Vec<f64>,
        /// Interference bucket that matched.
        interference_bucket: u32,
    },
    /// Account for a shared-store miss observed during the epoch, so shard
    /// hit rates stay meaningful under the read-only epoch protocol.
    RecordMiss {
        /// The reading tenant's namespace.
        namespace: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EntryKey {
    anchor: u32,
    interference_bucket: u32,
}

#[derive(Debug, Clone)]
struct Anchor {
    centroid: Vec<f64>,
}

#[derive(Debug, Clone, Default)]
struct NamespaceState {
    anchors: Vec<Anchor>,
    entries: BTreeMap<EntryKey, SharedEntry>,
}

impl NamespaceState {
    /// Nearest anchor within `tolerance`, or `None`. Ties break toward the
    /// lowest anchor id, so resolution is deterministic.
    fn resolve(&self, signature: &[f64], tolerance: f64) -> Option<u32> {
        let mut best: Option<(u32, f64)> = None;
        for (id, anchor) in self.anchors.iter().enumerate() {
            let d = normalized_distance(&anchor.centroid, signature);
            if d <= tolerance && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((id as u32, d));
            }
        }
        best.map(|(id, _)| id)
    }

    fn resolve_or_create(&mut self, signature: &[f64], tolerance: f64, created: &mut u64) -> u32 {
        if let Some(id) = self.resolve(signature, tolerance) {
            return id;
        }
        self.anchors.push(Anchor {
            centroid: signature.to_vec(),
        });
        *created += 1;
        (self.anchors.len() - 1) as u32
    }
}

#[derive(Debug, Default)]
struct Shard {
    namespaces: BTreeMap<u64, NamespaceState>,
    stats: ShardStats,
}

/// Relative per-dimension distance between two signatures, normalized so that
/// "x% apart in every metric" yields roughly `x/100` regardless of metric
/// magnitudes. Signatures of different lengths never match.
pub fn normalized_distance(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.is_empty() {
        return f64::INFINITY;
    }
    let mut sum = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let scale = x.abs().max(y.abs()).max(1e-9);
        let d = (x - y) / scale;
        sum += d * d;
    }
    (sum / a.len() as f64).sqrt()
}

/// Stable namespace id for tenants that can share entries: same service kind,
/// same request mix (quantized) and same allocation space.
pub fn namespace_for(kind: ServiceKind, mix: RequestMix, space: &AllocationSpace) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    eat(match kind {
        ServiceKind::Cassandra => 1,
        ServiceKind::SpecWeb => 2,
        ServiceKind::Rubis => 3,
    });
    for b in ((mix.read_fraction() * 1000.0).round() as u32).to_le_bytes() {
        eat(b);
    }
    for c in space.candidates() {
        for b in c.count().to_le_bytes() {
            eat(b);
        }
        for b in (c.capacity_units().to_bits()).to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// The fleet-shared, sharded signature repository.
pub struct SharedSignatureRepository {
    shards: Vec<RwLock<Shard>>,
    config: SharedRepoConfig,
}

impl std::fmt::Debug for SharedSignatureRepository {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSignatureRepository")
            .field("shards", &self.shards.len())
            .field("entries", &self.len())
            .finish()
    }
}

impl SharedSignatureRepository {
    /// Creates an empty repository with the given sharding configuration.
    pub fn new(config: SharedRepoConfig) -> Self {
        let shards = config.shards.max(1);
        SharedSignatureRepository {
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
            config,
        }
    }

    /// The configuration the repository was built with.
    pub fn config(&self) -> &SharedRepoConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Deterministic shard routing: every key of `namespace` lives in the
    /// returned shard, so one lock covers anchor resolution plus the entry.
    pub fn shard_index(&self, namespace: u64) -> usize {
        // SplitMix64 finalizer: spreads consecutive namespace ids.
        let mut z = namespace.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        (z % self.shards.len() as u64) as usize
    }

    fn is_stale(&self, entry: &SharedEntry, now: SimTime) -> bool {
        match self.config.ttl {
            Some(ttl) => now.saturating_since(entry.tuned_at).as_secs() > ttl.as_secs(),
            None => false,
        }
    }

    /// Inserts an allocation decision, creating an anchor for the signature
    /// if none matches. Thread-safe; takes the shard write lock.
    ///
    /// When a fresh entry already exists at the same anchor × bucket, the
    /// larger allocation wins — mirroring the controller's max-over-members
    /// seeding policy, so a tenant tuned against a slightly lighter workload
    /// within the anchor tolerance cannot silently shrink an entry other
    /// tenants rely on. The tuning time still advances (the entry was
    /// reconfirmed), and reuse counters survive.
    pub fn insert(
        &self,
        tenant: TenantId,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        allocation: ResourceAllocation,
        tuned_at: SimTime,
    ) {
        let mut shard = self.shards[self.shard_index(namespace)]
            .write()
            .expect("shared repository shard poisoned");
        let tolerance = self.config.match_tolerance;
        let ttl = self.config.ttl;
        let mut created = 0u64;
        let ns = shard.namespaces.entry(namespace).or_default();
        let anchor = ns.resolve_or_create(signature, tolerance, &mut created);
        let key = EntryKey {
            anchor,
            interference_bucket,
        };
        ns.entries
            .entry(key)
            .and_modify(|existing| {
                let stale = match ttl {
                    Some(ttl) => {
                        tuned_at.saturating_since(existing.tuned_at).as_secs() > ttl.as_secs()
                    }
                    None => false,
                };
                if stale || allocation.capacity_units() >= existing.allocation.capacity_units() {
                    existing.allocation = allocation;
                    existing.owner = tenant;
                }
                existing.tuned_at = existing.tuned_at.max(tuned_at);
            })
            .or_insert(SharedEntry {
                allocation,
                tuned_at,
                owner: tenant,
                hits: 0,
                cross_tenant_hits: 0,
            });
        shard.stats.insertions += 1;
        shard.stats.anchors_created += created;
    }

    /// Looks up the entry matching `signature` × `interference_bucket`,
    /// counting hit/miss and reuse statistics. Stale entries are evicted on
    /// contact. Thread-safe; takes the shard write lock.
    pub fn lookup(
        &self,
        tenant: TenantId,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        now: SimTime,
    ) -> Option<SharedEntry> {
        let shard_index = self.shard_index(namespace);
        let mut shard = self.shards[shard_index]
            .write()
            .expect("shared repository shard poisoned");
        let tolerance = self.config.match_tolerance;
        let ttl = self.config.ttl;
        let Some(ns) = shard.namespaces.get_mut(&namespace) else {
            shard.stats.misses += 1;
            return None;
        };
        let Some(anchor) = ns.resolve(signature, tolerance) else {
            shard.stats.misses += 1;
            return None;
        };
        let key = EntryKey {
            anchor,
            interference_bucket,
        };
        let stale = match (ns.entries.get(&key), ttl) {
            (Some(entry), Some(ttl)) => {
                now.saturating_since(entry.tuned_at).as_secs() > ttl.as_secs()
            }
            (Some(_), None) => false,
            (None, _) => {
                shard.stats.misses += 1;
                return None;
            }
        };
        if stale {
            ns.entries.remove(&key);
            shard.stats.evictions += 1;
            shard.stats.misses += 1;
            return None;
        }
        let entry = ns.entries.get_mut(&key).expect("checked above");
        entry.hits += 1;
        let cross = entry.owner != tenant;
        if cross {
            entry.cross_tenant_hits += 1;
        }
        let snapshot = *entry;
        shard.stats.hits += 1;
        if cross {
            shard.stats.cross_tenant_hits += 1;
        }
        Some(snapshot)
    }

    /// Read-only lookup for the epoch-buffered tenant views: no statistics
    /// move, entries owned by `exclude_owner` are invisible (a tenant's own
    /// entries live in its local overlay), stale entries are filtered but not
    /// evicted. Takes only the shard read lock, so an epoch's worth of
    /// concurrent tenant reads never serialize.
    pub fn peek(
        &self,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        now: SimTime,
        exclude_owner: Option<TenantId>,
    ) -> Option<SharedEntry> {
        let shard = self.shards[self.shard_index(namespace)]
            .read()
            .expect("shared repository shard poisoned");
        let ns = shard.namespaces.get(&namespace)?;
        let anchor = ns.resolve(signature, self.config.match_tolerance)?;
        let entry = ns.entries.get(&EntryKey {
            anchor,
            interference_bucket,
        })?;
        if self.is_stale(entry, now) {
            return None;
        }
        if exclude_owner == Some(entry.owner) {
            return None;
        }
        Some(*entry)
    }

    /// Applies a buffered operation (epoch-barrier commit path). Returns true
    /// if the operation took effect — in particular, whether a `RecordHit`
    /// still found its entry (a publish committed earlier in the same barrier
    /// can re-anchor the namespace, in which case the hit is not recorded and
    /// the caller must not count it either).
    pub fn apply(&self, op: &PendingOp) -> bool {
        match op {
            PendingOp::Publish {
                tenant,
                namespace,
                signature,
                interference_bucket,
                allocation,
                tuned_at,
            } => {
                self.insert(
                    *tenant,
                    *namespace,
                    signature,
                    *interference_bucket,
                    *allocation,
                    *tuned_at,
                );
                true
            }
            PendingOp::RecordHit {
                tenant,
                namespace,
                signature,
                interference_bucket,
            } => {
                let mut shard = self.shards[self.shard_index(*namespace)]
                    .write()
                    .expect("shared repository shard poisoned");
                let tolerance = self.config.match_tolerance;
                let Some(ns) = shard.namespaces.get_mut(namespace) else {
                    return false;
                };
                let Some(anchor) = ns.resolve(signature, tolerance) else {
                    return false;
                };
                let key = EntryKey {
                    anchor,
                    interference_bucket: *interference_bucket,
                };
                let Some(entry) = ns.entries.get_mut(&key) else {
                    return false;
                };
                entry.hits += 1;
                let cross = entry.owner != *tenant;
                if cross {
                    entry.cross_tenant_hits += 1;
                }
                shard.stats.hits += 1;
                if cross {
                    shard.stats.cross_tenant_hits += 1;
                }
                true
            }
            PendingOp::RecordMiss { namespace } => {
                let mut shard = self.shards[self.shard_index(*namespace)]
                    .write()
                    .expect("shared repository shard poisoned");
                shard.stats.misses += 1;
                true
            }
        }
    }

    /// Removes every entry older than the configured TTL. Returns how many
    /// entries were evicted. A no-op without a TTL.
    pub fn evict_stale(&self, now: SimTime) -> u64 {
        let Some(ttl) = self.config.ttl else { return 0 };
        let mut evicted = 0;
        for shard in &self.shards {
            let mut shard = shard.write().expect("shared repository shard poisoned");
            let mut shard_evicted = 0u64;
            for ns in shard.namespaces.values_mut() {
                let before = ns.entries.len();
                ns.entries
                    .retain(|_, e| now.saturating_since(e.tuned_at).as_secs() <= ttl.as_secs());
                shard_evicted += (before - ns.entries.len()) as u64;
            }
            shard.stats.evictions += shard_evicted;
            evicted += shard_evicted;
        }
        evicted
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("shared repository shard poisoned")
                    .namespaces
                    .values()
                    .map(|ns| ns.entries.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Returns true if no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of anchors (distinct workload classes) across all shards.
    pub fn anchor_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("shared repository shard poisoned")
                    .namespaces
                    .values()
                    .map(|ns| ns.anchors.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Per-shard statistics snapshot.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| s.read().expect("shared repository shard poisoned").stats)
            .collect()
    }

    /// Aggregate statistics over every shard.
    pub fn stats(&self) -> ShardStats {
        let mut total = ShardStats::default();
        for s in self.shard_stats() {
            total.merge(&s);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo() -> SharedSignatureRepository {
        SharedSignatureRepository::new(SharedRepoConfig::default())
    }

    #[test]
    fn insert_then_lookup_roundtrip() {
        let r = repo();
        let sig = [100.0, 5.0, 0.3];
        r.insert(0, 7, &sig, 0, ResourceAllocation::large(4), SimTime::ZERO);
        let e = r.lookup(1, 7, &sig, 0, SimTime::ZERO).expect("hit");
        assert_eq!(e.allocation, ResourceAllocation::large(4));
        assert_eq!(e.owner, 0);
        assert_eq!(r.stats().hits, 1);
        assert_eq!(r.stats().cross_tenant_hits, 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.anchor_count(), 1);
    }

    #[test]
    fn near_signatures_share_an_anchor_far_ones_do_not() {
        let r = repo();
        let sig = [100.0, 5.0, 0.3];
        let near = [103.0, 5.1, 0.305]; // ~3% away
        let far = [160.0, 9.0, 0.8];
        r.insert(0, 7, &sig, 0, ResourceAllocation::large(4), SimTime::ZERO);
        assert!(r.lookup(1, 7, &near, 0, SimTime::ZERO).is_some());
        assert!(r.lookup(1, 7, &far, 0, SimTime::ZERO).is_none());
        r.insert(1, 7, &far, 0, ResourceAllocation::large(8), SimTime::ZERO);
        assert_eq!(r.anchor_count(), 2);
        assert_eq!(
            r.lookup(0, 7, &far, 0, SimTime::ZERO).unwrap().allocation,
            ResourceAllocation::large(8)
        );
    }

    #[test]
    fn overwrite_within_tolerance_keeps_the_larger_allocation() {
        let r = repo();
        let sig = [100.0, 5.0, 0.3];
        let near = [97.0, 4.9, 0.296];
        r.insert(0, 7, &sig, 0, ResourceAllocation::large(6), SimTime::ZERO);
        // A smaller allocation tuned against a slightly lighter workload in
        // the same anchor must not shrink the entry others rely on…
        r.insert(
            1,
            7,
            &near,
            0,
            ResourceAllocation::large(4),
            SimTime::from_hours(1.0),
        );
        let e = r.lookup(2, 7, &sig, 0, SimTime::ZERO).expect("hit");
        assert_eq!(e.allocation, ResourceAllocation::large(6));
        assert_eq!(e.owner, 0);
        assert_eq!(
            e.tuned_at,
            SimTime::from_hours(1.0),
            "entry was reconfirmed"
        );
        // …but a larger one replaces it.
        r.insert(
            1,
            7,
            &near,
            0,
            ResourceAllocation::large(8),
            SimTime::from_hours(2.0),
        );
        let e = r.lookup(2, 7, &sig, 0, SimTime::ZERO).expect("hit");
        assert_eq!(e.allocation, ResourceAllocation::large(8));
        assert_eq!(e.owner, 1);
    }

    #[test]
    fn record_miss_feeds_shard_stats() {
        let r = repo();
        assert!(r.apply(&PendingOp::RecordMiss { namespace: 9 }));
        assert_eq!(r.stats().misses, 1);
    }

    #[test]
    fn namespaces_are_isolated() {
        let r = repo();
        let sig = [10.0, 10.0];
        r.insert(0, 1, &sig, 0, ResourceAllocation::large(2), SimTime::ZERO);
        assert!(r.lookup(0, 2, &sig, 0, SimTime::ZERO).is_none());
    }

    #[test]
    fn interference_buckets_are_separate() {
        let r = repo();
        let sig = [10.0, 10.0];
        r.insert(0, 1, &sig, 0, ResourceAllocation::large(2), SimTime::ZERO);
        r.insert(0, 1, &sig, 2, ResourceAllocation::large(6), SimTime::ZERO);
        assert_eq!(r.len(), 2);
        assert_eq!(r.anchor_count(), 1);
        assert_eq!(
            r.lookup(0, 1, &sig, 2, SimTime::ZERO).unwrap().allocation,
            ResourceAllocation::large(6)
        );
    }

    #[test]
    fn ttl_evicts_stale_entries() {
        let r = SharedSignatureRepository::new(SharedRepoConfig {
            ttl: Some(SimDuration::from_hours(24.0)),
            ..Default::default()
        });
        let sig = [10.0, 10.0];
        r.insert(0, 1, &sig, 0, ResourceAllocation::large(2), SimTime::ZERO);
        assert!(r.lookup(0, 1, &sig, 0, SimTime::from_hours(23.0)).is_some());
        assert!(r.lookup(0, 1, &sig, 0, SimTime::from_hours(25.0)).is_none());
        assert_eq!(r.stats().evictions, 1);
        assert!(r.is_empty());

        r.insert(0, 1, &sig, 0, ResourceAllocation::large(2), SimTime::ZERO);
        assert_eq!(r.evict_stale(SimTime::from_hours(25.0)), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn peek_excludes_owner_and_moves_no_stats() {
        let r = repo();
        let sig = [10.0, 10.0];
        r.insert(3, 1, &sig, 0, ResourceAllocation::large(2), SimTime::ZERO);
        assert!(r.peek(1, &sig, 0, SimTime::ZERO, Some(3)).is_none());
        assert!(r.peek(1, &sig, 0, SimTime::ZERO, Some(4)).is_some());
        assert!(r.peek(1, &sig, 0, SimTime::ZERO, None).is_some());
        let stats = r.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let r = repo();
        for ns in 0..1000u64 {
            let a = r.shard_index(ns);
            let b = r.shard_index(ns);
            assert_eq!(a, b);
            assert!(a < r.shard_count());
        }
    }

    #[test]
    fn apply_publish_and_record_hit() {
        let r = repo();
        let sig = vec![10.0, 10.0];
        r.apply(&PendingOp::Publish {
            tenant: 0,
            namespace: 1,
            signature: sig.clone(),
            interference_bucket: 0,
            allocation: ResourceAllocation::large(3),
            tuned_at: SimTime::ZERO,
        });
        assert_eq!(r.len(), 1);
        r.apply(&PendingOp::RecordHit {
            tenant: 5,
            namespace: 1,
            signature: sig,
            interference_bucket: 0,
        });
        let stats = r.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.cross_tenant_hits, 1);
    }
}
