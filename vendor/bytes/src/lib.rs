//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], a cheaply cloneable, immutable byte buffer with the
//! subset of the real crate's API the workspace uses. Backed by `Arc<[u8]>`
//! so clones are reference-counted, matching the real crate's cost model.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Creates a buffer by copying `bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_equality() {
        let a = Bytes::from_static(b"row-1");
        let b = Bytes::from(b"row-1".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(&a[..], b"row-1");
        let c = a.clone();
        assert_eq!(c, a);
        assert!(format!("{a:?}").contains("row-1"));
    }
}
