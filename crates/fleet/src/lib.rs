//! Multi-tenant fleet simulation with a shared, sharded signature repository.
//!
//! The DejaVu paper (ASPLOS 2012) amortizes tuning cost by caching allocation
//! decisions per workload class — for one service. This crate scales that idea
//! to a fleet: hundreds of tenants, each owning a
//! `dejavu_core::DejaVuController`, all reading and writing one
//! [`SharedSignatureRepository`], so one tenant's tuning pays off for every
//! recurring workload in the fleet.
//!
//! * [`arena`] — bump-arena slabs for signature payloads: contiguous
//!   dim-major storage with `(offset, len)` handles and capacity-retaining
//!   reset, backing the resolve memo and the anchor-set misfit store.
//! * [`engine`] — the single-tenant simulation engine (moved here from
//!   `dejavu-experiments`), now steppable one observation tick at a time.
//! * [`shared_repo`] — the lock-striped, sharded store. Entries are keyed by
//!   *anchor* (a canonical class signature matched by normalized distance),
//!   not by tenant-local class id, with per-shard statistics, TTL eviction
//!   and cross-tenant hit accounting.
//! * [`tenant_view`] — the `AllocationStore` adapter a tenant's controller
//!   uses: immediate local overlay, transport-buffered publishes.
//! * [`transport`] — the pluggable commit-transport layer: the
//!   [`CommitTransport`] trait with the lock-step [`BspBarrier`] backend
//!   (bit-deterministic for any worker count), the free-running
//!   [`BoundedStaleness`] backend (per-tenant threads) and the
//!   [`WorkStealing`] pool (a fixed thread cap over a shared deque) — the
//!   asynchronous pair sharing per-shard commit frontiers, views at most
//!   `K` epochs stale, `K = 0` bit-matching the barrier at any thread cap.
//! * [`scenario`] — fleet descriptions: diurnal Cassandra fleets, spike
//!   storms, sine sweeps, interference-heavy co-location, SPECweb
//!   contingents — plus each tenant's barrier-aligned [`EpochWindow`].
//! * [`fleet_engine`] — prepares tenants (admission windows, clock offsets,
//!   outboxes), hands them to the configured transport, and finalizes the
//!   driven runs (in parallel on multi-worker configs) into the report.
//! * [`report`] — fleet-wide aggregation (SLO violations, cost vs. baselines,
//!   cold-start tunings avoided, hit rates, shard balance, observed
//!   staleness).
//!
//! # Example
//!
//! ```
//! use dejavu_fleet::{FleetConfig, FleetEngine, ScenarioBuilder};
//! use dejavu_simcore::SimDuration;
//!
//! let scenario = ScenarioBuilder::new("demo", 7, 2)
//!     .tick(SimDuration::from_secs(900.0))
//!     .diurnal_fleet(3)
//!     .build();
//! let report = FleetEngine::new(scenario, FleetConfig::default()).run();
//! assert_eq!(report.tenants.len(), 3);
//! ```

pub mod arena;
pub mod durable;
pub mod engine;
pub mod faults;
pub mod fleet_engine;
pub mod repo_client;
pub mod report;
pub mod scenario;
pub mod shared_repo;
pub mod snapshot;
pub mod tenant_view;
pub mod transport;

pub use arena::{SigRef, SignatureArena};
pub use durable::{
    write_atomic, CrashHook, CrashSite, DurableCheckpointStore, DurableError, RecordReceipt,
    RecoveryReport, BASE_FILE, DURABLE_MANIFEST_VERSION, MANIFEST_FILE,
};
pub use engine::{RunConfig, RunResult, RunState, SimulationEngine};
pub use faults::{FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultSpecError};
pub use fleet_engine::{FleetConfig, FleetEngine, SharingMode};
pub use repo_client::RepositoryClient;
pub use report::{FleetReport, SharedRepoSnapshot, TenantOutcome};
pub use scenario::{
    churn_fleet, standard_fleet, EpochWindow, Scenario, ScenarioBuilder, ServiceSpec, SpaceKind,
    TenantSpec,
};
pub use shared_repo::{
    namespace_for, shard_of_namespace, DeltaCursor, PendingOp, ResolveMemo, ShardStats,
    SharedEntry, SharedRepoConfig, SharedSignatureRepository, TenantId,
};
pub use snapshot::{
    CheckpointStore, DeltaSnapshot, RepoSnapshot, SnapshotError, DELTA_SNAPSHOT_VERSION,
    SNAPSHOT_VERSION,
};
pub use tenant_view::TenantRepoView;
pub use transport::{
    BoundedStaleness, BspBarrier, CommitTransport, FaultSummary, FleetContext, FleetHarness,
    Outbox, StalenessHistogram, TenantHandle, TransportConfig, TransportOutcome, TransportSummary,
    WorkStealing,
};
