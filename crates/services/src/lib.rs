//! Service performance models for the DejaVu reproduction.
//!
//! The paper evaluates DejaVu with three widely used benchmarks deployed on
//! EC2: Cassandra under a YCSB-style update-heavy workload, SPECweb2009
//! (support / banking / e-commerce) and RUBiS. We model each service as a
//! queueing system whose latency/QoS depends on the offered load, the
//! allocation the controller deployed, warm-up/re-partitioning transients and
//! interference — which is exactly the feedback a provisioning controller
//! observes.
//!
//! * [`perf`] — the shared M/M/k-style queueing model.
//! * [`slo`] — SLO definitions (latency bound, QoS percentage) and outcomes.
//! * [`cassandra`] — the key-value store (95% writes, re-partitioning delays).
//! * [`specweb`] — the 3-tier web service (QoS = fraction of downloads meeting
//!   the 0.99 Mbps rate; support workload is I/O intensive and read-only).
//! * [`rubis`] — the auction site used in Figure 1 and the overhead study
//!   (26 interaction types with a transition mix).
//! * [`service`] — the [`service::ServiceModel`] trait tying them together and
//!   mapping each service to the workload descriptions in `dejavu-traces`.
//! * [`client`] — client emulators that turn a trace level into request load
//!   and measure the resulting performance sample.

pub mod cassandra;
pub mod client;
pub mod perf;
pub mod rubis;
pub mod service;
pub mod slo;
pub mod specweb;

pub use cassandra::CassandraService;
pub use client::ClientEmulator;
pub use perf::{PerfSample, QueueingModel};
pub use rubis::RubisService;
pub use service::{ServiceError, ServiceModel};
pub use slo::{Slo, SloOutcome};
pub use specweb::{SpecWebService, SpecWebWorkload};
