//! The DejaVu framework (ASPLOS 2012): caching and reusing VM resource
//! allocation decisions keyed by workload signatures.
//!
//! DejaVu accelerates resource management in virtualized environments by
//! (1) profiling workloads through a duplicating proxy and a clone-VM
//! profiler, (2) clustering the profiled workload signatures into a small set
//! of **workload classes** during a learning phase, (3) invoking a **Tuner**
//! once per class to find the minimal allocation that meets the SLO, storing
//! the result in the **signature repository** (the DejaVu cache), and
//! (4) at runtime classifying each newly observed signature in seconds and
//! deploying the cached allocation directly — falling back to full capacity
//! (and eventually re-clustering) when the classifier's certainty is low, and
//! compensating for co-located-tenant **interference** via an interference
//! index that extends the repository key.
//!
//! Crate layout:
//!
//! * [`config`] — [`config::DejaVuConfig`] and its builder.
//! * [`signature`] — signature acquisition: feature selection over profiled
//!   metrics and assembly of runtime signatures.
//! * [`clustering`] — workload-class identification (k-means, automatic k).
//! * [`classify`] — the online classifier (decision tree or naive Bayes) with
//!   certainty levels.
//! * [`repository`] — the signature repository keyed by workload class ×
//!   interference bucket.
//! * [`tuner`] — the [`tuner::Tuner`] trait and the linear-search tuner used
//!   in the paper's evaluation.
//! * [`interference`] — interference-index estimation (§3.6).
//! * [`controller`] — [`controller::DejaVuController`], the provisioning
//!   controller that ties everything together and implements
//!   `dejavu_cloud::ProvisioningController`.
//!
//! # Example
//!
//! ```
//! use dejavu_core::config::DejaVuConfig;
//!
//! let config = DejaVuConfig::builder()
//!     .learning_hours(24)
//!     .certainty_threshold(0.6)
//!     .build();
//! assert_eq!(config.learning_hours, 24);
//! ```

pub mod classify;
pub mod clustering;
pub mod config;
pub mod controller;
pub mod error;
pub mod flatmap;
pub mod interference;
pub mod repository;
pub mod signature;
pub mod tuner;

pub use classify::{ClassifierKind, OnlineClassifier};
pub use clustering::{ClusteringOutcome, WorkloadClusterer};
pub use config::DejaVuConfig;
pub use controller::{DejaVuController, DejaVuPhase, DejaVuStats};
pub use error::DejaVuError;
pub use flatmap::FlatMap;
pub use interference::{InterferenceBucket, InterferenceEstimator};
pub use repository::{
    AllocationStore, RepositoryEntry, RepositoryKey, RepositoryStats, SignatureRepository,
    StoreContext,
};
pub use signature::SignatureBuilder;
pub use tuner::{LinearSearchTuner, Tuner, TuningOutcome};
