//! DejaVu configuration.

use crate::classify::ClassifierKind;
use dejavu_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Configuration of the DejaVu framework.
///
/// Use [`DejaVuConfig::builder`] to customize only the knobs you care about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DejaVuConfig {
    /// Length of the initial learning phase in hours (the paper uses the first
    /// day of each trace).
    pub learning_hours: u64,
    /// Minimum classification certainty required to trust a cache lookup.
    pub certainty_threshold: f64,
    /// A signature whose distance to the nearest cluster centroid exceeds this
    /// multiple of that cluster's own radius is treated as an
    /// unforeseen workload (full-capacity fallback).
    pub novelty_margin: f64,
    /// How long the profiler samples metrics to build one signature — the
    /// dominant part of DejaVu's ~10 s adaptation time.
    pub signature_window: SimDuration,
    /// Maximum number of metrics kept by feature selection.
    pub max_signature_metrics: usize,
    /// Range of cluster counts the automatic class identification explores.
    pub cluster_range: (usize, usize),
    /// Which classifier family to train.
    pub classifier: ClassifierKind,
    /// How often the workload is re-profiled when nothing else triggers it.
    pub profile_interval: SimDuration,
    /// Minimum time between reactions to SLO violations (lets reconfigurations
    /// and re-partitioning settle before blaming interference).
    pub violation_cooldown: SimDuration,
    /// Number of consecutive low-certainty classifications after which DejaVu
    /// re-runs clustering and tuning.
    pub reclustering_threshold: usize,
    /// Width of an interference-index bucket in the repository key.
    pub interference_bucket_width: f64,
    /// Whether interference detection and compensation are enabled (§4.3's
    /// comparison disables this).
    pub interference_detection: bool,
    /// Deterministic seed for profiling noise and clustering restarts.
    pub seed: u64,
}

impl Default for DejaVuConfig {
    fn default() -> Self {
        DejaVuConfig {
            learning_hours: 24,
            certainty_threshold: 0.6,
            novelty_margin: 1.8,
            signature_window: SimDuration::from_secs(10.0),
            max_signature_metrics: 8,
            cluster_range: (2, 8),
            classifier: ClassifierKind::DecisionTree,
            profile_interval: SimDuration::from_hours(1.0),
            violation_cooldown: SimDuration::from_mins(15.0),
            reclustering_threshold: 6,
            interference_bucket_width: 0.25,
            interference_detection: true,
            seed: 0xDEAD_BEEF,
        }
    }
}

impl DejaVuConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> DejaVuConfigBuilder {
        DejaVuConfigBuilder {
            config: DejaVuConfig::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.learning_hours == 0 {
            return Err("learning_hours must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.certainty_threshold) {
            return Err("certainty_threshold must be in [0, 1]".into());
        }
        if self.novelty_margin <= 0.0 {
            return Err("novelty_margin must be positive".into());
        }
        if self.max_signature_metrics == 0 {
            return Err("max_signature_metrics must be at least 1".into());
        }
        if self.cluster_range.0 == 0 || self.cluster_range.0 > self.cluster_range.1 {
            return Err("cluster_range must be a non-empty range starting at 1 or more".into());
        }
        if self.interference_bucket_width <= 0.0 {
            return Err("interference_bucket_width must be positive".into());
        }
        Ok(())
    }
}

/// Builder for [`DejaVuConfig`].
#[derive(Debug, Clone)]
pub struct DejaVuConfigBuilder {
    config: DejaVuConfig,
}

impl DejaVuConfigBuilder {
    /// Sets the learning-phase length in hours.
    pub fn learning_hours(mut self, hours: u64) -> Self {
        self.config.learning_hours = hours;
        self
    }

    /// Sets the certainty threshold for cache lookups.
    pub fn certainty_threshold(mut self, threshold: f64) -> Self {
        self.config.certainty_threshold = threshold;
        self
    }

    /// Sets the novelty margin for unforeseen-workload detection.
    pub fn novelty_margin(mut self, margin: f64) -> Self {
        self.config.novelty_margin = margin;
        self
    }

    /// Sets the signature sampling window.
    pub fn signature_window(mut self, window: SimDuration) -> Self {
        self.config.signature_window = window;
        self
    }

    /// Sets the maximum number of signature metrics kept by feature selection.
    pub fn max_signature_metrics(mut self, n: usize) -> Self {
        self.config.max_signature_metrics = n;
        self
    }

    /// Sets the range of cluster counts explored.
    pub fn cluster_range(mut self, min: usize, max: usize) -> Self {
        self.config.cluster_range = (min, max);
        self
    }

    /// Sets the classifier family.
    pub fn classifier(mut self, kind: ClassifierKind) -> Self {
        self.config.classifier = kind;
        self
    }

    /// Sets the periodic profiling interval.
    pub fn profile_interval(mut self, interval: SimDuration) -> Self {
        self.config.profile_interval = interval;
        self
    }

    /// Enables or disables interference detection.
    pub fn interference_detection(mut self, enabled: bool) -> Self {
        self.config.interference_detection = enabled;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Finishes building.
    ///
    /// # Panics
    ///
    /// Panics if the resulting configuration is invalid; use
    /// [`DejaVuConfig::validate`] to check fallibly.
    pub fn build(self) -> DejaVuConfig {
        self.config
            .validate()
            .expect("DejaVu configuration must be valid");
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(DejaVuConfig::default().validate().is_ok());
    }

    #[test]
    fn builder_overrides_fields() {
        let c = DejaVuConfig::builder()
            .learning_hours(12)
            .certainty_threshold(0.8)
            .cluster_range(3, 5)
            .classifier(ClassifierKind::NaiveBayes)
            .interference_detection(false)
            .seed(7)
            .build();
        assert_eq!(c.learning_hours, 12);
        assert_eq!(c.certainty_threshold, 0.8);
        assert_eq!(c.cluster_range, (3, 5));
        assert_eq!(c.classifier, ClassifierKind::NaiveBayes);
        assert!(!c.interference_detection);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = DejaVuConfig {
            certainty_threshold: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = DejaVuConfig {
            learning_hours: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = DejaVuConfig {
            cluster_range: (5, 2),
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn builder_panics_on_invalid() {
        let _ = DejaVuConfig::builder().certainty_threshold(2.0).build();
    }
}
