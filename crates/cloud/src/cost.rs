//! Instance-hour cost metering.

use crate::allocation::ResourceAllocation;
use dejavu_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// Accumulates deployment cost as allocations change over simulated time.
///
/// # Example
///
/// ```
/// use dejavu_cloud::{CostMeter, ResourceAllocation};
/// use dejavu_simcore::SimTime;
///
/// let mut m = CostMeter::new();
/// m.record(SimTime::ZERO, ResourceAllocation::large(2));
/// m.record(SimTime::from_hours(1.0), ResourceAllocation::large(4));
/// let cost = m.total_cost(SimTime::from_hours(2.0));
/// assert!((cost - (2.0 * 0.34 + 4.0 * 0.34)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostMeter {
    /// (time_secs, allocation) change points, in time order.
    changes: Vec<(f64, ResourceAllocation)>,
}

impl CostMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        CostMeter {
            changes: Vec::new(),
        }
    }

    /// Records that `allocation` is deployed from `time` onwards.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the previous record.
    pub fn record(&mut self, time: SimTime, allocation: ResourceAllocation) {
        if let Some(&(last, _)) = self.changes.last() {
            assert!(
                time.as_secs() >= last,
                "cost meter records must be in time order"
            );
        }
        self.changes.push((time.as_secs(), allocation));
    }

    /// Number of recorded allocation changes.
    pub fn num_changes(&self) -> usize {
        self.changes.len()
    }

    /// Total cost in USD from the first record until `end`.
    pub fn total_cost(&self, end: SimTime) -> f64 {
        self.cost_between(SimTime::ZERO, end)
    }

    /// Cost in USD accumulated within `[from, to]`.
    pub fn cost_between(&self, from: SimTime, to: SimTime) -> f64 {
        let from = from.as_secs();
        let to = to.as_secs();
        let mut total = 0.0;
        for (i, &(t0, alloc)) in self.changes.iter().enumerate() {
            let t1 = self
                .changes
                .get(i + 1)
                .map(|&(t, _)| t)
                .unwrap_or(to)
                .min(to);
            let start = t0.max(from);
            if t1 > start {
                total += alloc.hourly_cost() * (t1 - start) / 3_600.0;
            }
        }
        total
    }

    /// Instance-hours accumulated within `[from, to]` (weighted by capacity units).
    pub fn capacity_hours_between(&self, from: SimTime, to: SimTime) -> f64 {
        let from = from.as_secs();
        let to = to.as_secs();
        let mut total = 0.0;
        for (i, &(t0, alloc)) in self.changes.iter().enumerate() {
            let t1 = self
                .changes
                .get(i + 1)
                .map(|&(t, _)| t)
                .unwrap_or(to)
                .min(to);
            let start = t0.max(from);
            if t1 > start {
                total += alloc.capacity_units() * (t1 - start) / 3_600.0;
            }
        }
        total
    }

    /// Relative savings of this meter versus `baseline` over `[from, to]`
    /// (1.0 = free, 0.0 = same cost, negative = more expensive).
    pub fn savings_vs(&self, baseline: &CostMeter, from: SimTime, to: SimTime) -> f64 {
        let base = baseline.cost_between(from, to);
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.cost_between(from, to) / base
    }

    /// The allocation in effect at `time`, if any has been recorded yet.
    pub fn allocation_at(&self, time: SimTime) -> Option<ResourceAllocation> {
        let t = time.as_secs();
        self.changes
            .iter()
            .rev()
            .find(|&&(t0, _)| t0 <= t)
            .map(|&(_, a)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceType;

    #[test]
    fn cost_accumulates_by_segment() {
        let mut m = CostMeter::new();
        m.record(SimTime::ZERO, ResourceAllocation::large(10));
        m.record(SimTime::from_hours(2.0), ResourceAllocation::large(5));
        let total = m.total_cost(SimTime::from_hours(4.0));
        assert!((total - (10.0 * 0.34 * 2.0 + 5.0 * 0.34 * 2.0)).abs() < 1e-9);
        assert_eq!(m.num_changes(), 2);
    }

    #[test]
    fn windowed_cost() {
        let mut m = CostMeter::new();
        m.record(SimTime::ZERO, ResourceAllocation::large(4));
        let c = m.cost_between(SimTime::from_hours(1.0), SimTime::from_hours(2.0));
        assert!((c - 4.0 * 0.34).abs() < 1e-9);
    }

    #[test]
    fn savings_vs_overprovisioning() {
        let mut dejavu = CostMeter::new();
        dejavu.record(SimTime::ZERO, ResourceAllocation::large(4));
        let mut max = CostMeter::new();
        max.record(SimTime::ZERO, ResourceAllocation::large(10));
        let s = dejavu.savings_vs(&max, SimTime::ZERO, SimTime::from_hours(10.0));
        assert!((s - 0.6).abs() < 1e-9);
        assert_eq!(
            max.savings_vs(&max, SimTime::ZERO, SimTime::from_hours(1.0)),
            0.0
        );
    }

    #[test]
    fn capacity_hours_account_for_type() {
        let mut m = CostMeter::new();
        m.record(
            SimTime::ZERO,
            ResourceAllocation::new(InstanceType::ExtraLarge, 5).unwrap(),
        );
        let ch = m.capacity_hours_between(SimTime::ZERO, SimTime::from_hours(2.0));
        assert!((ch - 20.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_lookup() {
        let mut m = CostMeter::new();
        assert_eq!(m.allocation_at(SimTime::ZERO), None);
        m.record(SimTime::from_hours(1.0), ResourceAllocation::large(3));
        assert_eq!(m.allocation_at(SimTime::from_secs(0.0)), None);
        assert_eq!(
            m.allocation_at(SimTime::from_hours(5.0)),
            Some(ResourceAllocation::large(3))
        );
    }

    #[test]
    #[should_panic]
    fn out_of_order_record_panics() {
        let mut m = CostMeter::new();
        m.record(SimTime::from_hours(2.0), ResourceAllocation::large(1));
        m.record(SimTime::from_hours(1.0), ResourceAllocation::large(2));
    }

    #[test]
    fn empty_meter_costs_nothing() {
        let m = CostMeter::new();
        assert_eq!(m.total_cost(SimTime::from_hours(10.0)), 0.0);
    }
}
