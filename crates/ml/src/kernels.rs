//! Chunked, autovectorizable distance-accumulation kernels.
//!
//! A textbook Euclidean distance loop is a serial dependency chain — every
//! `sum += d * d` waits on the previous one — so the compiler cannot issue
//! the independent per-dimension work as vector lanes. The kernels here
//! restructure that accumulation into fixed-width lanes ([`LANES`]) with an
//! explicit accumulator array, processed in [`BLOCK`]-element super-blocks
//! with the remainder handled scalar. The compiler autovectorizes the block
//! body (independent subtract/multiply/add per lane — and for the normalized
//! kernel, independent divides), which is where the signature-resolution and
//! k-means hot paths spend their time at fleet scale.
//!
//! Chunking changes floating-point summation order, so results differ from
//! the exact serial kernels in the last ulps. Every kernel therefore ships in
//! two forms:
//!
//! * `*_chunked` — the lane-parallel form (fast path),
//! * `*_exact` — bit-identical to the historical serial loops,
//!
//! plus a mode-dispatching wrapper that picks one per process. Setting the
//! `DEJAVU_EXACT_KERNELS` environment variable (to anything but `0` or the
//! empty string) before first use forces the exact-order kernels everywhere —
//! the one-flag fallback the bit-exact golden tests run under. The mode is
//! read once and cached, so the dispatch on the hot path is a single branch
//! on a cached boolean, and a process can never observe a mid-run switch.
//!
//! The chunked and exact forms agree within 1e-9 relative error (pinned by a
//! property test across random dims and lengths, including remainder edge
//! cases), and bounded kernels only ever disagree on `Some`-vs-`None` when
//! the true sum sits within rounding distance of the bound — callers treat
//! the bound as a tolerance, never as a semantic cliff.

use std::sync::OnceLock;

/// Accumulator-array width: 4 × f64 fills a 256-bit vector register (AVX2),
/// and narrower SIMD ISAs split it into two 128-bit halves for free.
pub const LANES: usize = 4;

/// Super-block length between early-exit checks of the bounded kernels: four
/// [`LANES`]-wide chunks, so the horizontal reduction (which serializes) is
/// paid once per 16 dimensions instead of once per element.
pub const BLOCK: usize = 4 * LANES;

/// True when this process runs the exact-order kernels everywhere.
///
/// Resolved once from the `DEJAVU_EXACT_KERNELS` environment variable on
/// first use and cached for the process lifetime.
#[inline]
pub fn exact_kernels() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| {
        std::env::var("DEJAVU_EXACT_KERNELS")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Horizontal sum of the accumulator array, pairwise so the reduction tree
/// is fixed regardless of how the lanes were filled.
#[inline(always)]
fn hsum(acc: [f64; LANES]) -> f64 {
    (acc[0] + acc[2]) + (acc[1] + acc[3])
}

/// Squared Euclidean distance, lane-parallel accumulation.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn squared_distance_chunked(a: &[f64], b: &[f64]) -> f64 {
    squared_distance_within_chunked(a, b, f64::INFINITY).expect("infinite bound never exits early")
}

/// Squared Euclidean distance, exact serial order — bit-identical to
/// [`crate::dataset::squared_distance`].
#[inline]
pub fn squared_distance_exact(a: &[f64], b: &[f64]) -> f64 {
    crate::dataset::squared_distance(a, b)
}

/// Mode-dispatching squared Euclidean distance.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    if exact_kernels() {
        squared_distance_exact(a, b)
    } else {
        squared_distance_chunked(a, b)
    }
}

/// Early-exit squared distance, lane-parallel: accumulates [`BLOCK`]-element
/// super-blocks and abandons the pair once the partial sum exceeds `bound`
/// (checked per block rather than per element, so the block body stays
/// branch-free and vectorizable).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn squared_distance_within_chunked(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let n = a.len();
    let mut sum = 0.0;
    let mut idx = 0;
    while n - idx >= BLOCK {
        let xa = &a[idx..idx + BLOCK];
        let xb = &b[idx..idx + BLOCK];
        let mut acc = [0.0f64; LANES];
        for c in 0..BLOCK / LANES {
            for l in 0..LANES {
                let d = xa[c * LANES + l] - xb[c * LANES + l];
                acc[l] += d * d;
            }
        }
        sum += hsum(acc);
        if sum > bound {
            return None;
        }
        idx += BLOCK;
    }
    for (x, y) in a[idx..].iter().zip(&b[idx..]) {
        let d = x - y;
        sum += d * d;
        if sum > bound {
            return None;
        }
    }
    Some(sum)
}

/// Early-exit squared distance, exact serial order — bit-identical to
/// [`crate::dataset::squared_distance_within`].
#[inline]
pub fn squared_distance_within_exact(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    crate::dataset::squared_distance_within(a, b, bound)
}

/// Mode-dispatching early-exit squared distance.
#[inline]
pub fn squared_distance_within(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    if exact_kernels() {
        squared_distance_within_exact(a, b, bound)
    } else {
        squared_distance_within_chunked(a, b, bound)
    }
}

/// Early-exit *normalized* squared-difference sum, lane-parallel: accumulates
/// `((x - y) / max(|x|, |y|, floor))²` per dimension — the scale-invariant
/// distance of the shared signature repository. The per-dimension divides are
/// independent across lanes, which is exactly what a serial formulation
/// denies the vector units.
///
/// Returns `None` once the partial sum exceeds `bound` (checked per
/// [`BLOCK`]).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn normalized_sq_sum_chunked(a: &[f64], b: &[f64], floor: f64, bound: f64) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let n = a.len();
    let mut sum = 0.0;
    let mut idx = 0;
    while n - idx >= BLOCK {
        let xa = &a[idx..idx + BLOCK];
        let xb = &b[idx..idx + BLOCK];
        let mut acc = [0.0f64; LANES];
        for c in 0..BLOCK / LANES {
            for l in 0..LANES {
                let x = xa[c * LANES + l];
                let y = xb[c * LANES + l];
                let scale = x.abs().max(y.abs()).max(floor);
                let d = (x - y) / scale;
                acc[l] += d * d;
            }
        }
        sum += hsum(acc);
        if sum > bound {
            return None;
        }
        idx += BLOCK;
    }
    for (&x, &y) in a[idx..].iter().zip(&b[idx..]) {
        let scale = x.abs().max(y.abs()).max(floor);
        let d = (x - y) / scale;
        sum += d * d;
        if sum > bound {
            return None;
        }
    }
    Some(sum)
}

/// Early-exit normalized squared-difference sum, exact serial order —
/// bit-identical to the historical signature-resolution loop.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn normalized_sq_sum_exact(a: &[f64], b: &[f64], floor: f64, bound: f64) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let mut sum = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let scale = x.abs().max(y.abs()).max(floor);
        let d = (x - y) / scale;
        sum += d * d;
        if sum > bound {
            return None;
        }
    }
    Some(sum)
}

/// Mode-dispatching early-exit normalized squared-difference sum.
#[inline]
pub fn normalized_sq_sum(a: &[f64], b: &[f64], floor: f64, bound: f64) -> Option<f64> {
    if exact_kernels() {
        normalized_sq_sum_exact(a, b, floor, bound)
    } else {
        normalized_sq_sum_chunked(a, b, floor, bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(len: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = dejavu_simcore::SimRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..len)
            .map(|_| rng.uniform(-100.0, 100.0) * 10f64.powi(rng.uniform_usize(6) as i32 - 3))
            .collect();
        let b: Vec<f64> = a
            .iter()
            .map(|x| x + rng.uniform(-1.0, 1.0) * x.abs().max(1.0) * 0.3)
            .collect();
        (a, b)
    }

    fn rel_close(a: f64, b: f64) {
        let scale = a.abs().max(b.abs()).max(1e-300);
        assert!(
            ((a - b) / scale).abs() <= 1e-9,
            "chunked {a} vs exact {b} diverged"
        );
    }

    #[test]
    fn chunked_matches_exact_across_remainders() {
        // Cover len % LANES ∈ {0, 1, LANES-1}, sub-block lengths, and the
        // empty vector.
        for len in [0, 1, 3, 4, 5, 7, 8, 15, 16, 17, 19, 30, 32, 33, 128] {
            let (a, b) = vecs(len, 0x5EED ^ len as u64);
            rel_close(
                squared_distance_chunked(&a, &b),
                squared_distance_exact(&a, &b),
            );
            let exact = normalized_sq_sum_exact(&a, &b, 1e-9, f64::INFINITY).unwrap();
            let chunked = normalized_sq_sum_chunked(&a, &b, 1e-9, f64::INFINITY).unwrap();
            rel_close(chunked, exact);
        }
    }

    #[test]
    fn bounded_kernels_exit_on_far_pairs() {
        let a = vec![0.0; 64];
        let b = vec![10.0; 64];
        assert_eq!(squared_distance_within_chunked(&a, &b, 1.0), None);
        assert_eq!(normalized_sq_sum_chunked(&a, &b, 1e-9, 1.0), None);
        assert!(squared_distance_within_chunked(&a, &a, 1.0).is_some());
        assert_eq!(normalized_sq_sum_chunked(&a, &a, 1e-9, 1.0), Some(0.0));
    }

    #[test]
    fn bounded_chunked_sum_is_independent_of_the_bound() {
        // The returned value must not depend on where the early-exit checks
        // landed: a surviving pair yields the same sum under any bound.
        let (a, b) = vecs(37, 77);
        let loose = squared_distance_within_chunked(&a, &b, f64::INFINITY).unwrap();
        let tight = squared_distance_within_chunked(&a, &b, loose * (1.0 + 1e-12)).unwrap();
        assert_eq!(loose.to_bits(), tight.to_bits());
    }
}
