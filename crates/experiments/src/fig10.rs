//! Figure 10 — scaling up SPECweb (support workload) under the Messenger
//! trace: savings are smaller than with the HotMail trace because the evening
//! peak keeps the extra-large configuration busy for more hours.

use crate::fig9::{scale_up_comparison, ScaleUpFigure};
use dejavu_traces::messenger_week;

/// Runs Figure 10 (Messenger trace).
pub fn run(seed: u64) -> ScaleUpFigure {
    scale_up_comparison(messenger_week(seed), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messenger_scale_up_saves_less_than_hotmail() {
        let fig = run(1);
        // Paper: ~35% savings for Messenger vs ~45% for HotMail.
        assert!(
            fig.savings > 0.20 && fig.savings < 0.60,
            "savings {}",
            fig.savings
        );
        let hotmail = crate::fig9::run(1);
        assert!(hotmail.savings > 0.25, "hotmail {}", hotmail.savings);
        assert!(
            fig.qos_compliance > 0.7,
            "compliance {}",
            fig.qos_compliance
        );
    }
}
