//! k-means clustering with k-means++ seeding and automatic selection of the
//! number of clusters (silhouette score), mirroring the role of WEKA's
//! `SimpleKMeans` in the paper's workload-class identification step.

use crate::dataset::{distance, squared_distance, Dataset};
use crate::error::MlError;
use crate::kernels;
use dejavu_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// Configuration for a single k-means fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on total centroid movement.
    pub tolerance: f64,
    /// Number of random restarts; the best inertia wins.
    pub restarts: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 2,
            max_iterations: 100,
            tolerance: 1e-9,
            restarts: 4,
        }
    }
}

/// A fitted k-means model.
///
/// # Example
///
/// ```
/// use dejavu_ml::dataset::Dataset;
/// use dejavu_ml::kmeans::{KMeans, KMeansConfig};
/// let mut d = Dataset::new(vec!["x".into()]);
/// for i in 0..5 { d.push_unlabeled(vec![i as f64 * 0.1]); }
/// for i in 0..5 { d.push_unlabeled(vec![100.0 + i as f64 * 0.1]); }
/// let km = KMeans::fit(&d, &KMeansConfig { k: 2, ..Default::default() }, 1)?;
/// assert_ne!(km.assign(&[0.0]), km.assign(&[100.0]));
/// # Ok::<(), dejavu_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    centroids: CentroidSlab,
    inertia: f64,
    assignments: Vec<usize>,
    iterations_run: usize,
}

/// Fitted centroids stored as one contiguous centroid-major slab (`k×dims`)
/// instead of `k` separate heap vectors: the nearest-centroid scan walks one
/// cache-friendly allocation with no per-centroid pointer chase, and the
/// chunked distance kernels stride through it directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentroidSlab {
    dims: usize,
    data: Vec<f64>,
}

impl CentroidSlab {
    /// Number of centroids in the slab.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dims).unwrap_or(0)
    }

    /// Dimensionality of each centroid.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The centroid at `c`, or `None` when out of range.
    pub fn get(&self, c: usize) -> Option<&[f64]> {
        let start = c.checked_mul(self.dims)?;
        self.data.get(start..start + self.dims)
    }

    /// Iterates the centroids in index order.
    pub fn iter(&self) -> std::slice::ChunksExact<'_, f64> {
        self.data.chunks_exact(self.dims)
    }
}

impl std::ops::Index<usize> for CentroidSlab {
    type Output = [f64];

    fn index(&self, c: usize) -> &[f64] {
        &self.data[c * self.dims..(c + 1) * self.dims]
    }
}

impl<'a> IntoIterator for &'a CentroidSlab {
    type Item = &'a [f64];
    type IntoIter = std::slice::ChunksExact<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Reusable buffers for one [`KMeans::fit`] call: every restart runs over
/// the same scratch, so the per-restart cost is arithmetic, not allocator
/// traffic.
struct FitScratch {
    /// Flat `k×dims` centroid slab of the current restart.
    centroids: Vec<f64>,
    /// Flat `k×dims` accumulation slab for the Lloyd update step.
    next: Vec<f64>,
    counts: Vec<usize>,
    assignments: Vec<usize>,
    /// `k×n` buffer of every centroid-to-point squared distance of one
    /// assignment step, computed centroid-by-centroid in point-parallel
    /// lanes.
    dist_all: Vec<f64>,
    /// Dimension-major (`dims×n`) copy of the data points (k-means++ lanes).
    points_t: Vec<f64>,
    /// Per-point distance buffer of one seeding round.
    dist: Vec<f64>,
    /// k-means++ running minimum distances.
    weights: Vec<f64>,
}

impl FitScratch {
    fn new(n: usize, k: usize, dims: usize, points: &[&[f64]]) -> Self {
        let mut points_t = vec![0.0f64; n * dims];
        for (i, p) in points.iter().enumerate() {
            for (d, &x) in p.iter().enumerate() {
                points_t[d * n + i] = x;
            }
        }
        FitScratch {
            centroids: Vec::with_capacity(k * dims),
            next: vec![0.0; k * dims],
            counts: vec![0; k],
            assignments: vec![0; n],
            dist_all: vec![0.0; k * n],
            points_t,
            dist: vec![0.0; n],
            weights: vec![0.0; n],
        }
    }
}

impl KMeans {
    /// Fits k-means to `data` with the given configuration and seed.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] if `data` has no instances and
    /// [`MlError::InvalidK`] if `config.k` is zero or exceeds the number of
    /// instances.
    pub fn fit(data: &Dataset, config: &KMeansConfig, seed: u64) -> Result<Self, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if config.k == 0 || config.k > data.len() {
            return Err(MlError::InvalidK {
                requested: config.k,
                available: data.len(),
            });
        }
        if config.max_iterations == 0 {
            return Err(MlError::InvalidConfig(
                "max_iterations must be at least 1".into(),
            ));
        }
        // All restarts share one scratch allocation (the fits are small
        // enough that allocator traffic, not arithmetic, dominates a naive
        // formulation) and the winner is materialized once at the end.
        let points: Vec<&[f64]> = data
            .instances()
            .iter()
            .map(|i| i.features.as_slice())
            .collect();
        let mut scratch = FitScratch::new(points.len(), config.k, points[0].len(), &points);
        Ok(Self::fit_with_scratch(&points, config, seed, &mut scratch))
    }

    /// [`fit`](Self::fit) over pre-validated points and caller-owned scratch,
    /// so a `k` sweep ([`fit_auto_k`](Self::fit_auto_k)) transposes the data
    /// and allocates buffers once instead of once per candidate `k`.
    fn fit_with_scratch(
        points: &[&[f64]],
        config: &KMeansConfig,
        seed: u64,
        scratch: &mut FitScratch,
    ) -> KMeans {
        let mut best: Option<(f64, Vec<f64>, Vec<usize>, usize)> = None;
        let restarts = config.restarts.max(1);
        for r in 0..restarts {
            let mut rng = SimRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37_79B9));
            let (inertia, iterations_run) = Self::fit_once(points, config, &mut rng, scratch);
            if best.as_ref().map(|b| inertia < b.0).unwrap_or(true) {
                best = Some((
                    inertia,
                    scratch.centroids.clone(),
                    scratch.assignments.clone(),
                    iterations_run,
                ));
            }
        }
        let (inertia, centroids, assignments, iterations_run) =
            best.expect("at least one restart ran");
        let dims = points[0].len();
        KMeans {
            centroids: CentroidSlab {
                dims,
                data: centroids,
            },
            inertia,
            assignments,
            iterations_run,
        }
    }

    /// One k-means run over flat `k×dims` centroid buffers: the Lloyd loop
    /// reuses two slabs (current and next) instead of allocating a
    /// vector-of-vectors per iteration, and the distance-heavy steps compute
    /// many independent distances in parallel lanes over a dimension-major
    /// layout ([`Self::distances_to_all`]), which vectorizes where a single
    /// distance's serial add chain cannot. Each individual distance keeps the
    /// exact accumulation order of [`squared_distance`], so results are
    /// bit-for-bit identical to the textbook nested-`Vec` formulation.
    fn fit_once(
        points: &[&[f64]],
        config: &KMeansConfig,
        rng: &mut SimRng,
        scratch: &mut FitScratch,
    ) -> (f64, usize) {
        let dims = points[0].len();
        let k = config.k;
        Self::kmeanspp_init(points, k, rng, scratch);
        let n = points.len();
        scratch.next.resize(k * dims, 0.0);
        scratch.counts.resize(k, 0);
        scratch.dist_all.resize(k * n, 0.0);
        let FitScratch {
            centroids,
            next,
            counts,
            assignments,
            dist_all,
            points_t,
            ..
        } = scratch;
        let mut iterations_run = 0;
        for _ in 0..config.max_iterations {
            iterations_run += 1;
            // Assignment step: each centroid's distances to every point in
            // point-parallel lanes, then a per-point argmin over k values.
            Self::all_distances(centroids, k, dims, points_t, n, dist_all);
            for (i, a) in assignments.iter_mut().enumerate() {
                *a = Self::argmin_strided(dist_all, n, k, i).0;
            }
            // Update step.
            next.fill(0.0);
            counts.fill(0);
            for (i, p) in points.iter().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (acc, &x) in next[c * dims..(c + 1) * dims].iter_mut().zip(p.iter()) {
                    *acc += x;
                }
            }
            for c in 0..k {
                let centroid = &mut next[c * dims..(c + 1) * dims];
                if counts[c] == 0 {
                    // Re-seed an empty cluster with the point farthest from its centroid.
                    let anchor = &centroids[assignments[0] * dims..(assignments[0] + 1) * dims];
                    let far = points
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            let da = squared_distance(a, anchor);
                            let db = squared_distance(b, anchor);
                            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    centroid.copy_from_slice(points[far]);
                } else {
                    for acc in centroid.iter_mut() {
                        *acc /= counts[c] as f64;
                    }
                }
            }
            let movement: f64 = (0..k)
                .map(|c| {
                    distance(
                        &centroids[c * dims..(c + 1) * dims],
                        &next[c * dims..(c + 1) * dims],
                    )
                })
                .sum();
            std::mem::swap(centroids, next);
            if movement < config.tolerance {
                break;
            }
        }
        // Final assignment + inertia.
        Self::all_distances(centroids, k, dims, points_t, n, dist_all);
        let mut inertia = 0.0;
        for (i, a) in assignments.iter_mut().enumerate() {
            let (c, d2) = Self::argmin_strided(dist_all, n, k, i);
            *a = c;
            inertia += d2;
        }
        (inertia, iterations_run)
    }

    /// Squared distances of every `(centroid, point)` pair into a `k×n`
    /// buffer: for each centroid, the inner loop accumulates over independent
    /// per-point lanes of the dimension-major point slab, which the compiler
    /// can vectorize — unlike a single distance, whose additions form a
    /// serial dependency chain. Each pair still adds its dimensions in
    /// ascending order, so every distance is bit-identical to
    /// [`squared_distance`].
    fn all_distances(
        centroids: &[f64],
        k: usize,
        dims: usize,
        points_t: &[f64],
        n: usize,
        out: &mut [f64],
    ) {
        out.fill(0.0);
        for c in 0..k {
            let centroid = &centroids[c * dims..(c + 1) * dims];
            let row = &mut out[c * n..(c + 1) * n];
            for (d, &cv) in centroid.iter().enumerate() {
                let lane = &points_t[d * n..(d + 1) * n];
                for (acc, &x) in row.iter_mut().zip(lane) {
                    let diff = cv - x;
                    *acc += diff * diff;
                }
            }
        }
    }

    /// Argmin over the `k` values `buf[c*n + i]` for point `i`; ties break
    /// toward the lower centroid index, matching a strict-`<` ascending scan.
    fn argmin_strided(buf: &[f64], n: usize, k: usize, i: usize) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for c in 0..k {
            let v = buf[c * n + i];
            if v < best.1 {
                best = (c, v);
            }
        }
        best
    }

    /// k-means++ seeding into a flat `k×dims` slab. Incremental: each point's
    /// distance to the nearest chosen centroid is kept and folded with just
    /// the newest centroid per round — O(k·n) instead of recomputing the full
    /// minimum (O(k²·n)). `min` over exact distances is associative, so the
    /// weights are bit-identical to the recomputed form.
    fn kmeanspp_init(points: &[&[f64]], k: usize, rng: &mut SimRng, scratch: &mut FitScratch) {
        let dims = points[0].len();
        let n = points.len();
        let points_t = &scratch.points_t;
        let distances_to_newest = |newest: &[f64], dist: &mut [f64]| {
            dist.fill(0.0);
            for (d, &c) in newest.iter().enumerate() {
                let row = &points_t[d * n..(d + 1) * n];
                for (acc, &x) in dist.iter_mut().zip(row) {
                    let diff = x - c;
                    *acc += diff * diff;
                }
            }
        };
        let centroids = &mut scratch.centroids;
        centroids.clear();
        centroids.extend_from_slice(points[rng.uniform_usize(n)]);
        let weights = &mut scratch.weights;
        distances_to_newest(&centroids[0..dims], weights);
        while centroids.len() < k * dims {
            let total: f64 = weights.iter().sum();
            let newest = if total <= 0.0 {
                // All points coincide with existing centroids; duplicate one.
                points[rng.uniform_usize(n)]
            } else {
                let mut target = rng.uniform01() * total;
                let mut chosen = n - 1;
                for (i, w) in weights.iter().enumerate() {
                    target -= w;
                    if target <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                points[chosen]
            };
            // Incremental k-means++ weights: fold the newest centroid into
            // each point's running minimum. `min` over exact distances is
            // associative, so this is bit-identical to recomputing the full
            // minimum over all chosen centroids.
            distances_to_newest(newest, &mut scratch.dist);
            for (w, &d) in weights.iter_mut().zip(&scratch.dist) {
                *w = d.min(*w);
            }
            centroids.extend_from_slice(newest);
        }
    }

    fn nearest(centroids: &CentroidSlab, p: &[f64]) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (i, c) in centroids.iter().enumerate() {
            // Early exit: stop accumulating a centroid's distance once it
            // provably exceeds the best so far. The bail-out is strict, so a
            // centroid tying the best completes and loses to the earlier
            // index exactly as the full computation would.
            if let Some(d) = kernels::squared_distance_within(c, p, best.1) {
                if d < best.1 {
                    best = (i, d);
                }
            }
        }
        best
    }

    /// The fitted cluster centroids (a contiguous centroid-major slab).
    pub fn centroids(&self) -> &CentroidSlab {
        &self.centroids
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Sum of squared distances of every training point to its centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Cluster assignment of each training instance, in dataset order.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Number of Lloyd iterations the winning restart executed.
    pub fn iterations_run(&self) -> usize {
        self.iterations_run
    }

    /// Assigns a new point to its nearest centroid.
    ///
    /// # Panics
    ///
    /// Panics if `point` has a different dimensionality than the centroids.
    pub fn assign(&self, point: &[f64]) -> usize {
        Self::nearest(&self.centroids, point).0
    }

    /// Distance from `point` to its nearest centroid.
    pub fn distance_to_nearest(&self, point: &[f64]) -> f64 {
        Self::nearest(&self.centroids, point).1.sqrt()
    }

    /// Nearest centroid and the distance to it in one pass — the cache-lookup
    /// hot path of the online classifier, which needs both.
    pub fn assign_with_distance(&self, point: &[f64]) -> (usize, f64) {
        let (cluster, d2) = Self::nearest(&self.centroids, point);
        (cluster, d2.sqrt())
    }

    /// Index of the training instance closest to the centroid of `cluster`,
    /// i.e. the paper's "instance closest to the cluster's centroid" that is
    /// handed to the Tuner.
    ///
    /// Returns `None` if the cluster has no members.
    pub fn medoid_of(&self, data: &Dataset, cluster: usize) -> Option<usize> {
        let centroid = self.centroids.get(cluster)?;
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == cluster)
            .min_by(|(a, _), (b, _)| {
                let da = squared_distance(&data.instances()[*a].features, centroid);
                let db = squared_distance(&data.instances()[*b].features, centroid);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }

    /// Mean silhouette score of the clustering over `data` (higher is better,
    /// in `[-1, 1]`). Returns 0.0 for a single cluster.
    pub fn silhouette(&self, data: &Dataset) -> f64 {
        if self.k() < 2 || data.len() < 2 {
            return 0.0;
        }
        let points: Vec<&[f64]> = data
            .instances()
            .iter()
            .map(|i| i.features.as_slice())
            .collect();
        self.silhouette_from(&pairwise_distances(&points))
    }

    /// [`silhouette`](Self::silhouette) over a precomputed pairwise distance
    /// matrix (row-major `n×n`), so [`fit_auto_k`](Self::fit_auto_k) can
    /// score every candidate `k` against one matrix instead of recomputing
    /// all distances per candidate.
    fn silhouette_from(&self, matrix: &[f64]) -> f64 {
        let n = self.assignments.len();
        if self.k() < 2 || n < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut counted = 0usize;
        for i in 0..n {
            let own = self.assignments[i];
            let mut intra = 0.0;
            let mut intra_n = 0usize;
            let mut inter: Vec<(f64, usize)> = vec![(0.0, 0); self.k()];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = matrix[i * n + j];
                if self.assignments[j] == own {
                    intra += d;
                    intra_n += 1;
                } else {
                    let c = self.assignments[j];
                    inter[c].0 += d;
                    inter[c].1 += 1;
                }
            }
            if intra_n == 0 {
                continue;
            }
            let a = intra / intra_n as f64;
            let b = inter
                .iter()
                .filter(|(_, n)| *n > 0)
                .map(|(s, n)| s / *n as f64)
                .fold(f64::INFINITY, f64::min);
            if !b.is_finite() {
                continue;
            }
            total += (b - a) / a.max(b);
            counted += 1;
        }
        if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    }

    /// Fits k-means for every `k` in `k_range` and returns the model with the
    /// best silhouette score, implementing the paper's "the framework can
    /// automatically determine the number of classes".
    ///
    /// # Errors
    ///
    /// Returns an error if the range is empty or invalid for the dataset.
    pub fn fit_auto_k(
        data: &Dataset,
        k_range: std::ops::RangeInclusive<usize>,
        base: &KMeansConfig,
        seed: u64,
    ) -> Result<Self, MlError> {
        let lo = *k_range.start();
        let hi = *k_range.end();
        if lo == 0 || lo > hi {
            return Err(MlError::InvalidConfig(format!(
                "invalid cluster range {lo}..={hi}"
            )));
        }
        let hi = hi.min(data.len());
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if base.max_iterations == 0 {
            return Err(MlError::InvalidConfig(
                "max_iterations must be at least 1".into(),
            ));
        }
        let points: Vec<&[f64]> = data
            .instances()
            .iter()
            .map(|i| i.features.as_slice())
            .collect();
        let mut scratch = FitScratch::new(points.len(), hi, points[0].len(), &points);
        let matrix = pairwise_distances_from(&points, &scratch.points_t);
        let mut fits: Vec<(f64, KMeans)> = Vec::new();
        for k in lo..=hi {
            let cfg = KMeansConfig { k, ..base.clone() };
            let model = KMeans::fit_with_scratch(&points, &cfg, seed, &mut scratch);
            let score = if k == 1 {
                0.0
            } else {
                model.silhouette_from(&matrix)
            };
            fits.push((score, model));
        }
        // Prefer higher silhouette; among near-ties prefer more clusters.
        // Silhouette is biased toward very coarse clusterings when one cluster
        // sits far from the rest (the peak-hour workload class), while finer
        // classes only cost extra tuning runs — the cheap side of the
        // trade-off §3.4 of the paper describes.
        let best_score = fits
            .iter()
            .map(|(s, _)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        let chosen = fits
            .into_iter()
            .filter(|(s, _)| *s >= best_score - 0.12)
            .max_by_key(|(_, m)| m.k())
            .expect("range validated to be non-empty");
        Ok(chosen.1)
    }
}

/// Row-major `n×n` matrix of pairwise Euclidean distances. Both triangles are
/// filled from one computation per pair; `distance` is exactly symmetric, so
/// consumers see bit-identical values to computing each direction directly.
/// Rows are computed in parallel lanes over a dimension-major copy of the
/// points — each pair's sum still accumulates dimensions in ascending order,
/// so every entry equals `distance(points[i], points[j])` bit-for-bit.
fn pairwise_distances(points: &[&[f64]]) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let dims = points[0].len();
    let mut points_t = vec![0.0f64; n * dims];
    for (i, p) in points.iter().enumerate() {
        for (d, &x) in p.iter().enumerate() {
            points_t[d * n + i] = x;
        }
    }
    pairwise_distances_from(points, &points_t)
}

/// [`pairwise_distances`] over an existing dimension-major copy of the
/// points (e.g. [`FitScratch::points_t`]), avoiding a redundant transpose.
/// Only the `j > i` lanes are accumulated — each pair is computed once.
fn pairwise_distances_from(points: &[&[f64]], points_t: &[f64]) -> Vec<f64> {
    let n = points.len();
    let mut matrix = vec![0.0; n * n];
    let mut row = vec![0.0f64; n];
    for i in 0..n {
        row[i + 1..].fill(0.0);
        for (d, &x) in points[i].iter().enumerate() {
            let lane = &points_t[d * n + i + 1..(d + 1) * n];
            for (acc, &y) in row[i + 1..].iter_mut().zip(lane) {
                let diff = y - x;
                *acc += diff * diff;
            }
        }
        for j in i + 1..n {
            let d = row[j].sqrt();
            matrix[i * n + j] = d;
            matrix[j * n + i] = d;
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f64, f64)], per: usize, spread: f64, seed: u64) -> Dataset {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["x".into(), "y".into()]);
        for &(cx, cy) in centers {
            for _ in 0..per {
                d.push_unlabeled(vec![rng.normal(cx, spread), rng.normal(cy, spread)]);
            }
        }
        d
    }

    #[test]
    fn separates_clear_blobs() {
        let d = blobs(&[(0.0, 0.0), (50.0, 50.0)], 20, 0.5, 1);
        let km = KMeans::fit(
            &d,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            2,
        )
        .unwrap();
        let a = km.assign(&[0.0, 0.0]);
        let b = km.assign(&[50.0, 50.0]);
        assert_ne!(a, b);
        assert!(km.inertia() < 100.0);
    }

    #[test]
    fn rejects_bad_k() {
        let d = blobs(&[(0.0, 0.0)], 3, 0.1, 1);
        assert!(matches!(
            KMeans::fit(
                &d,
                &KMeansConfig {
                    k: 0,
                    ..Default::default()
                },
                1
            ),
            Err(MlError::InvalidK { .. })
        ));
        assert!(matches!(
            KMeans::fit(
                &d,
                &KMeansConfig {
                    k: 10,
                    ..Default::default()
                },
                1
            ),
            Err(MlError::InvalidK { .. })
        ));
    }

    #[test]
    fn rejects_empty_dataset() {
        let d = Dataset::new(vec!["x".into()]);
        assert_eq!(
            KMeans::fit(&d, &KMeansConfig::default(), 1).unwrap_err(),
            MlError::EmptyDataset
        );
    }

    #[test]
    fn assignments_cover_all_points() {
        let d = blobs(&[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 15, 0.3, 3);
        let km = KMeans::fit(
            &d,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
            3,
        )
        .unwrap();
        assert_eq!(km.assignments().len(), d.len());
        assert!(km.assignments().iter().all(|&c| c < 3));
    }

    #[test]
    fn silhouette_prefers_true_k() {
        let d = blobs(
            &[(0.0, 0.0), (30.0, 0.0), (0.0, 30.0), (30.0, 30.0)],
            12,
            0.5,
            4,
        );
        let base = KMeansConfig::default();
        let k2 = KMeans::fit(
            &d,
            &KMeansConfig {
                k: 2,
                ..base.clone()
            },
            4,
        )
        .unwrap();
        let k4 = KMeans::fit(&d, &KMeansConfig { k: 4, ..base }, 4).unwrap();
        assert!(k4.silhouette(&d) > k2.silhouette(&d));
    }

    #[test]
    fn auto_k_finds_the_right_count() {
        let d = blobs(
            &[(0.0, 0.0), (40.0, 0.0), (0.0, 40.0), (40.0, 40.0)],
            10,
            0.4,
            5,
        );
        let model = KMeans::fit_auto_k(&d, 2..=8, &KMeansConfig::default(), 5).unwrap();
        assert_eq!(model.k(), 4);
    }

    #[test]
    fn medoid_is_member_of_cluster() {
        let d = blobs(&[(0.0, 0.0), (20.0, 20.0)], 10, 0.5, 6);
        let km = KMeans::fit(
            &d,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            6,
        )
        .unwrap();
        for c in 0..2 {
            let m = km.medoid_of(&d, c).unwrap();
            assert_eq!(km.assignments()[m], c);
        }
        assert!(km.medoid_of(&d, 99).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = blobs(&[(0.0, 0.0), (10.0, 10.0)], 10, 1.0, 7);
        let a = KMeans::fit(&d, &KMeansConfig::default(), 11).unwrap();
        let b = KMeans::fit(&d, &KMeansConfig::default(), 11).unwrap();
        assert_eq!(a.centroids(), b.centroids());
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn distance_to_nearest_is_small_for_training_points() {
        let d = blobs(&[(5.0, 5.0)], 20, 0.2, 8);
        let km = KMeans::fit(
            &d,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
            8,
        )
        .unwrap();
        assert!(km.distance_to_nearest(&[5.0, 5.0]) < 1.0);
    }

    #[test]
    fn single_cluster_silhouette_is_zero() {
        let d = blobs(&[(0.0, 0.0)], 5, 0.1, 9);
        let km = KMeans::fit(
            &d,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
            9,
        )
        .unwrap();
        assert_eq!(km.silhouette(&d), 0.0);
    }
}
