//! The commit-transport layer: **how** tenant-buffered repository operations
//! reach the shared store, and what consistency tenants observe while they
//! run.
//!
//! The fleet engine used to hard-code one coordination strategy — the
//! bulk-synchronous epoch barrier — inside its run loop. This module turns
//! that strategy into a pluggable [`CommitTransport`]:
//!
//! * [`BspBarrier`] is the classic engine, verbatim: worker threads step
//!   disjoint tenant chunks through an epoch, the barrier drains every
//!   outbox in tenant order, commits one batch per shard, then runs the TTL
//!   sweep. Mid-epoch the store is frozen, so runs are **bit-deterministic**
//!   for any worker count.
//! * [`BoundedStaleness`] frees tenants onto their own threads: a tenant may
//!   run up to `K` epochs ahead of the commit frontier **of its own shard**,
//!   so fast tenants never wait at a barrier for slow ones. Each tenant's
//!   view of the shared repository is **at most `K` epochs stale** (enforced
//!   by blocking on the frontier, measured in [`TransportOutcome`]'s
//!   staleness histograms). With `K = 0` a tenant may not enter an epoch
//!   until every prior epoch its shard can observe is fully committed — no
//!   tenant can observe or miss anything a BSP run would not — so the output
//!   provably **bit-matches** [`BspBarrier`] (property-tested in
//!   `tests/properties.rs` and fuzzed across scenarios in
//!   `tests/differential.rs`). With `K > 0` the store changes underneath
//!   running tenants, trading the bitwise reproducibility of results for
//!   pipeline parallelism; the commit *sequence* itself stays deterministic
//!   (per shard: epoch by epoch, tenant order within each epoch).
//! * [`WorkStealing`] caps the thread count below one-per-tenant: a fixed
//!   pool of workers pulls per-epoch tenant tasks from a shared deque (the
//!   vendored mini `crossbeam-deque`), so a 1000-tenant fleet runs on a
//!   handful of threads instead of a thousand. Consistency is identical to
//!   [`BoundedStaleness`] — same per-shard frontiers, same staleness bound,
//!   same committer — and because tenant stepping, commit order and sweep
//!   times are all independent of which worker executes what, the results
//!   are **invariant to the thread cap** (and `K = 0` bit-matches BSP).
//!
//! Both asynchronous backends share one committer with **per-shard commit
//! frontiers**: a tenant only ever reads and writes the shard its namespace
//! routes to, so a `(shard, epoch)` batch commits — and that shard's TTL
//! sweep runs, at that epoch's timestamp — as soon as all of the epoch's
//! reports *touching the shard* are in, instead of waiting for the whole
//! fleet's slowest shard. On skewed scenarios that shrinks commit latency
//! without weakening any bound a tenant can observe.
//!
//! Epoch reports travel over the vendored mini mpsc channel
//! (`crossbeam-channel`), so swapping in a real channel or a tokio runtime
//! later is a transport-local change. New consistency models (e.g. quorum
//! commits) are one [`CommitTransport`] impl away — the engine only prepares
//! tenants and consumes the [`TransportOutcome`].

use crate::engine::{RunState, SimulationEngine};
use crate::shared_repo::{PendingOp, SharedSignatureRepository};
use crossbeam_deque::{Injector, Stealer, Worker};
use dejavu_baselines::{FixedMax, RightScale};
use dejavu_cloud::ProvisioningController;
use dejavu_core::DejaVuController;
use dejavu_obs::{Event, Recorder};
use dejavu_services::ServiceModel;
use dejavu_simcore::SimTime;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Shared handle to a tenant's buffered operations; the transport drains it
/// at every epoch boundary of that tenant.
pub type Outbox = Arc<Mutex<Vec<PendingOp>>>;

/// One tenant's complete in-flight simulation plus its tenancy window in
/// epochs. Built by the fleet engine, stepped by a transport through a
/// [`TenantHandle`], finalized by the engine.
pub(crate) struct TenantRun {
    pub(crate) engine: SimulationEngine,
    pub(crate) service: Box<dyn ServiceModel>,
    pub(crate) controller: DejaVuController,
    pub(crate) state: RunState,
    pub(crate) fixed: Option<(FixedMax, RunState)>,
    pub(crate) rightscale: Option<(RightScale, RunState)>,
    /// First global epoch in which the tenant steps (its join barrier).
    pub(crate) start_epoch: usize,
    /// Global epoch count at whose barrier the tenant retires, if it leaves.
    pub(crate) stop_epoch: Option<usize>,
    /// Nominal end of the tenancy window: `min(stop, start + trace epochs)`.
    pub(crate) end_epoch: usize,
    /// Epochs since join at which the first `FleetReuse` fired (1-based).
    pub(crate) first_reuse_epoch: Option<usize>,
    /// Epochs this tenant has actually been stepped through.
    pub(crate) active_epochs: usize,
    /// Set at the barrier that retires the tenant; freezes all stepping.
    pub(crate) retired: bool,
    /// The namespace the tenant reads and publishes under. Fixed for the
    /// whole run, so every operation the tenant buffers routes to one shard —
    /// the invariant the per-shard commit frontiers rest on.
    pub(crate) namespace: u64,
    /// The tenant's buffered shared-store operations (None when isolated).
    pub(crate) outbox: Option<Outbox>,
}

/// Steps one run up to (excluding) `epoch_end`.
fn step_until(
    engine: &SimulationEngine,
    service: &dyn ServiceModel,
    state: &mut RunState,
    controller: &mut dyn ProvisioningController,
    epoch_end: SimTime,
) {
    while let Some(t) = state.next_tick_time() {
        if t.as_secs() >= epoch_end.as_secs() {
            break;
        }
        engine.step(state, service, controller);
    }
}

impl TenantRun {
    /// Steps every in-flight run of this tenant up to the barrier ending
    /// global epoch `epoch` (0-based), honouring the tenancy window. Times
    /// handed to the tenant are **local** (zero at its join barrier), so a
    /// late joiner steps exactly like a tenant that started a fresh fleet.
    fn step_epoch(&mut self, epoch: usize, epoch_secs: f64) {
        if self.retired {
            return;
        }
        let end_epoch = epoch + 1;
        if end_epoch <= self.start_epoch {
            return; // not admitted yet
        }
        let mut local_epochs = end_epoch - self.start_epoch;
        if let Some(stop) = self.stop_epoch {
            let cap = stop.saturating_sub(self.start_epoch);
            if cap == 0 {
                return;
            }
            local_epochs = local_epochs.min(cap);
        }
        if local_epochs <= self.active_epochs {
            return; // already stepped past its retirement barrier
        }
        self.active_epochs = local_epochs;
        let epoch_end = SimTime::from_secs(epoch_secs * local_epochs as f64);
        let service = self.service.as_ref();
        step_until(
            &self.engine,
            service,
            &mut self.state,
            &mut self.controller,
            epoch_end,
        );
        if let Some((controller, state)) = &mut self.fixed {
            step_until(&self.engine, service, state, controller, epoch_end);
        }
        if let Some((controller, state)) = &mut self.rightscale {
            step_until(&self.engine, service, state, controller, epoch_end);
        }
    }

    /// Whether the tenant retires at the barrier ending global epoch `epoch`.
    fn retires_at(&self, epoch: usize) -> bool {
        let end_epoch = epoch + 1;
        end_epoch > self.start_epoch
            && (self.state.is_done() || self.stop_epoch.is_some_and(|stop| end_epoch >= stop))
    }
}

/// A transport's per-tenant handle: the only surface through which a backend
/// steps a tenant, drains its outbox and keeps its convergence bookkeeping.
/// `Send`, so backends can move tenants onto worker threads.
pub struct TenantHandle<'a> {
    index: usize,
    run: &'a mut TenantRun,
}

impl TenantHandle<'_> {
    /// The tenant's position in the scenario (also its commit order).
    pub fn index(&self) -> usize {
        self.index
    }

    /// First global epoch in which the tenant steps.
    pub fn start_epoch(&self) -> usize {
        self.run.start_epoch
    }

    /// Nominal end of the tenancy window (exclusive global epoch).
    pub fn end_epoch(&self) -> usize {
        self.run.end_epoch
    }

    /// Whether the tenant has been retired by a previous barrier.
    pub fn retired(&self) -> bool {
        self.run.retired
    }

    /// The namespace the tenant reads and publishes under. Every operation
    /// the tenant buffers touches this namespace — and therefore exactly one
    /// shard — which is what lets a transport commit per-shard batches
    /// without changing anything any tenant can observe.
    pub fn namespace(&self) -> u64 {
        self.run.namespace
    }

    /// Steps the tenant (and its ride-along baselines) through global epoch
    /// `epoch`. A retired or not-yet-admitted tenant is a no-op.
    pub fn step_epoch(&mut self, epoch: usize, ctx: &FleetContext<'_>) {
        self.run.step_epoch(epoch, ctx.epoch_secs);
    }

    /// Takes every operation the tenant buffered since the last drain.
    pub fn drain_outbox(&mut self) -> Vec<PendingOp> {
        match &self.run.outbox {
            Some(outbox) => std::mem::take(&mut *outbox.lock().expect("tenant outbox poisoned")),
            None => Vec::new(),
        }
    }

    /// The tenant's cumulative repository `(hits, misses)`.
    pub fn repo_stats(&self) -> (u64, u64) {
        let stats = self.run.controller.stats();
        (stats.repository.hits, stats.repository.misses)
    }

    /// Records the epoch of the tenant's first `FleetReuse`, if it just
    /// happened — the newcomer-convergence metric.
    pub fn observe_reuse(&mut self, epoch: usize) {
        if self.run.first_reuse_epoch.is_none()
            && epoch + 1 > self.run.start_epoch
            && self.run.controller.stats().fleet_reuses > 0
        {
            self.run.first_reuse_epoch = Some(epoch + 1 - self.run.start_epoch);
        }
    }

    /// Whether the tenant retires at the barrier ending `epoch`.
    pub fn retires_at(&self, epoch: usize) -> bool {
        self.run.retires_at(epoch)
    }

    /// Retires the tenant: all subsequent stepping becomes a no-op and its
    /// bookkeeping freezes, exactly as when the barrier engine dropped
    /// retired tenants from its run set.
    pub fn retire(&mut self) {
        self.run.retired = true;
    }
}

/// The shared, thread-safe side of a fleet run a transport commits through.
#[derive(Clone, Copy)]
pub struct FleetContext<'a> {
    shared: &'a SharedSignatureRepository,
    epochs: usize,
    epoch_secs: f64,
    origin_secs: f64,
    workers: usize,
    recorder: &'a Recorder,
}

impl FleetContext<'_> {
    /// The fleet horizon in epochs.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Length of one epoch in simulated seconds.
    pub fn epoch_secs(&self) -> f64 {
        self.epoch_secs
    }

    /// Worker threads the engine was configured with (advisory: a transport
    /// may use its own threading model).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The fleet flight recorder (disabled by default — every probe on a
    /// disabled recorder folds to a null check, so transports can instrument
    /// unconditionally).
    pub fn recorder(&self) -> &Recorder {
        self.recorder
    }

    /// Applies one epoch's operations (in the given order) through the
    /// shared repository's batched commit path — one write lock per touched
    /// shard. Returns one applied-flag per operation.
    pub fn commit(&self, ops: &[PendingOp]) -> Vec<bool> {
        self.shared.apply_batch(ops)
    }

    /// Runs the TTL sweep for the barrier ending global epoch `epoch`.
    /// Returns the number of entries reclaimed.
    pub fn sweep(&self, epoch: usize) -> u64 {
        self.shared.evict_stale(SimTime::from_secs(
            self.origin_secs + self.epoch_secs * (epoch + 1) as f64,
        ))
    }

    /// Number of lock-striped shards in the shared repository.
    pub fn shard_count(&self) -> usize {
        self.shared.shard_count()
    }

    /// The shard `namespace` routes to.
    pub fn shard_of(&self, namespace: u64) -> usize {
        self.shared.shard_index(namespace)
    }

    /// Runs the TTL sweep of a single shard for the barrier ending global
    /// epoch `epoch` — the frontier-aware sweep of the per-shard committer:
    /// a shard whose batch commits ahead of the fleet is swept at **its own**
    /// epoch's timestamp, so a deferred-stale entry BSP would have reclaimed
    /// can never resurface in a later commit of that shard.
    /// Returns the number of entries reclaimed.
    pub fn sweep_shard(&self, shard: usize, epoch: usize) -> u64 {
        self.shared.evict_stale_shard(
            shard,
            SimTime::from_secs(self.origin_secs + self.epoch_secs * (epoch + 1) as f64),
        )
    }
}

/// Everything a transport needs to drive one fleet run: the tenants and the
/// shared-store context. Built by the fleet engine.
pub struct FleetHarness<'a> {
    pub(crate) runs: &'a mut [TenantRun],
    pub(crate) shared: &'a SharedSignatureRepository,
    pub(crate) epochs: usize,
    pub(crate) epoch_secs: f64,
    pub(crate) origin_secs: f64,
    pub(crate) workers: usize,
    pub(crate) recorder: &'a Recorder,
}

impl FleetHarness<'_> {
    /// Splits the harness into the shared context and one handle per tenant,
    /// so a backend can distribute tenants across threads.
    pub fn split(&mut self) -> (FleetContext<'_>, Vec<TenantHandle<'_>>) {
        let ctx = FleetContext {
            shared: self.shared,
            epochs: self.epochs,
            epoch_secs: self.epoch_secs,
            origin_secs: self.origin_secs,
            workers: self.workers,
            recorder: self.recorder,
        };
        let handles = self
            .runs
            .iter_mut()
            .enumerate()
            .map(|(index, run)| TenantHandle { index, run })
            .collect();
        (ctx, handles)
    }
}

/// Histogram over observed staleness values (in epochs).
///
/// An alias of the shared exact-count histogram from `dejavu-obs` — the
/// hand-rolled implementation that used to live here migrated into the
/// flight-recorder crate so the transport layer and the obs report agree on
/// one set of summary semantics (`counts`/`total`/`max`/`mean`).
pub use dejavu_obs::ExactHistogram as StalenessHistogram;

/// What a transport reports about its own behaviour: which backend ran, how
/// stale tenant views were, and how stale the views serving fleet reuses
/// were. Carried into [`crate::FleetReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportSummary {
    /// Backend label (`"bsp"`, `"async(staleness=K)"`, …).
    pub name: String,
    /// Observed view staleness, one observation per tenant-epoch actually
    /// stepped: how many epochs the commit frontier trailed the tenant when
    /// it entered the epoch. All-zero under [`BspBarrier`].
    pub view_staleness: StalenessHistogram,
    /// Reuse latency: for every committed cross-tenant hit, the view
    /// staleness of the epoch that produced it — how fresh the shared
    /// knowledge serving reuses actually was.
    pub reuse_staleness: StalenessHistogram,
}

impl TransportSummary {
    /// The summary of a barrier run that never left epoch lock-step (also the
    /// placeholder for hand-built reports).
    pub fn bsp() -> Self {
        TransportSummary {
            name: "bsp".to_string(),
            view_staleness: StalenessHistogram::default(),
            reuse_staleness: StalenessHistogram::default(),
        }
    }
}

/// Everything a transport hands back to the engine after driving a fleet.
#[derive(Debug, Clone)]
pub struct TransportOutcome {
    /// Transport self-telemetry (label + staleness histograms).
    pub summary: TransportSummary,
    /// Fleet-wide cumulative repository hit rate after each epoch.
    pub hit_rate_curve: Vec<f64>,
    /// Per-tenant committed cross-tenant hits, in tenant order.
    pub cross_tenant_hits: Vec<u64>,
}

impl TransportOutcome {
    fn new(name: String, tenants: usize) -> Self {
        TransportOutcome {
            summary: TransportSummary {
                name,
                view_staleness: StalenessHistogram::default(),
                reuse_staleness: StalenessHistogram::default(),
            },
            hit_rate_curve: Vec::new(),
            cross_tenant_hits: vec![0; tenants],
        }
    }
}

/// A commit transport: the strategy that schedules tenant stepping and moves
/// buffered operations into the shared repository.
///
/// Implementations must commit each epoch's operations **in tenant order**
/// (ties in the scenario's commit sequence are what keep shard-level results
/// reproducible) and run the TTL sweep once per epoch; beyond that they are
/// free to choose any consistency model between tenants and the store.
pub trait CommitTransport: Send + Sync {
    /// Label recorded in reports and benchmarks.
    fn name(&self) -> String;

    /// Drives every tenant from its join barrier to its retirement,
    /// committing outboxes along the way.
    fn drive(&self, harness: &mut FleetHarness<'_>) -> TransportOutcome;
}

/// Which transport a fleet run uses (the cloneable configuration surface;
/// [`TransportConfig::backend`] materializes the backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportConfig {
    /// The lock-step BSP epoch barrier: bit-deterministic for any worker
    /// count. The default.
    #[default]
    Bsp,
    /// Free-running tenant threads observing the shared repository at most
    /// `staleness` epochs stale. `staleness = 0` bit-matches
    /// [`TransportConfig::Bsp`]; larger values trade bitwise result
    /// reproducibility for pipeline parallelism.
    BoundedStaleness {
        /// Maximum number of epochs a tenant's view may trail its shard's
        /// commit frontier.
        staleness: usize,
    },
    /// A fixed pool of `threads` workers pulls per-epoch tenant tasks from a
    /// shared work-stealing deque — the bounded-staleness consistency model
    /// without one thread per tenant, so 1000+-tenant fleets run on small
    /// hosts. Results are invariant to the thread cap; `staleness = 0`
    /// bit-matches [`TransportConfig::Bsp`].
    WorkStealing {
        /// Worker threads in the pool (clamped to `1..=tenants`).
        threads: usize,
        /// Maximum number of epochs a tenant's view may trail its shard's
        /// commit frontier.
        staleness: usize,
    },
}

impl TransportConfig {
    /// Materializes the configured backend.
    pub fn backend(self) -> Box<dyn CommitTransport> {
        match self {
            TransportConfig::Bsp => Box::new(BspBarrier),
            TransportConfig::BoundedStaleness { staleness } => {
                Box::new(BoundedStaleness { staleness })
            }
            TransportConfig::WorkStealing { threads, staleness } => {
                Box::new(WorkStealing { threads, staleness })
            }
        }
    }

    /// Parses a CLI transport choice (the `fleet` experiment's
    /// `--transport`) into a configuration — the typed front door, so an
    /// unknown backend name is a proper error listing the valid choices
    /// instead of a panic, and extending the backend set cannot leave a
    /// stale catch-all match arm behind. `threads` and `staleness` carry
    /// the values of `--threads` / `--staleness`; backends that do not use
    /// them ignore them.
    pub fn parse(backend: &str, threads: usize, staleness: usize) -> Result<Self, String> {
        match backend {
            "bsp" => Ok(TransportConfig::Bsp),
            "async" => Ok(TransportConfig::BoundedStaleness { staleness }),
            "steal" => Ok(TransportConfig::WorkStealing { threads, staleness }),
            other => Err(format!(
                "unknown transport '{other}': valid backends are 'bsp' (lock-step epoch \
                 barrier), 'async' (bounded staleness, one thread per tenant; --staleness K) \
                 and 'steal' (work-stealing pool; --threads N --staleness K)"
            )),
        }
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// Commits one epoch's operations and accounts applied cross-tenant hits.
/// `op_tenants[i]`/`op_staleness[i]` describe which tenant buffered `ops[i]`
/// and how stale its view was during that epoch.
fn commit_epoch(
    ctx: &FleetContext<'_>,
    ops: &[PendingOp],
    op_tenants: &[usize],
    op_staleness: &[usize],
    out: &mut TransportOutcome,
) {
    if ops.is_empty() {
        return;
    }
    let recorder = ctx.recorder();
    let started = recorder.start();
    let applied = ctx.commit(ops);
    recorder.observe(started, |m| &m.commit_batch_ns);
    recorder.with(|m| m.commit_batch_ops.record(ops.len() as u64));
    for (((op, &tenant), &staleness), applied) in
        ops.iter().zip(op_tenants).zip(op_staleness).zip(applied)
    {
        // A hit only counts if the store still held the entry at commit time
        // (an earlier publish in the same barrier can have re-anchored the
        // namespace), keeping the engine-side and store-side cross-tenant
        // counters consistent.
        if applied && matches!(op, PendingOp::RecordHit { .. }) {
            out.cross_tenant_hits[tenant] += 1;
            out.summary.reuse_staleness.record(staleness);
        }
    }
}

/// The classic bulk-synchronous barrier transport.
///
/// Within an epoch each worker thread steps a disjoint chunk of tenants,
/// reading the shared repository through read-only, epoch-frozen snapshots
/// while buffering writes in per-tenant outboxes. At the epoch barrier the
/// outboxes are drained **in tenant order**, applied through one batched
/// commit per shard, and the TTL sweep runs. Mid-epoch the shared store never
/// changes and commits have a fixed order, so the fleet result is a pure
/// function of the scenario — it does not depend on thread count or OS
/// scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct BspBarrier;

impl CommitTransport for BspBarrier {
    fn name(&self) -> String {
        "bsp".to_string()
    }

    fn drive(&self, harness: &mut FleetHarness<'_>) -> TransportOutcome {
        let (ctx, mut handles) = harness.split();
        let mut out = TransportOutcome::new(self.name(), handles.len());
        let chunk_size = handles.len().div_ceil(ctx.workers.max(1)).max(1);
        let recorder = ctx.recorder();
        for epoch in 0..ctx.epochs {
            recorder.event(|| Event::EpochBegin {
                epoch: epoch as u64,
            });
            let epoch_started = recorder.start();
            std::thread::scope(|scope| {
                for chunk in handles.chunks_mut(chunk_size) {
                    scope.spawn(move || {
                        for handle in chunk {
                            handle.step_epoch(epoch, &ctx);
                        }
                    });
                }
            });
            // Epoch barrier: publish buffered writes in tenant order, then
            // age out stale entries. This is the only place the shared store
            // changes under this transport.
            let mut ops: Vec<PendingOp> = Vec::new();
            let mut op_tenants: Vec<usize> = Vec::new();
            for handle in &mut handles {
                let drained = handle.drain_outbox();
                op_tenants.resize(op_tenants.len() + drained.len(), handle.index());
                ops.extend(drained);
            }
            let op_staleness = vec![0usize; ops.len()];
            commit_epoch(&ctx, &ops, &op_tenants, &op_staleness, &mut out);
            let reclaimed = ctx.sweep(epoch);
            recorder.with(|m| m.sweep_reclaimed.add(reclaimed));

            // Convergence bookkeeping, then barrier-aligned retirement.
            let mut hits = 0u64;
            let mut misses = 0u64;
            for handle in &mut handles {
                let (h, m) = handle.repo_stats();
                hits += h;
                misses += m;
                if !handle.retired() {
                    // Mirror the bounded-staleness tenant loop exactly: one
                    // observation per epoch inside the tenancy window (a
                    // zero-length window — start == stop — steps nothing
                    // and records nothing).
                    if epoch >= handle.start_epoch() && epoch < handle.end_epoch() {
                        out.summary.view_staleness.record(0);
                    }
                    handle.observe_reuse(epoch);
                    if handle.retires_at(epoch) {
                        handle.retire();
                    }
                }
            }
            out.hit_rate_curve.push(hit_rate(hits, misses));
            recorder.observe(epoch_started, |m| &m.epoch_ns);
            recorder.event(|| Event::EpochCommit {
                epoch: epoch as u64,
            });
        }
        out
    }
}

/// The per-shard commit frontiers: how many epochs each shard has fully
/// committed (batch applied, TTL sweep run). A tenant only ever reads and
/// writes the shard its namespace routes to, so its staleness bound is
/// enforced against **that shard's** frontier rather than a fleet-wide one —
/// a tenant behind a fast shard never waits for a slow shard it cannot
/// observe.
///
/// Tenant threads of [`BoundedStaleness`] block in [`wait_within`]
/// (woken by [`advance`]); the [`WorkStealing`] scheduler must never block a
/// pool worker on a tenant's behalf, so it parks the tenant as data through
/// [`enter_or_park`] and re-injects whatever [`advance`] releases. The
/// frontiers can be **poisoned** when the committer unwinds: blocked tenants
/// and pool workers must wake up and die rather than sleep forever, so the
/// original panic — not a deadlock — reaches the caller.
///
/// [`wait_within`]: ShardFrontiers::wait_within
/// [`advance`]: ShardFrontiers::advance
/// [`enter_or_park`]: ShardFrontiers::enter_or_park
struct ShardFrontiers {
    /// Maximum number of epochs a tenant may lead its shard's frontier.
    bound: usize,
    state: Mutex<FrontierState>,
    advanced: Condvar,
}

struct FrontierState {
    /// Per shard: the number of fully committed epochs.
    committed: Vec<usize>,
    /// Per shard: parked `(enter_epoch, tenant)` pairs awaiting `advance`.
    parked: Vec<Vec<(usize, usize)>>,
    poisoned: bool,
}

impl ShardFrontiers {
    fn new(shards: usize, bound: usize) -> Self {
        ShardFrontiers {
            bound,
            state: Mutex::new(FrontierState {
                committed: vec![0; shards],
                parked: vec![Vec::new(); shards],
                poisoned: false,
            }),
            advanced: Condvar::new(),
        }
    }

    /// Blocks until entering `epoch` would leave the caller at most the
    /// staleness bound ahead of `shard`'s committed frontier; returns the
    /// observed staleness (how many epochs the frontier trailed the caller
    /// at admission). Panics if the frontiers were poisoned while waiting.
    fn wait_within(&self, shard: usize, epoch: usize) -> usize {
        let mut state = self.state.lock().expect("frontier poisoned");
        loop {
            assert!(
                !state.poisoned,
                "transport committer unwound; tenant aborting"
            );
            if epoch <= state.committed[shard] + self.bound {
                return epoch.saturating_sub(state.committed[shard]);
            }
            state = self.advanced.wait(state).expect("frontier poisoned");
        }
    }

    /// Non-blocking admission for the work-stealing scheduler: returns the
    /// observed staleness if the tenant may enter `epoch` now, otherwise
    /// parks `(epoch, tenant)` — to be handed back by [`advance`] once the
    /// shard catches up — and returns `None`. The caller must have returned
    /// the tenant's task to its slot *before* calling, so a release that
    /// races the answer finds the tenant where the next worker will look.
    ///
    /// [`advance`]: ShardFrontiers::advance
    fn enter_or_park(&self, shard: usize, epoch: usize, tenant: usize) -> Option<usize> {
        let mut state = self.state.lock().expect("frontier poisoned");
        assert!(
            !state.poisoned,
            "transport committer unwound; worker aborting"
        );
        if epoch <= state.committed[shard] + self.bound {
            Some(epoch.saturating_sub(state.committed[shard]))
        } else {
            state.parked[shard].push((epoch, tenant));
            None
        }
    }

    /// Advances `shard`'s frontier to `committed` epochs, wakes every
    /// blocking waiter, and returns the parked tenants the new frontier
    /// admits (for the caller to reschedule).
    fn advance(&self, shard: usize, committed: usize) -> Vec<usize> {
        let mut state = self.state.lock().expect("frontier poisoned");
        state.committed[shard] = committed;
        let bound = self.bound;
        let parked = &mut state.parked[shard];
        let mut released = Vec::new();
        let mut i = 0;
        while i < parked.len() {
            if parked[i].0 <= committed + bound {
                released.push(parked.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        drop(state);
        self.advanced.notify_all();
        released
    }

    /// Marks the frontiers dead and wakes every waiter (see
    /// [`PoisonOnDrop`]).
    fn poison(&self) {
        self.state.lock().expect("frontier poisoned").poisoned = true;
        self.advanced.notify_all();
    }

    fn poisoned(&self) -> bool {
        // A waiter that panics while holding the guard poisons the std mutex
        // itself; either way, the frontiers are dead.
        match self.state.lock() {
            Ok(state) => state.poisoned,
            Err(_) => true,
        }
    }
}

/// Wakes idle work-stealing workers when tasks may have (re)appeared. A
/// worker reads the generation **before** scanning the queues and only
/// sleeps if the generation is still unchanged, so a task injected after an
/// empty scan can never be missed: either the scan saw it, or the ring bumps
/// the generation and the sleep returns immediately.
#[derive(Default)]
struct Doorbell {
    generation: Mutex<u64>,
    bell: Condvar,
}

impl Doorbell {
    fn generation(&self) -> u64 {
        *self.generation.lock().expect("doorbell poisoned")
    }

    fn ring(&self) {
        *self.generation.lock().expect("doorbell poisoned") += 1;
        self.bell.notify_all();
    }

    /// Sleeps until the generation moves past `seen`.
    fn wait_beyond(&self, seen: u64) {
        let mut generation = self.generation.lock().expect("doorbell poisoned");
        while *generation == seen {
            generation = self.bell.wait(generation).expect("doorbell poisoned");
        }
    }
}

/// Poisons the frontiers if dropped while armed — the committer holds one so
/// that its own unwind (a lost report, a panic surfaced by a tenant)
/// releases every tenant blocked in [`ShardFrontiers::wait_within`] and
/// every idle pool worker (via the doorbell) before `thread::scope` starts
/// joining; without it, a committer panic would deadlock the scope.
struct PoisonOnDrop<'a> {
    frontiers: &'a ShardFrontiers,
    doorbell: Option<&'a Doorbell>,
    armed: bool,
}

impl Drop for PoisonOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.frontiers.poison();
            if let Some(doorbell) = self.doorbell {
                doorbell.ring();
            }
        }
    }
}

/// One tenant's end-of-epoch report to the committer.
struct EpochReport {
    tenant: usize,
    epoch: usize,
    /// Frontier lag observed when the tenant entered the epoch.
    staleness: usize,
    ops: Vec<PendingOp>,
    /// Cumulative repository stats after this epoch.
    hits: u64,
    misses: u64,
    /// This is the tenant's final report (retirement or window end).
    last: bool,
    /// The tenant thread unwound mid-epoch (sent from its drop guard): the
    /// committer must poison the frontier and re-panic instead of waiting
    /// forever for reports that will never come.
    aborted: bool,
}

/// Sends an `aborted` report if a tenant thread unwinds before completing its
/// window, so the committer learns about the death instead of deadlocking on
/// the missing epoch reports; `disarm` marks a clean exit.
struct AbortOnDrop<'a> {
    tx: &'a crossbeam_channel::Sender<EpochReport>,
    tenant: usize,
    armed: bool,
}

impl AbortOnDrop<'_> {
    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for AbortOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            // A failed send means the committer is already gone; nothing to
            // notify.
            let _ = self.tx.send(EpochReport {
                tenant: self.tenant,
                epoch: 0,
                staleness: 0,
                ops: Vec::new(),
                hits: 0,
                misses: 0,
                last: true,
                aborted: true,
            });
        }
    }
}

/// The shared committer of the asynchronous transports, with **per-shard
/// commit frontiers**: epoch reports arrive over the channel, and a
/// `(shard, epoch)` batch commits — in tenant order, followed by the
/// frontier-aware TTL sweep of exactly that shard at that epoch's timestamp
/// — as soon as **all of the epoch's reports touching the shard** are in.
/// A shard therefore never waits for the fleet's slowest shard, which is
/// what shrinks commit latency on skewed scenarios; and because a tenant
/// only ever observes its own shard, no consistency bound weakens.
///
/// Fleet-wide bookkeeping (the hit-rate curve) folds once **every** shard
/// has passed an epoch, in epoch order, so it is identical to a whole-epoch
/// committer's. Everything the committer does depends only on report
/// contents and tenant order — never on arrival order across shards — so
/// results are invariant to thread scheduling and to the worker cap.
///
/// `on_release` receives the tenants a frontier advance un-parked; the
/// work-stealing scheduler re-injects them, the bounded-staleness transport
/// (whose tenants block in [`ShardFrontiers::wait_within`] instead of
/// parking) passes a no-op.
fn run_committer(
    ctx: &FleetContext<'_>,
    rx: &crossbeam_channel::Receiver<EpochReport>,
    windows: &[(usize, usize)],
    tenant_shard: &[usize],
    frontiers: &ShardFrontiers,
    out: &mut TransportOutcome,
    mut on_release: impl FnMut(Vec<usize>),
) {
    let recorder = ctx.recorder();
    let epochs = ctx.epochs();
    let shards = ctx.shard_count();
    // How many tenants must report each (epoch, shard) before that shard's
    // batch can commit, from the nominal tenancy windows; adjusted when a
    // tenant's `last` report arrives earlier than its nominal end.
    let mut expected = vec![vec![0usize; shards]; epochs];
    for (tenant, &(start, end)) in windows.iter().enumerate() {
        for slot in &mut expected[start.min(epochs)..end.min(epochs)] {
            slot[tenant_shard[tenant]] += 1;
        }
    }
    let mut received = vec![vec![0usize; shards]; epochs];
    let mut pending: Vec<Vec<Vec<EpochReport>>> = (0..epochs)
        .map(|_| (0..shards).map(|_| Vec::new()).collect())
        .collect();
    // Per-epoch cumulative tenant stats, folded into `cached` (and the
    // hit-rate curve) once the whole epoch has committed across shards.
    let mut epoch_stats: Vec<Vec<(usize, u64, u64)>> = vec![Vec::new(); epochs];
    let mut cached: Vec<(u64, u64)> = vec![(0, 0); windows.len()];
    // Per shard: the next epoch whose batch has not committed yet.
    let mut shard_next = vec![0usize; shards];
    let mut completed = 0usize;
    // Fold-to-fold wall time per fleet-wide epoch (the async analogue of the
    // barrier's per-epoch wall clock).
    let mut fold_started = recorder.start();
    // Shards whose readiness may have changed. Seeded with every shard:
    // epochs expecting no reports from a shard (no tenant routes there, or
    // everyone already retired) commit empty batches immediately — their TTL
    // sweeps still run on schedule, exactly as the whole-fleet barrier's
    // sweep would have covered them.
    let mut work: Vec<usize> = (0..shards).collect();
    loop {
        // Drain the shard worklist: commit every ready (shard, epoch) batch.
        while let Some(shard) = work.pop() {
            while shard_next[shard] < epochs
                && received[shard_next[shard]][shard] == expected[shard_next[shard]][shard]
            {
                let epoch = shard_next[shard];
                let mut batch = std::mem::take(&mut pending[epoch][shard]);
                batch.sort_by_key(|r| r.tenant);
                let mut ops: Vec<PendingOp> = Vec::new();
                let mut op_tenants: Vec<usize> = Vec::new();
                let mut op_staleness: Vec<usize> = Vec::new();
                for report in &mut batch {
                    let drained = std::mem::take(&mut report.ops);
                    op_tenants.resize(op_tenants.len() + drained.len(), report.tenant);
                    op_staleness.resize(op_staleness.len() + drained.len(), report.staleness);
                    ops.extend(drained);
                }
                commit_epoch(ctx, &ops, &op_tenants, &op_staleness, out);
                recorder.event(|| Event::ShardCommit {
                    shard: shard as u64,
                    epoch: epoch as u64,
                    ops: ops.len() as u64,
                });
                let reclaimed = ctx.sweep_shard(shard, epoch);
                recorder.with(|m| m.sweep_reclaimed.add(reclaimed));
                recorder.event(|| Event::TtlSweep {
                    shard: shard as u64,
                    epoch: epoch as u64,
                    reclaimed,
                });
                for report in &batch {
                    epoch_stats[epoch].push((report.tenant, report.hits, report.misses));
                    out.summary.view_staleness.record(report.staleness);
                }
                shard_next[shard] = epoch + 1;
                if recorder.is_enabled() {
                    // Frontier lag: how far this shard's frontier trails the
                    // fleet's most advanced shard after this commit.
                    let lead = shard_next.iter().copied().max().unwrap_or(0);
                    let lag = (lead - shard_next[shard]) as u64;
                    recorder.with(|m| m.shard_lag.observe(shard, lag));
                    recorder.event(|| Event::FrontierAdvance {
                        shard: shard as u64,
                        epoch: epoch as u64,
                        lag,
                    });
                }
                // Advancing after the sweep keeps `staleness = 0` exact: no
                // tenant enters its shard's next epoch while that shard
                // still moves.
                on_release(frontiers.advance(shard, epoch + 1));
            }
        }
        // Fold fully committed epochs into the fleet-wide curve, in order.
        while completed < epochs && shard_next.iter().all(|&next| next > completed) {
            for &(tenant, hits, misses) in &epoch_stats[completed] {
                cached[tenant] = (hits, misses);
            }
            let hits: u64 = cached.iter().map(|&(h, _)| h).sum();
            let misses: u64 = cached.iter().map(|&(_, m)| m).sum();
            out.hit_rate_curve.push(hit_rate(hits, misses));
            recorder.observe(fold_started, |m| &m.epoch_ns);
            fold_started = recorder.start();
            recorder.event(|| Event::EpochCommit {
                epoch: completed as u64,
            });
            completed += 1;
        }
        if completed >= epochs {
            return;
        }
        let Ok(report) = rx.recv() else {
            panic!("async transport lost epoch reports ({completed} of {epochs} epochs committed)");
        };
        assert!(
            !report.aborted,
            "tenant {} panicked mid-run; aborting the fleet",
            report.tenant
        );
        let shard = tenant_shard[report.tenant];
        if report.last {
            // The tenant retired before its nominal window end: its shard's
            // later epochs no longer wait for it.
            let nominal_end = windows[report.tenant].1.min(epochs);
            for slot in &mut expected[report.epoch + 1..nominal_end] {
                slot[shard] -= 1;
            }
        }
        received[report.epoch][shard] += 1;
        pending[report.epoch][shard].push(report);
        work.push(shard);
    }
}

/// The asynchronous bounded-staleness transport.
///
/// Every tenant runs on its own thread, free to advance up to
/// [`staleness`](Self::staleness) epochs beyond **its shard's** commit
/// frontier; the committer ([`run_committer`]) assembles each shard's epoch
/// reports (arriving over the vendored mini mpsc channel), applies them in
/// tenant order, runs that shard's TTL sweep and advances its frontier.
/// Views are therefore never more than `staleness` epochs stale, and with
/// `staleness = 0` the schedule collapses to the BSP barrier per shard: no
/// tenant may enter an epoch before every prior epoch of the only shard it
/// can observe committed, so the store is frozen while anyone reads it and
/// the run bit-matches [`BspBarrier`].
#[derive(Debug, Clone, Copy)]
pub struct BoundedStaleness {
    /// Maximum number of epochs a tenant's view may trail its own position.
    pub staleness: usize,
}

impl CommitTransport for BoundedStaleness {
    fn name(&self) -> String {
        format!("async(staleness={})", self.staleness)
    }

    fn drive(&self, harness: &mut FleetHarness<'_>) -> TransportOutcome {
        let (ctx, handles) = harness.split();
        let tenant_count = handles.len();
        let mut out = TransportOutcome::new(self.name(), tenant_count);
        if ctx.epochs() == 0 || tenant_count == 0 {
            return out;
        }
        let windows: Vec<(usize, usize)> = handles
            .iter()
            .map(|h| (h.start_epoch(), h.end_epoch()))
            .collect();
        let tenant_shard: Vec<usize> = handles
            .iter()
            .map(|h| ctx.shard_of(h.namespace()))
            .collect();
        let frontiers = ShardFrontiers::new(ctx.shard_count(), self.staleness);
        let (tx, rx) = crossbeam_channel::unbounded::<EpochReport>();
        std::thread::scope(|scope| {
            for mut handle in handles {
                let tx = tx.clone();
                let frontiers = &frontiers;
                let ctx = &ctx;
                let shard = tenant_shard[handle.index()];
                scope.spawn(move || {
                    // If this thread unwinds (a poisoned outbox, a panicking
                    // service model), the guard tells the committer, which
                    // poisons the frontiers and re-panics — the failure
                    // surfaces instead of deadlocking the whole fleet.
                    let mut guard = AbortOnDrop {
                        tx: &tx,
                        tenant: handle.index(),
                        armed: true,
                    };
                    let (start, end) = (handle.start_epoch(), handle.end_epoch());
                    for epoch in start..end {
                        let staleness = frontiers.wait_within(shard, epoch);
                        handle.step_epoch(epoch, ctx);
                        handle.observe_reuse(epoch);
                        let ops = handle.drain_outbox();
                        let retiring = handle.retires_at(epoch);
                        if retiring {
                            handle.retire();
                        }
                        let (hits, misses) = handle.repo_stats();
                        let last = retiring || epoch + 1 == end;
                        let report = EpochReport {
                            tenant: handle.index(),
                            epoch,
                            staleness,
                            ops,
                            hits,
                            misses,
                            last,
                            aborted: false,
                        };
                        if tx.send(report).is_err() || last {
                            break;
                        }
                    }
                    guard.disarm();
                });
            }
            drop(tx);

            // If the committer unwinds for any reason, the guard poisons the
            // frontiers first, so blocked tenant threads die (and the scope
            // joins) instead of sleeping forever under a panic.
            let mut poison_guard = PoisonOnDrop {
                frontiers: &frontiers,
                doorbell: None,
                armed: true,
            };
            run_committer(
                &ctx,
                &rx,
                &windows,
                &tenant_shard,
                &frontiers,
                &mut out,
                |_released| {},
            );
            poison_guard.armed = false;
        });
        out
    }
}

/// One tenant's schedulable state under [`WorkStealing`]: its handle plus
/// the next epoch it will step. Lives in the tenant's slot whenever the
/// tenant is queued (injector or a worker deque) or parked on a frontier; a
/// worker takes it out only to run one epoch.
struct TenantTask<'a> {
    handle: TenantHandle<'a>,
    next_epoch: usize,
}

/// Everything a pool worker shares with its peers and the committer.
struct StealPool<'a, 'h> {
    ctx: &'a FleetContext<'h>,
    frontiers: &'a ShardFrontiers,
    doorbell: &'a Doorbell,
    injector: &'a Injector<usize>,
    stealers: &'a [Stealer<usize>],
    slots: &'a [Mutex<Option<TenantTask<'h>>>],
    windows: &'a [(usize, usize)],
    tenant_shard: &'a [usize],
    /// Tenants that have not sent their `last` report yet; the pool drains
    /// when it reaches zero.
    remaining: &'a AtomicUsize,
}

impl<'h> StealPool<'_, 'h> {
    /// One worker's scheduling loop: pop the local deque, then steal from
    /// the shared injector (batch) or a peer's deque; run the claimed
    /// tenant's next epoch; sleep on the doorbell only when every queue was
    /// observed empty at an unchanged doorbell generation.
    fn run_worker(
        &self,
        worker: usize,
        local: &Worker<usize>,
        tx: &crossbeam_channel::Sender<EpochReport>,
    ) {
        let recorder = self.ctx.recorder();
        loop {
            // Snapshot the doorbell before scanning: a task injected after an
            // empty scan bumps the generation, so the sleep below returns
            // immediately instead of missing the wakeup.
            let heard = self.doorbell.generation();
            assert!(
                !self.frontiers.poisoned(),
                "transport committer unwound; worker aborting"
            );
            // A task that did not come off the local deque was stolen — from
            // the shared injector or a peer's cold end.
            let mut stolen = false;
            let task = local.pop().or_else(|| {
                stolen = true;
                self.injector
                    .steal_batch_and_pop(local)
                    .or_else(|| self.stealers.iter().map(|s| s.steal()).collect())
                    .success()
            });
            match task {
                Some(tenant) => {
                    if stolen {
                        recorder.with(|m| m.steals.inc());
                        recorder.event(|| Event::WorkerSteal {
                            worker: worker as u64,
                        });
                    }
                    self.run_tenant(tenant, local, tx)
                }
                None => {
                    if self.remaining.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    self.doorbell.wait_beyond(heard);
                    recorder.with(|m| m.wakes.inc());
                    recorder.event(|| Event::WorkerWake {
                        worker: worker as u64,
                    });
                }
            }
        }
    }

    /// Steps one epoch of `tenant` (or parks it on its shard's frontier) and
    /// reschedules the continuation through the local deque, where an idle
    /// peer can steal it.
    fn run_tenant(
        &self,
        tenant: usize,
        local: &Worker<usize>,
        tx: &crossbeam_channel::Sender<EpochReport>,
    ) {
        let mut task = self.slots[tenant]
            .lock()
            .expect("tenant slot poisoned")
            .take()
            .expect("tenant scheduled while not in its slot");
        let shard = self.tenant_shard[tenant];
        let epoch = task.next_epoch;
        // Park point: the task must be back in its slot before asking the
        // frontier, so a release racing the answer finds the tenant where
        // the next worker will look for it.
        *self.slots[tenant].lock().expect("tenant slot poisoned") = Some(task);
        let Some(staleness) = self.frontiers.enter_or_park(shard, epoch, tenant) else {
            // Parked; the committer re-injects it on advance.
            let recorder = self.ctx.recorder();
            recorder.with(|m| m.parks.inc());
            recorder.event(|| Event::WorkerPark {
                tenant: tenant as u64,
                epoch: epoch as u64,
            });
            return;
        };
        task = self.slots[tenant]
            .lock()
            .expect("tenant slot poisoned")
            .take()
            .expect("admitted tenant missing from its slot");
        // If this worker unwinds mid-epoch (a panicking service model), the
        // guard tells the committer, which poisons the frontiers — the
        // failure surfaces instead of deadlocking the pool.
        let mut guard = AbortOnDrop {
            tx,
            tenant,
            armed: true,
        };
        task.handle.step_epoch(epoch, self.ctx);
        task.handle.observe_reuse(epoch);
        let ops = task.handle.drain_outbox();
        let retiring = task.handle.retires_at(epoch);
        if retiring {
            task.handle.retire();
        }
        let (hits, misses) = task.handle.repo_stats();
        let last = retiring || epoch + 1 == self.windows[tenant].1;
        let sent = tx
            .send(EpochReport {
                tenant,
                epoch,
                staleness,
                ops,
                hits,
                misses,
                last,
                aborted: false,
            })
            .is_ok();
        guard.disarm();
        if last || !sent {
            // The tenant is done (or the committer is gone — the poisoned
            // frontiers panic this worker on its next loop). The final
            // finisher rings the doorbell so idle peers notice the pool is
            // drained and exit.
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.doorbell.ring();
            }
            return;
        }
        task.next_epoch = epoch + 1;
        // Reschedule through the local deque: LIFO keeps the hot tenant on
        // this worker when nobody is idle, while an idle peer steals it from
        // the cold end.
        *self.slots[tenant].lock().expect("tenant slot poisoned") = Some(task);
        local.push(tenant);
    }
}

/// The work-stealing transport: bounded-staleness consistency on a **fixed
/// worker pool** instead of one thread per tenant.
///
/// [`threads`](Self::threads) workers pull per-epoch tenant tasks from a
/// shared deque (the vendored mini `crossbeam-deque`: a global injector plus
/// per-worker deques with stealers), so a 1000-tenant fleet runs on a
/// handful of threads — the regime where one-thread-per-tenant loses to the
/// barrier on small hosts. A tenant whose shard frontier is too far behind
/// is **parked as data** (never blocking a pool worker) and re-injected by
/// the committer when its shard catches up.
///
/// Consistency is exactly [`BoundedStaleness`]'s: same per-shard frontiers,
/// same staleness bound, same committer ([`run_committer`]). Tenant stepping
/// is sequential per tenant, commits are per shard in tenant order, and
/// sweep times are fixed by the epoch grid — none of it depends on which
/// worker executes what — so the results are **invariant to the thread
/// cap**, and `staleness = 0` bit-matches [`BspBarrier`] (fuzzed across
/// scenarios in `tests/differential.rs`).
#[derive(Debug, Clone, Copy)]
pub struct WorkStealing {
    /// Worker threads in the pool (clamped to `1..=tenants`).
    pub threads: usize,
    /// Maximum number of epochs a tenant's view may trail its shard's commit
    /// frontier.
    pub staleness: usize,
}

impl CommitTransport for WorkStealing {
    fn name(&self) -> String {
        format!(
            "steal(threads={},staleness={})",
            self.threads, self.staleness
        )
    }

    fn drive(&self, harness: &mut FleetHarness<'_>) -> TransportOutcome {
        let (ctx, handles) = harness.split();
        let tenant_count = handles.len();
        let mut out = TransportOutcome::new(self.name(), tenant_count);
        if ctx.epochs() == 0 || tenant_count == 0 {
            return out;
        }
        let windows: Vec<(usize, usize)> = handles
            .iter()
            .map(|h| (h.start_epoch(), h.end_epoch()))
            .collect();
        let tenant_shard: Vec<usize> = handles
            .iter()
            .map(|h| ctx.shard_of(h.namespace()))
            .collect();
        let threads = self.threads.clamp(1, tenant_count);
        let frontiers = ShardFrontiers::new(ctx.shard_count(), self.staleness);
        let injector = Injector::new();
        let doorbell = Doorbell::default();
        let mut active = 0usize;
        let slots: Vec<Mutex<Option<TenantTask<'_>>>> = handles
            .into_iter()
            .map(|handle| {
                let index = handle.index();
                let (start, end) = windows[index];
                // Zero-length windows never step and never report; everyone
                // else starts queued at their join epoch.
                let task = (start < end).then_some(TenantTask {
                    handle,
                    next_epoch: start,
                });
                if task.is_some() {
                    active += 1;
                    injector.push(index);
                }
                Mutex::new(task)
            })
            .collect();
        let remaining = AtomicUsize::new(active);
        let (tx, rx) = crossbeam_channel::unbounded::<EpochReport>();
        let locals: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<usize>> = locals.iter().map(|w| w.stealer()).collect();
        std::thread::scope(|scope| {
            for (worker, local) in locals.into_iter().enumerate() {
                let tx = tx.clone();
                let pool = StealPool {
                    ctx: &ctx,
                    frontiers: &frontiers,
                    doorbell: &doorbell,
                    injector: &injector,
                    stealers: &stealers,
                    slots: &slots,
                    windows: &windows,
                    tenant_shard: &tenant_shard,
                    remaining: &remaining,
                };
                scope.spawn(move || pool.run_worker(worker, &local, &tx));
            }
            drop(tx);

            // Committer on this thread; its unwind poisons the frontiers and
            // rings the doorbell so both parked tenants and idle workers die
            // instead of deadlocking the scope.
            let mut poison_guard = PoisonOnDrop {
                frontiers: &frontiers,
                doorbell: Some(&doorbell),
                armed: true,
            };
            run_committer(
                &ctx,
                &rx,
                &windows,
                &tenant_shard,
                &frontiers,
                &mut out,
                |released| {
                    // An empty release set means no tenant became runnable
                    // (the frontier mutex orders park vs advance), so idle
                    // workers have nothing to find — don't wake them.
                    if released.is_empty() {
                        return;
                    }
                    for tenant in released {
                        injector.push(tenant);
                    }
                    doorbell.ring();
                },
            );
            poison_guard.armed = false;
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_histogram_summarizes() {
        let mut h = StalenessHistogram::default();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(0);
        h.record(0);
        h.record(2);
        assert_eq!(h.counts(), &[2, 0, 1]);
        assert_eq!(h.total(), 3);
        assert_eq!(h.max(), 2);
        assert!((h.mean() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn transport_config_materializes_named_backends() {
        assert_eq!(TransportConfig::default(), TransportConfig::Bsp);
        assert_eq!(TransportConfig::Bsp.backend().name(), "bsp");
        assert_eq!(
            TransportConfig::BoundedStaleness { staleness: 3 }
                .backend()
                .name(),
            "async(staleness=3)"
        );
        assert_eq!(
            TransportConfig::WorkStealing {
                threads: 4,
                staleness: 1
            }
            .backend()
            .name(),
            "steal(threads=4,staleness=1)"
        );
    }

    #[test]
    fn transport_parse_accepts_every_backend_and_rejects_the_rest() {
        assert_eq!(
            TransportConfig::parse("bsp", 4, 2),
            Ok(TransportConfig::Bsp)
        );
        assert_eq!(
            TransportConfig::parse("async", 4, 2),
            Ok(TransportConfig::BoundedStaleness { staleness: 2 })
        );
        assert_eq!(
            TransportConfig::parse("steal", 4, 2),
            Ok(TransportConfig::WorkStealing {
                threads: 4,
                staleness: 2
            })
        );
        let err = TransportConfig::parse("quorum", 4, 2).expect_err("unknown backend");
        assert!(err.contains("'quorum'"), "{err}");
        for valid in ["'bsp'", "'async'", "'steal'"] {
            assert!(err.contains(valid), "{err} should list {valid}");
        }
    }

    #[test]
    fn poisoned_frontiers_wake_and_kill_waiters() {
        let frontiers = ShardFrontiers::new(2, 0);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| frontiers.wait_within(0, 5));
            frontiers.poison();
            assert!(
                waiter.join().is_err(),
                "poisoned frontiers must panic their waiters, not strand them"
            );
        });
        assert!(frontiers.poisoned());
    }

    #[test]
    fn shard_frontiers_gate_per_shard() {
        let frontiers = ShardFrontiers::new(2, 1);
        assert_eq!(frontiers.wait_within(0, 0), 0);
        frontiers.advance(0, 2);
        assert_eq!(frontiers.wait_within(0, 3), 1);
        // Shard 1's frontier is untouched by shard 0's advance.
        assert_eq!(frontiers.wait_within(1, 1), 1);
        std::thread::scope(|scope| {
            let blocked = scope.spawn(|| frontiers.wait_within(1, 3));
            // Advancing the *other* shard must not release it; advancing its
            // own does.
            frontiers.advance(0, 9);
            frontiers.advance(1, 2);
            assert_eq!(blocked.join().expect("waiter"), 1);
        });
    }

    #[test]
    fn parked_tenants_release_only_when_their_shard_catches_up() {
        let frontiers = ShardFrontiers::new(2, 0);
        assert_eq!(frontiers.enter_or_park(0, 0, 7), Some(0));
        // Too far ahead: parked instead of admitted.
        assert_eq!(frontiers.enter_or_park(0, 2, 7), None);
        assert_eq!(frontiers.enter_or_park(0, 1, 8), None);
        // The other shard's advance releases nobody.
        assert!(frontiers.advance(1, 5).is_empty());
        // Advancing shard 0 to one committed epoch admits only tenant 8.
        assert_eq!(frontiers.advance(0, 1), vec![8]);
        assert_eq!(frontiers.advance(0, 2), vec![7]);
        assert_eq!(frontiers.enter_or_park(0, 2, 7), Some(0));
    }

    #[test]
    fn doorbell_never_misses_a_ring() {
        let doorbell = Doorbell::default();
        let heard = doorbell.generation();
        doorbell.ring();
        // A ring after the snapshot makes the wait return immediately.
        doorbell.wait_beyond(heard);
        let heard = doorbell.generation();
        std::thread::scope(|scope| {
            let sleeper = scope.spawn(|| doorbell.wait_beyond(heard));
            doorbell.ring();
            sleeper.join().expect("sleeper woke");
        });
    }
}
