//! Facade crate for the DejaVu (ASPLOS 2012) reproduction.
//!
//! DejaVu accelerates resource allocation in virtualized environments by
//! caching and reusing past allocation decisions, keyed by workload
//! signatures built from low-level metrics. This crate re-exports the
//! workspace's building blocks under short names:
//!
//! * [`core`] — the DejaVu framework (signatures, clustering, classifier,
//!   repository, tuner, interference handling, controller).
//! * [`cloud`] — the simulated EC2-style platform.
//! * [`services`] — Cassandra-, SPECweb- and RUBiS-like service models.
//! * [`traces`] — synthetic HotMail/Messenger-style traces and sine waves.
//! * [`metrics`] — hardware-counter and xentop-style metric modelling.
//! * [`ml`] — the from-scratch ML toolkit (k-means, C4.5-style trees, CFS…).
//! * [`obs`] — the fleet flight recorder: lock-free metrics registry +
//!   bounded event trace behind a zero-overhead [`obs::Recorder`] handle.
//! * [`proxy`] — the duplicating proxy and clone-VM profiler.
//! * [`serve`] — the shared repository as an online service: wire
//!   protocol, dejavu-serve daemon, and the remote repository client.
//! * [`baselines`] — Autopilot, RightScale-style, fixed and tuning baselines.
//! * [`experiments`] — the per-figure/per-table experiment harnesses.
//! * [`fleet`] — the multi-tenant fleet simulator with its shared, sharded
//!   signature repository.
//! * [`simcore`] — the deterministic simulation kernel.
//!
//! # Example
//!
//! ```
//! use dejavu::core::{DejaVuConfig, DejaVuController};
//! use dejavu::cloud::AllocationSpace;
//! use dejavu::services::CassandraService;
//!
//! let controller = DejaVuController::new(
//!     DejaVuConfig::builder().seed(1).build(),
//!     Box::new(CassandraService::update_heavy()),
//!     AllocationSpace::scale_out(1, 10)?,
//! );
//! assert_eq!(controller.repository().len(), 0);
//! # Ok::<(), dejavu::cloud::CloudError>(())
//! ```

pub use dejavu_baselines as baselines;
pub use dejavu_cloud as cloud;
pub use dejavu_core as core;
pub use dejavu_experiments as experiments;
pub use dejavu_fleet as fleet;
pub use dejavu_metrics as metrics;
pub use dejavu_ml as ml;
pub use dejavu_obs as obs;
pub use dejavu_proxy as proxy;
pub use dejavu_serve as serve;
pub use dejavu_services as services;
pub use dejavu_simcore as simcore;
pub use dejavu_traces as traces;
