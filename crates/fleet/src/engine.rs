//! The simulation engine: drives a trace through a service model, a simulated
//! cloud platform and a provisioning controller, recording everything the
//! figures need.
//!
//! Historically this lived in `dejavu-experiments`; it moved here so that the
//! fleet simulator can drive many tenant engines in lock-step. The classic
//! one-shot [`SimulationEngine::run`] is unchanged; the fleet uses the
//! incremental [`SimulationEngine::begin`] / [`SimulationEngine::step`] /
//! [`SimulationEngine::finish`] decomposition, which produces bit-identical
//! results (`run` is implemented on top of it).

use dejavu_cloud::{
    AdaptationEvent, AllocationSpace, CloudPlatform, InterferenceSchedule, Observation,
    PlatformConfig, ProvisioningController, ResourceAllocation,
};
use dejavu_services::service::EvalContext;
use dejavu_services::{ClientEmulator, ServiceModel};
use dejavu_simcore::{SimDuration, SimRng, SimTime, TimeSeries};
use dejavu_traces::{LoadTrace, RequestMix, Workload};

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Label used in reports.
    pub name: String,
    /// The load trace driving the run.
    pub trace: LoadTrace,
    /// Request mix offered by the clients.
    pub mix: RequestMix,
    /// The allocation space the controller may choose from.
    pub space: AllocationSpace,
    /// Platform timing parameters.
    pub platform: PlatformConfig,
    /// Interference injected by co-located tenants.
    pub interference: InterferenceSchedule,
    /// Allocation deployed at time zero.
    pub initial_allocation: ResourceAllocation,
    /// Evaluation/observation interval.
    pub tick: SimDuration,
    /// Seed for client measurement noise.
    pub seed: u64,
}

impl RunConfig {
    /// A scale-out configuration (1–10 large instances) for the given trace,
    /// matching the paper's Cassandra experiments.
    pub fn scale_out(
        name: impl Into<String>,
        trace: LoadTrace,
        mix: RequestMix,
        seed: u64,
    ) -> Self {
        let space = AllocationSpace::scale_out(1, 10).expect("static range is valid");
        RunConfig {
            name: name.into(),
            trace,
            mix,
            initial_allocation: space.full_capacity(),
            space,
            platform: PlatformConfig {
                boot_delay: SimDuration::from_secs(5.0),
                warmup_delay: SimDuration::from_secs(60.0),
            },
            interference: InterferenceSchedule::none(),
            tick: SimDuration::from_secs(30.0),
            seed,
        }
    }

    /// A scale-up configuration (5 instances, large ↔ extra-large) matching the
    /// paper's SPECweb experiments.
    pub fn scale_up(name: impl Into<String>, trace: LoadTrace, mix: RequestMix, seed: u64) -> Self {
        let space = AllocationSpace::scale_up(5).expect("static count is valid");
        RunConfig {
            name: name.into(),
            trace,
            mix,
            initial_allocation: space.full_capacity(),
            space,
            platform: PlatformConfig {
                boot_delay: SimDuration::from_secs(5.0),
                warmup_delay: SimDuration::from_secs(60.0),
            },
            interference: InterferenceSchedule::none(),
            tick: SimDuration::from_secs(30.0),
            seed,
        }
    }

    /// Sets the interference schedule.
    pub fn with_interference(mut self, schedule: InterferenceSchedule) -> Self {
        self.interference = schedule;
        self
    }

    /// Sets the evaluation tick.
    pub fn with_tick(mut self, tick: SimDuration) -> Self {
        self.tick = tick;
        self
    }
}

/// Everything recorded during one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The run label.
    pub name: String,
    /// The controller that produced the run.
    pub controller: String,
    /// Offered load (normalized) over time.
    pub load: TimeSeries,
    /// Deployed instance count over time.
    pub instance_count: TimeSeries,
    /// Deployed capacity units over time.
    pub capacity_units: TimeSeries,
    /// Measured latency over time (ms).
    pub latency_ms: TimeSeries,
    /// Measured QoS over time (percent).
    pub qos_percent: TimeSeries,
    /// Fraction of observation ticks violating the SLO.
    pub slo_violation_fraction: f64,
    /// Total deployment cost in USD over the whole run.
    pub total_cost: f64,
    /// Deployment cost in USD restricted to the reuse period (after the first day).
    pub reuse_cost: f64,
    /// All reconfigurations that took place.
    pub adaptations: Vec<AdaptationEvent>,
    /// Per-workload-change settling times in seconds (0 when no
    /// reconfiguration was needed).
    pub settle_times_secs: Vec<f64>,
    /// End of the simulated period.
    pub end: SimTime,
}

impl RunResult {
    /// Mean settling time across workload changes that required an adaptation.
    pub fn mean_adaptation_secs(&self) -> f64 {
        let nonzero: Vec<f64> = self
            .settle_times_secs
            .iter()
            .copied()
            .filter(|&s| s > 0.0)
            .collect();
        if nonzero.is_empty() {
            0.0
        } else {
            nonzero.iter().sum::<f64>() / nonzero.len() as f64
        }
    }

    /// Standard error of the non-zero settling times.
    pub fn adaptation_std_error(&self) -> f64 {
        let nonzero: Vec<f64> = self
            .settle_times_secs
            .iter()
            .copied()
            .filter(|&s| s > 0.0)
            .collect();
        if nonzero.len() < 2 {
            return 0.0;
        }
        let mean = nonzero.iter().sum::<f64>() / nonzero.len() as f64;
        let var = nonzero.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / nonzero.len() as f64;
        (var / nonzero.len() as f64).sqrt()
    }

    /// Cost savings of this run relative to `baseline` over the reuse period.
    pub fn reuse_savings_vs(&self, baseline: &RunResult) -> f64 {
        if baseline.reuse_cost <= 0.0 {
            0.0
        } else {
            1.0 - self.reuse_cost / baseline.reuse_cost
        }
    }
}

/// The in-flight state of one run, stepped one observation tick at a time.
///
/// Produced by [`SimulationEngine::begin`], advanced by
/// [`SimulationEngine::step`], consumed by [`SimulationEngine::finish`].
#[derive(Debug, Clone)]
pub struct RunState {
    platform: CloudPlatform,
    client: ClientEmulator,
    rng: SimRng,
    load: TimeSeries,
    instance_count: TimeSeries,
    capacity_units: TimeSeries,
    latency_ms: TimeSeries,
    qos_percent: TimeSeries,
    adaptations: Vec<AdaptationEvent>,
    change_points: Vec<SimTime>,
    tick_secs: f64,
    ticks: usize,
    tick_index: usize,
    violated_ticks: usize,
    last_level: f64,
    last_reconfig: Option<SimTime>,
    prev_allocation: ResourceAllocation,
    end: SimTime,
}

impl RunState {
    /// The time of the next observation tick, or `None` when the run is over.
    pub fn next_tick_time(&self) -> Option<SimTime> {
        if self.tick_index < self.ticks {
            Some(SimTime::from_secs(self.tick_secs * self.tick_index as f64))
        } else {
            None
        }
    }

    /// Returns true when every tick has been simulated.
    pub fn is_done(&self) -> bool {
        self.tick_index >= self.ticks
    }

    /// Ticks simulated so far.
    pub fn ticks_completed(&self) -> usize {
        self.tick_index
    }
}

/// The simulation engine.
#[derive(Debug, Clone)]
pub struct SimulationEngine {
    config: RunConfig,
}

impl SimulationEngine {
    /// Creates an engine for one run configuration.
    pub fn new(config: RunConfig) -> Self {
        SimulationEngine { config }
    }

    /// The run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Starts a run: platform, client emulator and bookkeeping at time zero.
    pub fn begin(&self) -> RunState {
        let cfg = &self.config;
        let platform = CloudPlatform::new(
            cfg.platform.clone(),
            cfg.space.clone(),
            cfg.initial_allocation,
            cfg.interference.clone(),
        );
        let end = SimTime::ZERO + cfg.trace.duration();
        let ticks = (cfg.trace.duration().as_secs() / cfg.tick.as_secs()).round() as usize;
        RunState {
            platform,
            client: ClientEmulator::default(),
            rng: SimRng::seed_from_u64(cfg.seed),
            load: TimeSeries::with_capacity("load", ticks),
            instance_count: TimeSeries::with_capacity("instances", ticks),
            capacity_units: TimeSeries::with_capacity("capacity", ticks),
            latency_ms: TimeSeries::with_capacity("latency_ms", ticks),
            qos_percent: TimeSeries::with_capacity("qos_percent", ticks),
            adaptations: Vec::new(),
            change_points: Vec::new(),
            tick_secs: cfg.tick.as_secs(),
            ticks,
            tick_index: 0,
            violated_ticks: 0,
            last_level: f64::NAN,
            last_reconfig: None,
            prev_allocation: cfg.initial_allocation,
            end,
        }
    }

    /// Simulates one observation tick: measure the service, let `controller`
    /// decide, apply the decision to the platform. Returns false once the run
    /// is complete (in which case nothing was simulated).
    pub fn step(
        &self,
        state: &mut RunState,
        service: &dyn ServiceModel,
        controller: &mut dyn ProvisioningController,
    ) -> bool {
        let cfg = &self.config;
        if state.tick_index >= state.ticks {
            return false;
        }
        let t = SimTime::from_secs(state.tick_secs * state.tick_index as f64);
        state.tick_index += 1;

        let level = cfg.trace.level_at(t);
        if state.last_level.is_nan() || (level - state.last_level).abs() > 0.02 {
            if !state.last_level.is_nan() {
                state.change_points.push(t);
            }
            state.last_level = level;
        }
        let allocation = state.platform.allocation_at(t);
        if allocation != state.prev_allocation {
            state.last_reconfig = Some(t);
            state.prev_allocation = allocation;
        }
        let capacity = state.platform.effective_capacity(t).max(0.05);
        let ctx = EvalContext {
            time: t,
            capacity_units: capacity,
            since_reconfig: state.last_reconfig.map(|r| t.saturating_since(r)),
        };
        let perf = state.client.measure(service, level, &ctx, &mut state.rng);
        let slo_violated = !service.slo().is_met(&perf);
        if slo_violated {
            state.violated_ticks += 1;
        }

        state.load.push(t, level);
        state.instance_count.push(t, allocation.count() as f64);
        state.capacity_units.push(t, allocation.capacity_units());
        state.latency_ms.push(t, perf.latency_ms);
        state.qos_percent.push(t, perf.qos_percent);

        let observation = Observation {
            time: t,
            workload: Workload::with_intensity(service.kind(), level, cfg.mix),
            latency_ms: Some(perf.latency_ms),
            qos_percent: Some(perf.qos_percent),
            utilization: perf.utilization.min(1.0),
            slo_violated,
            current_allocation: allocation,
        };
        let decision = controller.decide(&observation);
        if let Some(target) = decision.target {
            if target != allocation {
                state.platform.request(t, target, decision.decision_latency);
                let completed_at = state.platform.pending_effective_at().unwrap_or(t);
                state.adaptations.push(AdaptationEvent {
                    started_at: t,
                    completed_at,
                    from: allocation,
                    to: target,
                    reason: decision.reason,
                });
            }
        }
        true
    }

    /// Finalizes a completed (or truncated) run into a [`RunResult`].
    pub fn finish(&self, state: RunState, controller_name: &str) -> RunResult {
        let cfg = &self.config;
        let RunState {
            platform,
            load,
            instance_count,
            capacity_units,
            latency_ms,
            qos_percent,
            adaptations,
            change_points,
            ticks,
            violated_ticks,
            end,
            ..
        } = state;

        // Settling time per workload change: the completion of the last
        // adaptation started before the next change.
        let mut settle_times_secs = Vec::with_capacity(change_points.len());
        for (i, &change) in change_points.iter().enumerate() {
            let window_end = change_points
                .get(i + 1)
                .copied()
                .unwrap_or(end)
                .min(change + SimDuration::from_mins(45.0));
            let settle = adaptations
                .iter()
                .filter(|a| a.started_at >= change && a.started_at < window_end)
                .map(|a| a.completed_at.saturating_since(change).as_secs())
                .fold(0.0f64, f64::max);
            settle_times_secs.push(settle);
        }

        let reuse_start = SimTime::from_hours(24.0).min(end);
        RunResult {
            name: cfg.name.clone(),
            controller: controller_name.to_string(),
            load,
            instance_count,
            capacity_units,
            latency_ms,
            qos_percent,
            slo_violation_fraction: violated_ticks as f64 / ticks.max(1) as f64,
            total_cost: platform.cost_meter().total_cost(end),
            reuse_cost: platform.cost_meter().cost_between(reuse_start, end),
            adaptations,
            settle_times_secs,
            end,
        }
    }

    /// Runs `controller` over the configured trace against `service`.
    pub fn run(
        &self,
        service: &dyn ServiceModel,
        controller: &mut dyn ProvisioningController,
    ) -> RunResult {
        let mut state = self.begin();
        while self.step(&mut state, service, controller) {}
        let name = controller.name().to_string();
        self.finish(state, &name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_baselines::{FixedMax, Oracle};
    use dejavu_services::CassandraService;
    use dejavu_traces::messenger_week;

    fn short_trace() -> LoadTrace {
        messenger_week(1).days(0, 2)
    }

    #[test]
    fn fixed_max_never_violates_and_costs_the_most() {
        let cfg = RunConfig::scale_out("test", short_trace(), RequestMix::update_heavy(), 1)
            .with_tick(SimDuration::from_secs(120.0));
        let engine = SimulationEngine::new(cfg);
        let svc = CassandraService::update_heavy();
        let space = engine.config().space.clone();
        let mut fixed = FixedMax::new(&space);
        let fixed_result = engine.run(&svc, &mut fixed);
        assert!(fixed_result.slo_violation_fraction < 0.01);

        let mut oracle = Oracle::new(Box::new(svc), engine.config().space.clone());
        let oracle_result = engine.run(&svc, &mut oracle);
        assert!(oracle_result.total_cost < fixed_result.total_cost);
        assert!(oracle_result.reuse_savings_vs(&fixed_result) > 0.2);
        assert!(oracle_result.slo_violation_fraction < 0.1);
        assert!(!oracle_result.adaptations.is_empty());
    }

    #[test]
    fn series_cover_the_whole_run() {
        let cfg = RunConfig::scale_out("cover", short_trace(), RequestMix::update_heavy(), 2)
            .with_tick(SimDuration::from_secs(300.0));
        let engine = SimulationEngine::new(cfg);
        let svc = CassandraService::update_heavy();
        let mut fixed = FixedMax::new(&engine.config().space.clone());
        let r = engine.run(&svc, &mut fixed);
        assert_eq!(r.load.len(), r.latency_ms.len());
        assert_eq!(r.load.len(), (48.0 * 3600.0 / 300.0) as usize);
        assert!(r.total_cost > 0.0);
        assert_eq!(r.controller, "fixed-max");
    }

    #[test]
    fn incremental_stepping_matches_one_shot_run() {
        let cfg = RunConfig::scale_out("step", short_trace(), RequestMix::update_heavy(), 3)
            .with_tick(SimDuration::from_secs(300.0));
        let engine = SimulationEngine::new(cfg);
        let svc = CassandraService::update_heavy();

        let mut fixed_a = FixedMax::new(&engine.config().space.clone());
        let one_shot = engine.run(&svc, &mut fixed_a);

        // Step in irregular bursts, as the fleet's epoch loop does.
        let mut fixed_b = FixedMax::new(&engine.config().space.clone());
        let mut state = engine.begin();
        let mut burst = 1;
        while !state.is_done() {
            for _ in 0..burst {
                if !engine.step(&mut state, &svc, &mut fixed_b) {
                    break;
                }
            }
            burst = burst % 7 + 1;
        }
        let stepped = engine.finish(state, "fixed-max");

        assert_eq!(one_shot.load.len(), stepped.load.len());
        assert_eq!(one_shot.total_cost, stepped.total_cost);
        assert_eq!(
            one_shot.slo_violation_fraction,
            stepped.slo_violation_fraction
        );
        let a: Vec<f64> = one_shot.latency_ms.values().to_vec();
        let b: Vec<f64> = stepped.latency_ms.values().to_vec();
        assert_eq!(a, b);
    }
}
