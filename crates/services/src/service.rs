//! The [`ServiceModel`] trait tying the benchmark models together.

use crate::perf::PerfSample;
use crate::slo::Slo;
use dejavu_simcore::{SimDuration, SimTime};
use dejavu_traces::{RequestMix, ServiceKind};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors raised by service-model configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// A configuration parameter was invalid.
    InvalidConfig(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::InvalidConfig(msg) => write!(f, "invalid service configuration: {msg}"),
        }
    }
}

impl Error for ServiceError {}

/// Context for one evaluation of the service's performance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalContext {
    /// Current simulated time.
    pub time: SimTime,
    /// Effective capacity units available to the service (after warm-up and
    /// interference effects).
    pub capacity_units: f64,
    /// Time since the last reconfiguration, if any has happened — services
    /// like Cassandra pay a re-partitioning penalty right after scaling.
    pub since_reconfig: Option<SimDuration>,
}

impl EvalContext {
    /// Creates a context with no recent reconfiguration.
    pub fn steady(time: SimTime, capacity_units: f64) -> Self {
        EvalContext {
            time,
            capacity_units,
            since_reconfig: None,
        }
    }
}

/// A modelled network service: given the offered intensity and the capacity it
/// currently has, report the performance a client emulator would measure.
///
/// Models are immutable descriptions, so the trait requires `Send + Sync`:
/// the fleet simulator evaluates tenants on parallel worker threads.
pub trait ServiceModel: Send + Sync {
    /// Which benchmark this models.
    fn kind(&self) -> ServiceKind;

    /// The request mix the benchmark's client emulator generates by default.
    fn default_mix(&self) -> RequestMix;

    /// The SLO the deployment must meet.
    fn slo(&self) -> Slo;

    /// Evaluates steady-state performance at `intensity` under `ctx`.
    fn evaluate(&self, intensity: f64, ctx: &EvalContext) -> PerfSample;

    /// The minimum capacity units needed to meet the SLO at `intensity`
    /// (what an oracle or sandboxed tuner would discover). The default
    /// implementation searches capacity in 0.1-unit steps.
    fn required_capacity(&self, intensity: f64) -> f64 {
        let mut capacity = 0.5;
        while capacity < 100.0 {
            let sample = self.evaluate(intensity, &EvalContext::steady(SimTime::ZERO, capacity));
            if self.slo().is_met(&sample) {
                return capacity;
            }
            capacity += 0.1;
        }
        capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cassandra::CassandraService;
    use crate::specweb::{SpecWebService, SpecWebWorkload};

    #[test]
    fn error_display() {
        let e = ServiceError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn required_capacity_is_monotone_in_intensity() {
        let svc = CassandraService::update_heavy();
        assert!(svc.required_capacity(0.9) >= svc.required_capacity(0.4));
    }

    #[test]
    fn trait_objects_work() {
        let services: Vec<Box<dyn ServiceModel>> = vec![
            Box::new(CassandraService::update_heavy()),
            Box::new(SpecWebService::new(SpecWebWorkload::Support)),
        ];
        for s in &services {
            let sample = s.evaluate(0.5, &EvalContext::steady(SimTime::ZERO, 10.0));
            assert!(sample.latency_ms > 0.0);
            assert!(s.required_capacity(0.5) > 0.0);
        }
    }
}
