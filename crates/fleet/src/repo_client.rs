//! The client surface of the shared signature repository.
//!
//! [`RepositoryClient`] is the narrow trait the fleet machinery actually
//! drives: tenant lookups ([`TenantRepoView`](crate::tenant_view) resolves
//! through [`peek_resolved_cached`](RepositoryClient::peek_resolved_cached)),
//! transport commits ([`apply_batch`](RepositoryClient::apply_batch) plus the
//! TTL sweeps), shard routing, and the read-only counters the fleet report
//! snapshots at the end of a run. [`SharedSignatureRepository`] implements it
//! by plain delegation; `dejavu-serve`'s `RemoteRepository` implements it over
//! the wire, which is what lets `FleetEngine::run_on_client` drive an entire
//! fleet against a repository living in another process.
//!
//! Deliberately **not** on the trait: snapshot/delta capture, shard restore
//! and the delta-cursor plumbing. Those are the crash-recovery internals of
//! the fault layer — they need the in-process
//! [`SharedSignatureRepository`] (the transports keep an optional concrete
//! handle for exactly that), and a remote server owns its durability story
//! rather than exporting raw chain surgery to clients.

use crate::shared_repo::{
    shard_of_namespace, PendingOp, ResolveMemo, ShardStats, SharedEntry, SharedSignatureRepository,
    TenantId,
};
use dejavu_simcore::SimTime;
use std::fmt::Debug;

/// What a fleet needs from a shared signature repository, whether it lives
/// in-process or behind a socket.
///
/// Object-safe on purpose: tenants hold `Arc<dyn RepositoryClient>` so the
/// same engine drives [`SharedSignatureRepository`] directly or
/// `dejavu-serve`'s wire client without re-monomorphizing the fleet.
///
/// # Contract
///
/// Implementations must preserve the semantics the in-process store
/// establishes — reads are bit-exact functions of committed state, shard
/// routing agrees with [`shard_of_namespace`], and
/// [`apply_batch`](Self::apply_batch) applies operations in the given order —
/// because the differential suites compare transports (and processes) against
/// each other bit for bit.
pub trait RepositoryClient: Debug + Send + Sync {
    /// Anchor-resolved lookup with per-tenant memoization; the tenant read
    /// path. See [`SharedSignatureRepository::peek_resolved_cached`].
    #[allow(clippy::too_many_arguments)]
    fn peek_resolved_cached(
        &self,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        now: SimTime,
        exclude_owner: Option<TenantId>,
        memo: &mut ResolveMemo,
    ) -> Option<(SharedEntry, (u32, u32, f64))>;

    /// Applies one epoch's buffered operations in order; the transport commit
    /// path. Returns one applied-flag per operation.
    fn apply_batch(&self, ops: &[PendingOp]) -> Vec<bool>;

    /// TTL-sweeps every shard at fleet time `now`, returning entries evicted.
    fn evict_stale(&self, now: SimTime) -> u64;

    /// TTL-sweeps a single shard (the per-shard commit frontiers' hook).
    fn evict_stale_shard(&self, shard: usize, now: SimTime) -> u64;

    /// Number of lock-striped shards.
    fn shard_count(&self) -> usize;

    /// The shard `namespace` routes to. The provided implementation is the
    /// canonical routing every in-tree store uses; override only to delegate
    /// (never to re-route — recovery and the frontiers assume agreement).
    fn shard_index(&self, namespace: u64) -> usize {
        shard_of_namespace(namespace, self.shard_count())
    }

    /// The repository's high-water clock (drives warm-start resumption).
    fn clock(&self) -> SimTime;

    /// Total committed entries across all shards.
    fn len(&self) -> usize;

    /// Whether the repository holds no entries at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total anchors (distinct workload classes) across all shards.
    fn anchor_count(&self) -> usize;

    /// Fleet-wide counter totals (hits, misses, insertions, evictions, …).
    fn stats(&self) -> ShardStats;

    /// Per-shard counter snapshots, indexed by shard.
    fn shard_stats(&self) -> Vec<ShardStats>;
}

impl RepositoryClient for SharedSignatureRepository {
    // Inherent methods shadow trait methods inside these bodies, so each
    // delegation resolves to the concrete implementation, not to itself.
    fn peek_resolved_cached(
        &self,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        now: SimTime,
        exclude_owner: Option<TenantId>,
        memo: &mut ResolveMemo,
    ) -> Option<(SharedEntry, (u32, u32, f64))> {
        self.peek_resolved_cached(
            namespace,
            signature,
            interference_bucket,
            now,
            exclude_owner,
            memo,
        )
    }

    fn apply_batch(&self, ops: &[PendingOp]) -> Vec<bool> {
        self.apply_batch(ops)
    }

    fn evict_stale(&self, now: SimTime) -> u64 {
        self.evict_stale(now)
    }

    fn evict_stale_shard(&self, shard: usize, now: SimTime) -> u64 {
        self.evict_stale_shard(shard, now)
    }

    fn shard_count(&self) -> usize {
        self.shard_count()
    }

    fn shard_index(&self, namespace: u64) -> usize {
        self.shard_index(namespace)
    }

    fn clock(&self) -> SimTime {
        self.clock()
    }

    fn len(&self) -> usize {
        self.len()
    }

    fn is_empty(&self) -> bool {
        self.is_empty()
    }

    fn anchor_count(&self) -> usize {
        self.anchor_count()
    }

    fn stats(&self) -> ShardStats {
        self.stats()
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.shard_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_repo::SharedRepoConfig;
    use dejavu_cloud::ResourceAllocation;
    use std::sync::Arc;

    #[test]
    fn trait_object_reads_match_the_concrete_repository() {
        let repo = Arc::new(SharedSignatureRepository::new(SharedRepoConfig::default()));
        repo.insert(
            3,
            11,
            &[10.0, 20.0],
            0,
            ResourceAllocation::large(5),
            SimTime::ZERO,
        );
        let client: Arc<dyn RepositoryClient> = Arc::clone(&repo) as _;

        assert_eq!(client.len(), repo.len());
        assert_eq!(client.anchor_count(), repo.anchor_count());
        assert_eq!(client.shard_count(), repo.shard_count());
        assert_eq!(client.shard_index(11), repo.shard_index(11));
        assert!(!client.is_empty());

        let mut memo_a = ResolveMemo::default();
        let mut memo_b = ResolveMemo::default();
        let via_trait =
            client.peek_resolved_cached(11, &[10.0, 20.0], 0, SimTime::ZERO, None, &mut memo_a);
        let direct =
            repo.peek_resolved_cached(11, &[10.0, 20.0], 0, SimTime::ZERO, None, &mut memo_b);
        assert_eq!(
            via_trait.map(|(e, r)| (e.allocation, r)),
            direct.map(|(e, r)| (e.allocation, r))
        );
    }
}
