//! Fleet scale-out: run a mixed multi-tenant fleet with and without the
//! shared signature repository and print what sharing buys.
//!
//! ```text
//! cargo run --release --example fleet_scaleout
//! ```

use dejavu::fleet::{standard_fleet, FleetConfig, FleetEngine, SharingMode};

fn main() {
    let tenants = 60;
    let days = 3;
    let seed = 42;

    // The same fleet twice: once with every tenant's controller wired to the
    // shared, sharded repository; once with per-tenant private caches.
    let shared =
        FleetEngine::new(standard_fleet(tenants, days, seed), FleetConfig::default()).run();
    let isolated = FleetEngine::new(
        standard_fleet(tenants, days, seed),
        FleetConfig {
            sharing: SharingMode::Isolated,
            ..Default::default()
        },
    )
    .run();

    println!("{}", shared.render());
    println!("{}", isolated.render());

    println!("what sharing bought:");
    println!(
        "  repository hit rate : {:.1}% -> {:.1}%",
        isolated.fleet_hit_rate() * 100.0,
        shared.fleet_hit_rate() * 100.0
    );
    println!(
        "  cold-start tunings  : {} -> {} ({} avoided via fleet reuse)",
        isolated.total_tunings(),
        shared.total_tunings(),
        shared.total_fleet_reuses()
    );
    println!(
        "  cross-tenant hits   : {}",
        shared.total_cross_tenant_hits()
    );
}
