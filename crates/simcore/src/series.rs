//! Time series of `(SimTime, value)` points with the reductions the experiment
//! reports need (hourly averages, time-weighted integrals, SLO-violation
//! fractions).

use crate::time::{SimTime, SECS_PER_HOUR};
use serde::{Deserialize, Serialize};

/// An append-only series of timestamped values.
///
/// Values are expected to be appended in non-decreasing time order; the series
/// enforces this because out-of-order points would silently corrupt the
/// time-weighted reductions used for cost accounting.
///
/// # Example
///
/// ```
/// use dejavu_simcore::{SimTime, TimeSeries};
/// let mut s = TimeSeries::new("latency_ms");
/// s.push(SimTime::from_secs(0.0), 10.0);
/// s.push(SimTime::from_secs(60.0), 20.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.mean(), 15.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with a human-readable name (used in reports).
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty series preallocated for `capacity` samples — use when
    /// the sample count is known up front (one per observation tick).
    pub fn with_capacity(name: impl Into<String>, capacity: usize) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::with_capacity(capacity),
            values: Vec::with_capacity(capacity),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last appended point.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(
                time.as_secs() >= last,
                "time series {} must be appended in order ({} < {})",
                self.name,
                time.as_secs(),
                last
            );
        }
        self.times.push(time.as_secs());
        self.values.push(value);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterator over `(SimTime, value)` points.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times
            .iter()
            .zip(self.values.iter())
            .map(|(&t, &v)| (SimTime::from_secs(t), v))
    }

    /// The raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The raw timestamps, in seconds.
    pub fn times_secs(&self) -> &[f64] {
        &self.times
    }

    /// Unweighted mean of the values (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Maximum value, if any.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.max(v)),
        })
    }

    /// Minimum value, if any.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.min(v)),
        })
    }

    /// Fraction of points whose value exceeds `threshold` (0.0 if empty).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&v| v > threshold).count() as f64 / self.values.len() as f64
    }

    /// Fraction of points whose value is below `threshold` (0.0 if empty).
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&v| v < threshold).count() as f64 / self.values.len() as f64
    }

    /// Time-weighted integral of the series (each value held until the next
    /// point), i.e. `sum(value_i * (t_{i+1} - t_i))`. The last point contributes
    /// until `end`.
    ///
    /// This is what turns an instance-count series into instance-hours for the
    /// cost reports.
    pub fn integral_until(&self, end: SimTime) -> f64 {
        let mut total = 0.0;
        for i in 0..self.times.len() {
            let t0 = self.times[i];
            let t1 = if i + 1 < self.times.len() {
                self.times[i + 1]
            } else {
                end.as_secs().max(t0)
            };
            total += self.values[i] * (t1 - t0);
        }
        total
    }

    /// Averages the series into per-hour buckets covering `[0, hours)`.
    /// Hours with no points get the previous hour's last value (or 0.0 at the
    /// start), matching how a step-valued allocation series behaves.
    pub fn hourly_means(&self, hours: usize) -> Vec<f64> {
        let mut out = vec![f64::NAN; hours];
        let mut sums = vec![0.0; hours];
        let mut counts = vec![0usize; hours];
        for (&t, &v) in self.times.iter().zip(self.values.iter()) {
            let h = (t / SECS_PER_HOUR) as usize;
            if h < hours {
                sums[h] += v;
                counts[h] += 1;
            }
        }
        let mut last = 0.0;
        for h in 0..hours {
            if counts[h] > 0 {
                last = sums[h] / counts[h] as f64;
            }
            out[h] = last;
        }
        out
    }

    /// Value in effect at `time` (the latest point at or before `time`), if any.
    pub fn value_at(&self, time: SimTime) -> Option<f64> {
        let t = time.as_secs();
        let idx = self.times.partition_point(|&x| x <= t);
        if idx == 0 {
            None
        } else {
            Some(self.values[idx - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new("test");
        for &(t, v) in points {
            s.push(SimTime::from_secs(t), v);
        }
        s
    }

    #[test]
    fn basic_reductions() {
        let s = series(&[(0.0, 1.0), (10.0, 3.0), (20.0, 5.0)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.name(), "test");
    }

    #[test]
    fn fraction_above_and_below() {
        let s = series(&[(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)]);
        assert!((s.fraction_above(2.5) - 0.5).abs() < 1e-12);
        assert!((s.fraction_below(1.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn integral_holds_last_value() {
        // 2 instances for 100 s then 4 instances for 100 s.
        let s = series(&[(0.0, 2.0), (100.0, 4.0)]);
        let integral = s.integral_until(SimTime::from_secs(200.0));
        assert!((integral - (2.0 * 100.0 + 4.0 * 100.0)).abs() < 1e-9);
    }

    #[test]
    fn hourly_means_forward_fill() {
        let mut s = TimeSeries::new("alloc");
        s.push(SimTime::from_hours(0.0), 2.0);
        s.push(SimTime::from_hours(2.0), 6.0);
        let means = s.hourly_means(4);
        assert_eq!(means, vec![2.0, 2.0, 6.0, 6.0]);
    }

    #[test]
    fn value_at_lookup() {
        let s = series(&[(10.0, 1.0), (20.0, 2.0)]);
        assert_eq!(s.value_at(SimTime::from_secs(5.0)), None);
        assert_eq!(s.value_at(SimTime::from_secs(10.0)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(15.0)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(25.0)), Some(2.0));
    }

    #[test]
    #[should_panic]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new("bad");
        s.push(SimTime::from_secs(10.0), 1.0);
        s.push(SimTime::from_secs(5.0), 2.0);
    }

    #[test]
    fn empty_series_reductions() {
        let s = TimeSeries::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), None);
        assert_eq!(s.integral_until(SimTime::from_secs(100.0)), 0.0);
        assert_eq!(s.hourly_means(3), vec![0.0, 0.0, 0.0]);
    }
}
