//! The DejaVu proxy and profiling environment.
//!
//! DejaVu interposes a protocol-agnostic proxy between clients and the service
//! in production (§3.2): the proxy duplicates a sampled fraction of requests
//! (at client-session granularity) to a clone VM running in a dedicated
//! profiling environment, caches recent back-end answers so that a single
//! middle tier can be profiled in isolation, and must add only negligible
//! latency to the production path (§4.4 measures ≈ 3 ms).
//!
//! * [`duplicator`] — request duplication with session-granularity sampling
//!   and the production-path overhead model.
//! * [`answer_cache`] — the hash-keyed recent-answer cache used to mimic the
//!   absent back-end tier, with the locality/staleness behaviour described in
//!   §3.2.1.
//! * [`profiler`] — the profiling environment: a clone VM that serves the
//!   duplicated requests in isolation and collects the workload signature.
//! * [`overhead`] — network-duplication overhead accounting (≈ 1/n of inbound
//!   traffic).

pub mod answer_cache;
pub mod duplicator;
pub mod overhead;
pub mod profiler;

pub use answer_cache::{AnswerCache, CacheStats};
pub use duplicator::{DuplicatorStats, ProxyConfig, RequestDuplicator};
pub use overhead::NetworkOverhead;
pub use profiler::{Profiler, ProfilerConfig, ProfilingReport};
