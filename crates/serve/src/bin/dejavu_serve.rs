//! The dejavu-serve daemon binary: hosts one shared signature repository
//! behind the wire protocol until interrupted.
//!
//! ```text
//! dejavu-serve --listen 127.0.0.1:7117 --shards 16 --max-sessions 64
//! dejavu-serve --unix /tmp/dejavu.sock --snapshot-in repo.json
//! ```

use dejavu_fleet::{SharedRepoConfig, SharedSignatureRepository};
use dejavu_serve::{serve_tcp, ServeConfig};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
dejavu-serve: host a shared signature repository as an online service

USAGE:
    dejavu-serve [OPTIONS]

OPTIONS:
    --listen ADDR        TCP listen address (default 127.0.0.1:7117)
    --unix PATH          serve on a Unix domain socket instead of TCP
    --shards N           shard count for a fresh repository (default 16)
    --max-sessions N     admission cap on concurrent sessions (default 64)
    --snapshot-in PATH   seed the repository from a snapshot file
    --help               print this help
";

struct Options {
    listen: String,
    unix: Option<String>,
    shards: usize,
    max_sessions: usize,
    snapshot_in: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        listen: "127.0.0.1:7117".to_string(),
        unix: None,
        shards: 16,
        max_sessions: 64,
        snapshot_in: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        if arg == "--listen" {
            opts.listen = value("--listen")?;
        } else if arg == "--unix" {
            opts.unix = Some(value("--unix")?);
        } else if arg == "--shards" {
            opts.shards = value("--shards")?
                .parse()
                .map_err(|e| format!("--shards: {e}"))?;
        } else if arg == "--max-sessions" {
            opts.max_sessions = value("--max-sessions")?
                .parse()
                .map_err(|e| format!("--max-sessions: {e}"))?;
        } else if arg == "--snapshot-in" {
            opts.snapshot_in = Some(value("--snapshot-in")?);
        } else if arg == "--help" || arg == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        } else {
            return Err(format!("unknown argument {arg}"));
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let repo = match &opts.snapshot_in {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("error: reading {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match SharedSignatureRepository::load_snapshot(&text) {
                Ok(repo) => {
                    eprintln!(
                        "dejavu-serve: seeded {} entries / {} anchors from {path}",
                        repo.len(),
                        repo.anchor_count()
                    );
                    repo
                }
                Err(e) => {
                    eprintln!("error: loading snapshot {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => SharedSignatureRepository::new(SharedRepoConfig {
            shards: opts.shards,
            ..SharedRepoConfig::default()
        }),
    };
    let config = ServeConfig {
        max_sessions: opts.max_sessions,
    };
    let handle = if let Some(path) = &opts.unix {
        #[cfg(unix)]
        {
            match dejavu_serve::serve_unix(Arc::new(repo), std::path::Path::new(path), config) {
                Ok(handle) => handle,
                Err(e) => {
                    eprintln!("error: binding {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        #[cfg(not(unix))]
        {
            eprintln!("error: --unix is unsupported on this platform");
            return ExitCode::FAILURE;
        }
    } else {
        match serve_tcp(Arc::new(repo), &opts.listen, config) {
            Ok(handle) => handle,
            Err(e) => {
                eprintln!("error: binding {}: {e}", opts.listen);
                return ExitCode::FAILURE;
            }
        }
    };
    eprintln!("dejavu-serve: listening on {}", handle.endpoint());
    // Serve until the process is killed; the accept thread owns the
    // listener, so parking the main thread is all that is left to do.
    loop {
        std::thread::park();
    }
}
