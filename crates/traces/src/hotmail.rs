//! A synthetic week-long trace with the structure of the HotMail (Windows Live
//! Mail) load trace used in the paper (hourly samples, September 7–13, 2009).
//!
//! The real trace is not public; the generator reproduces the properties the
//! evaluation relies on:
//!
//! * hourly granularity over seven days, normalized to the peak load;
//! * a diurnal pattern with a small number of distinct load plateaus, so the
//!   learning day yields a handful of workload classes (Figure 5) including a
//!   singleton peak-hour class;
//! * lower weekend load;
//! * a surge on the fourth day that exceeds anything seen during the learning
//!   day, which exercises DejaVu's unclassified-workload fallback (Figure 7).

use crate::trace::LoadTrace;
use dejavu_simcore::SimRng;

/// Hour-of-day plateau levels for a HotMail-style weekday.
///
/// Four distinct levels appear during a day: night, morning/evening shoulder,
/// busy daytime, and a single peak hour — matching the four workload classes
/// DejaVu identifies from 24 hourly workloads in Figure 5.
pub(crate) fn hotmail_hour_level(hour_of_day: usize) -> f64 {
    match hour_of_day {
        0..=6 => 0.2,
        7..=11 => 0.45,
        12..=13 => 0.55,
        14 => 0.95,
        15..=17 => 0.55,
        18..=23 => 0.45,
        _ => unreachable!("hour_of_day is always < 24"),
    }
}

/// Relative weekend load (days 5 and 6 of the week, i.e. Saturday/Sunday).
const WEEKEND_FACTOR: f64 = 0.95;

/// Magnitude of the day-4 surge relative to the weekday peak.
const DAY4_SURGE_LEVEL: f64 = 1.3;

/// Per-sample multiplicative jitter (the real trace is aggregated over
/// thousands of servers, so hour-to-hour noise is small).
const JITTER: f64 = 0.01;

/// Per-day shift (in hours) of the diurnal pattern. Real traces drift from day
/// to day; a purely time-based controller (Autopilot) mis-times its
/// allocations by this much, while signature-based reuse is unaffected.
const DAY_SHIFTS: [i64; 7] = [0, 1, -1, 0, 2, 1, -2];

/// Generates the week-long HotMail-style trace.
///
/// The trace is normalized so that the learning-day peak hour is 0.95; the
/// day-4 surge reaches [`1.3`](DAY4_SURGE_LEVEL), an unforeseen workload
/// volume beyond anything the learning day contained.
///
/// # Example
///
/// ```
/// let t = dejavu_traces::hotmail_week(42);
/// assert_eq!(t.len(), 168);
/// assert!(t.peak() > 1.0); // the day-4 surge
/// ```
pub fn hotmail_week(seed: u64) -> LoadTrace {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x07E1_AA11);
    let mut levels = Vec::with_capacity(168);
    for (day, &shift) in DAY_SHIFTS.iter().enumerate() {
        let weekend = day >= 5;
        for hour in 0..24 {
            let shifted = (hour as i64 - shift + 24) as usize % 24;
            let mut level = hotmail_hour_level(shifted);
            if weekend {
                level *= WEEKEND_FACTOR;
            }
            // Day-4 (index 3) early-afternoon surge: unforeseen volume.
            if day == 3 && (12..=15).contains(&hour) {
                level = DAY4_SURGE_LEVEL;
            }
            let jitter = 1.0 + rng.uniform(-JITTER, JITTER);
            levels.push((level * jitter).clamp(0.0, 1.5));
        }
    }
    LoadTrace::hourly("hotmail", levels).expect("generated levels are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_one_week_hourly() {
        let t = hotmail_week(1);
        assert_eq!(t.len(), 7 * 24);
        assert_eq!(t.num_days(), 7);
        assert_eq!(t.name(), "hotmail");
    }

    #[test]
    fn learning_day_has_about_four_distinct_levels() {
        let t = hotmail_week(2);
        let day1 = t.days(0, 1);
        let mut rounded: Vec<i64> = day1
            .levels()
            .iter()
            .map(|l| (l * 20.0).round() as i64)
            .collect();
        rounded.sort_unstable();
        rounded.dedup();
        assert!(
            (3..=5).contains(&rounded.len()),
            "expected a handful of plateaus, got {}",
            rounded.len()
        );
    }

    #[test]
    fn peak_hour_is_unique_in_learning_day() {
        let t = hotmail_week(3);
        let day1 = t.days(0, 1);
        let peak = day1.peak();
        let near_peak = day1.levels().iter().filter(|&&l| l > peak - 0.05).count();
        assert_eq!(near_peak, 1, "the peak hour forms a singleton class");
    }

    #[test]
    fn day4_surge_exceeds_learning_peak() {
        let t = hotmail_week(4);
        let learning_peak = t.days(0, 1).peak();
        let day4_peak = t.days(3, 4).peak();
        assert!(day4_peak > learning_peak * 1.05);
    }

    #[test]
    fn weekends_are_quieter() {
        let t = hotmail_week(5);
        let weekday_mean = t.days(1, 2).mean();
        let weekend_mean = t.days(5, 7).mean();
        assert!(weekend_mean < weekday_mean);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(hotmail_week(9), hotmail_week(9));
        assert_ne!(hotmail_week(9), hotmail_week(10));
    }

    #[test]
    fn levels_stay_in_valid_range() {
        let t = hotmail_week(6);
        assert!(t.levels().iter().all(|&l| (0.0..=1.5).contains(&l)));
    }
}
