//! Workload descriptions: which service is exercised, how hard, and with what
//! request mix.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The benchmark services used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Cassandra-like distributed key-value store stressed by YCSB-style clients.
    Cassandra,
    /// SPECweb2009-like multi-tier web service (support/banking/e-commerce).
    SpecWeb,
    /// RUBiS-like three-tier auction site (26 client interaction types).
    Rubis,
}

impl ServiceKind {
    /// All modelled services.
    pub const ALL: [ServiceKind; 3] = [
        ServiceKind::Cassandra,
        ServiceKind::SpecWeb,
        ServiceKind::Rubis,
    ];

    /// A short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ServiceKind::Cassandra => "cassandra",
            ServiceKind::SpecWeb => "specweb",
            ServiceKind::Rubis => "rubis",
        }
    }
}

impl fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The read/write composition of the offered requests.
///
/// The paper distinguishes workloads both by intensity and by *type*
/// (e.g. Cassandra's update-heavy 95%-write mix vs. a read-mostly mix, or the
/// SPECweb support workload being read-only); the mix shifts the low-level
/// metric signature even at identical intensity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestMix {
    /// Fraction of read requests in `[0, 1]`; the rest are writes/updates.
    read_fraction: f64,
}

impl RequestMix {
    /// Creates a mix with the given read fraction.
    ///
    /// # Panics
    ///
    /// Panics if `read_fraction` is outside `[0, 1]` or not finite.
    pub fn new(read_fraction: f64) -> Self {
        assert!(
            read_fraction.is_finite() && (0.0..=1.0).contains(&read_fraction),
            "read fraction must be within [0, 1]"
        );
        RequestMix { read_fraction }
    }

    /// YCSB-style update-heavy mix used for the Cassandra experiments
    /// (95% writes, 5% reads).
    pub fn update_heavy() -> Self {
        RequestMix::new(0.05)
    }

    /// A read-only mix (the SPECweb support workload).
    pub fn read_only() -> Self {
        RequestMix::new(1.0)
    }

    /// A balanced mix.
    pub fn balanced() -> Self {
        RequestMix::new(0.5)
    }

    /// Fraction of reads in `[0, 1]`.
    pub fn read_fraction(self) -> f64 {
        self.read_fraction
    }

    /// Fraction of writes in `[0, 1]`.
    pub fn write_fraction(self) -> f64 {
        1.0 - self.read_fraction
    }
}

impl Default for RequestMix {
    fn default() -> Self {
        RequestMix::balanced()
    }
}

/// Normalized workload intensity: the offered load as a fraction of the peak
/// load the service can sustain at full capacity.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct WorkloadIntensity(f64);

impl WorkloadIntensity {
    /// Zero load.
    pub const ZERO: WorkloadIntensity = WorkloadIntensity(0.0);
    /// Peak load (100% of full-capacity saturation).
    pub const PEAK: WorkloadIntensity = WorkloadIntensity(1.0);

    /// Creates an intensity, clamping to `[0, 1.5]` (values above 1.0 represent
    /// unforeseen overload beyond the provisioned peak).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite or is negative.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "intensity must be finite and non-negative"
        );
        WorkloadIntensity(value.min(1.5))
    }

    /// The normalized value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to an absolute client count given the clients served at peak.
    pub fn to_clients(self, peak_clients: u32) -> u32 {
        (self.0 * peak_clients as f64).round() as u32
    }
}

impl Default for WorkloadIntensity {
    fn default() -> Self {
        WorkloadIntensity::ZERO
    }
}

/// A workload observed at one point in time: the service being exercised, the
/// normalized intensity and the request mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The service this workload targets.
    pub service: ServiceKind,
    /// Normalized offered load.
    pub intensity: WorkloadIntensity,
    /// Read/write composition.
    pub mix: RequestMix,
}

impl Workload {
    /// Creates a workload description.
    pub fn new(service: ServiceKind, intensity: WorkloadIntensity, mix: RequestMix) -> Self {
        Workload {
            service,
            intensity,
            mix,
        }
    }

    /// Convenience constructor from a raw intensity value.
    pub fn with_intensity(service: ServiceKind, intensity: f64, mix: RequestMix) -> Self {
        Workload::new(service, WorkloadIntensity::new(intensity), mix)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {:.0}% ({}R/{}W)",
            self.service,
            self.intensity.value() * 100.0,
            (self.mix.read_fraction() * 100.0).round(),
            (self.mix.write_fraction() * 100.0).round()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_mix_constructors() {
        assert_eq!(RequestMix::update_heavy().write_fraction(), 0.95);
        assert_eq!(RequestMix::read_only().read_fraction(), 1.0);
        assert_eq!(RequestMix::balanced().read_fraction(), 0.5);
        assert_eq!(RequestMix::default(), RequestMix::balanced());
    }

    #[test]
    #[should_panic]
    fn request_mix_rejects_out_of_range() {
        let _ = RequestMix::new(1.5);
    }

    #[test]
    fn intensity_clamps_overload() {
        assert_eq!(WorkloadIntensity::new(0.5).value(), 0.5);
        assert_eq!(WorkloadIntensity::new(3.0).value(), 1.5);
        assert_eq!(WorkloadIntensity::new(0.5).to_clients(1000), 500);
    }

    #[test]
    #[should_panic]
    fn intensity_rejects_negative() {
        let _ = WorkloadIntensity::new(-0.1);
    }

    #[test]
    fn workload_display_mentions_service_and_load() {
        let w = Workload::with_intensity(ServiceKind::Cassandra, 0.75, RequestMix::update_heavy());
        let s = w.to_string();
        assert!(s.contains("cassandra"));
        assert!(s.contains("75"));
    }

    #[test]
    fn service_kind_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            ServiceKind::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), ServiceKind::ALL.len());
    }
}
