//! Offline API-shape stand-in for [serde](https://serde.rs).
//!
//! The workspace builds hermetically (no crates.io access), so this crate
//! provides just enough of serde's surface for the sources to compile: the
//! `Serialize`/`Deserialize` marker traits and the derive macros (which emit
//! no code). No data is serialized anywhere in the workspace; replacing this
//! stub with the real serde is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
