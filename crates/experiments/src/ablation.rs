//! Ablations over DejaVu's design choices (DESIGN.md: ABL-CLF, ABL-SIG):
//! which classifier family is used, and how many metrics the signature keeps.

use crate::report::Report;
use dejavu_core::{ClassifierKind, DejaVuConfig, DejaVuController};
use dejavu_services::CassandraService;
use dejavu_traces::{messenger_week, RequestMix};

use crate::engine::{RunConfig, SimulationEngine};

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Cache hit rate during reuse.
    pub hit_rate: f64,
    /// SLO violation fraction.
    pub violation_fraction: f64,
    /// Reuse-period cost in USD.
    pub reuse_cost: f64,
    /// Number of workload classes identified.
    pub num_classes: usize,
}

/// The ablation result.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Classifier-family rows.
    pub classifiers: Vec<AblationRow>,
    /// Signature-size rows.
    pub signature_sizes: Vec<AblationRow>,
}

impl AblationResult {
    /// Renders the ablations.
    pub fn report(&self) -> Report {
        let mut r = Report::new("Ablations: classifier family and signature size");
        for row in self.classifiers.iter().chain(&self.signature_sizes) {
            r.kv(
                &row.variant,
                format!(
                    "hit rate {:.0}%, violations {:.1}%, classes {}, reuse cost ${:.0}",
                    row.hit_rate * 100.0,
                    row.violation_fraction * 100.0,
                    row.num_classes,
                    row.reuse_cost
                ),
            );
        }
        r
    }
}

fn run_variant(variant: String, config: DejaVuConfig, seed: u64) -> AblationRow {
    let service = CassandraService::update_heavy();
    let cfg = RunConfig::scale_out(
        format!("ablation-{variant}"),
        messenger_week(seed).days(0, 3),
        RequestMix::update_heavy(),
        seed,
    );
    let engine = SimulationEngine::new(cfg);
    let mut controller =
        DejaVuController::new(config, Box::new(service), engine.config().space.clone());
    let run = engine.run(&service, &mut controller);
    let stats = controller.stats();
    AblationRow {
        variant,
        hit_rate: stats.hit_rate(),
        violation_fraction: run.slo_violation_fraction,
        reuse_cost: run.reuse_cost,
        num_classes: stats.num_classes,
    }
}

/// Runs both ablations (on a shortened 3-day Messenger trace to keep the
/// sweep cheap).
pub fn run(seed: u64) -> AblationResult {
    let classifiers = [
        ("decision-tree", ClassifierKind::DecisionTree),
        ("naive-bayes", ClassifierKind::NaiveBayes),
        ("nearest-centroid", ClassifierKind::NearestCentroid),
    ]
    .into_iter()
    .map(|(name, kind)| {
        run_variant(
            format!("classifier={name}"),
            DejaVuConfig::builder().classifier(kind).seed(seed).build(),
            seed,
        )
    })
    .collect();
    let signature_sizes = [2usize, 4, 8, 16]
        .into_iter()
        .map(|n| {
            run_variant(
                format!("signature-metrics={n}"),
                DejaVuConfig::builder()
                    .max_signature_metrics(n)
                    .seed(seed)
                    .build(),
                seed,
            )
        })
        .collect();
    AblationResult {
        classifiers,
        signature_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_work_well_on_recurring_workloads() {
        let a = run(1);
        assert_eq!(a.classifiers.len(), 3);
        assert_eq!(a.signature_sizes.len(), 4);
        for row in a.classifiers.iter().chain(&a.signature_sizes) {
            assert!(
                row.hit_rate > 0.6,
                "{} hit rate {}",
                row.variant,
                row.hit_rate
            );
            assert!(
                row.violation_fraction < 0.15,
                "{} violations {}",
                row.variant,
                row.violation_fraction
            );
            assert!(row.num_classes >= 2);
        }
        assert!(a.report().to_string().contains("classifier"));
    }
}
