//! A synthetic week-long trace with the structure of the Windows Live
//! Messenger load trace used in the paper (hourly samples, one week,
//! normalized, aggregated over thousands of servers).
//!
//! Compared to the HotMail-style trace, the Messenger-style trace has its load
//! concentrated in the evening, a broader peak, and no anomalous day — the
//! learning day is representative of the whole week, which is why DejaVu
//! achieves uninterrupted reuse on it (Figure 6).

use crate::trace::LoadTrace;
use dejavu_simcore::SimRng;

/// Hour-of-day plateau levels for a Messenger-style weekday.
///
/// Four distinct levels: night, morning, afternoon and the evening peak —
/// the paper's initial tuning on this trace produces four workload classes.
pub(crate) fn messenger_hour_level(hour_of_day: usize) -> f64 {
    match hour_of_day {
        0..=5 => 0.15,
        6..=10 => 0.35,
        11..=16 => 0.5,
        17..=21 => 0.9,
        22..=23 => 0.35,
        _ => unreachable!("hour_of_day is always < 24"),
    }
}

/// Relative weekend load.
const WEEKEND_FACTOR: f64 = 0.93;

/// Per-sample multiplicative jitter.
const JITTER: f64 = 0.01;

/// Per-day shift (in hours) of the diurnal pattern (see the HotMail generator).
const DAY_SHIFTS: [i64; 7] = [0, -1, 1, 2, -1, 0, 1];

/// Generates the week-long Messenger-style trace.
///
/// # Example
///
/// ```
/// let t = dejavu_traces::messenger_week(7);
/// assert_eq!(t.len(), 168);
/// assert!(t.peak() <= 1.0);
/// ```
pub fn messenger_week(seed: u64) -> LoadTrace {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x4D53_4E21);
    let mut levels = Vec::with_capacity(168);
    for (day, &shift) in DAY_SHIFTS.iter().enumerate() {
        let weekend = day >= 5;
        for hour in 0..24 {
            let shifted = (hour as i64 - shift + 24) as usize % 24;
            let mut level = messenger_hour_level(shifted);
            if weekend {
                level *= WEEKEND_FACTOR;
            }
            let jitter = 1.0 + rng.uniform(-JITTER, JITTER);
            levels.push((level * jitter).clamp(0.0, 1.5));
        }
    }
    LoadTrace::hourly("messenger", levels).expect("generated levels are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_one_week_hourly() {
        let t = messenger_week(1);
        assert_eq!(t.len(), 168);
        assert_eq!(t.num_days(), 7);
        assert_eq!(t.name(), "messenger");
    }

    #[test]
    fn learning_day_has_four_distinct_levels() {
        let t = messenger_week(2);
        let day1 = t.days(0, 1);
        let mut rounded: Vec<i64> = day1
            .levels()
            .iter()
            .map(|l| (l * 20.0).round() as i64)
            .collect();
        rounded.sort_unstable();
        rounded.dedup();
        assert!(
            (3..=5).contains(&rounded.len()),
            "expected four plateaus, got {}",
            rounded.len()
        );
    }

    #[test]
    fn evening_is_the_peak() {
        let t = messenger_week(3);
        let day = t.days(0, 1);
        let evening_mean: f64 = day.levels()[17..=21].iter().sum::<f64>() / 5.0;
        let morning_mean: f64 = day.levels()[6..=10].iter().sum::<f64>() / 5.0;
        assert!(evening_mean > morning_mean);
    }

    #[test]
    fn no_unforeseen_surge() {
        let t = messenger_week(4);
        let learning_peak = t.days(0, 1).peak();
        for d in 1..7 {
            assert!(
                t.days(d, d + 1).peak() <= learning_peak * 1.05,
                "day {d} should not exceed the learning-day peak"
            );
        }
    }

    #[test]
    fn differs_from_hotmail_shape() {
        let m = messenger_week(5);
        let h = crate::hotmail::hotmail_week(5);
        // Different peak hours: HotMail peaks early afternoon, Messenger in the evening.
        let m_day = m.days(0, 1);
        let h_day = h.days(0, 1);
        let m_peak_hour = m_day
            .levels()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let h_peak_hour = h_day
            .levels()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(m_peak_hour >= 17);
        assert!((12..=17).contains(&h_peak_hour));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(messenger_week(11), messenger_week(11));
    }
}
