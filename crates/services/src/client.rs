//! Client emulators: turn a trace level into offered load and measure the
//! resulting performance with realistic measurement noise.

use crate::perf::PerfSample;
use crate::service::{EvalContext, ServiceModel};
use dejavu_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// A client emulator for a service deployment.
///
/// The paper's benchmarks ship client emulators that generate requests and
/// collect throughput/latency statistics; this emulator adds the small
/// measurement noise a real emulator would observe on top of the service
/// model's steady-state prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientEmulator {
    /// Number of emulated clients at the trace peak (intensity 1.0).
    pub peak_clients: u32,
    /// Relative measurement noise (standard deviation as a fraction of the value).
    pub measurement_noise: f64,
}

impl Default for ClientEmulator {
    fn default() -> Self {
        ClientEmulator {
            peak_clients: 1_000,
            measurement_noise: 0.03,
        }
    }
}

impl ClientEmulator {
    /// Creates an emulator with the given peak client population.
    ///
    /// # Panics
    ///
    /// Panics if `peak_clients` is zero or the noise fraction is negative.
    pub fn new(peak_clients: u32, measurement_noise: f64) -> Self {
        assert!(peak_clients > 0, "need at least one client");
        assert!(measurement_noise >= 0.0, "noise must be non-negative");
        ClientEmulator {
            peak_clients,
            measurement_noise,
        }
    }

    /// Number of active clients at the given intensity.
    pub fn active_clients(&self, intensity: f64) -> u32 {
        (intensity.max(0.0) * self.peak_clients as f64).round() as u32
    }

    /// Measures the service at `intensity` under `ctx`, adding measurement noise.
    pub fn measure<S: ServiceModel + ?Sized>(
        &self,
        service: &S,
        intensity: f64,
        ctx: &EvalContext,
        rng: &mut SimRng,
    ) -> PerfSample {
        let ideal = service.evaluate(intensity, ctx);
        let noise = |rng: &mut SimRng, v: f64| {
            if self.measurement_noise == 0.0 {
                v
            } else {
                (rng.normal(v, v.abs() * self.measurement_noise)).max(0.0)
            }
        };
        PerfSample {
            latency_ms: noise(rng, ideal.latency_ms),
            qos_percent: noise(rng, ideal.qos_percent).min(100.0),
            throughput_rps: noise(rng, ideal.throughput_rps),
            utilization: ideal.utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cassandra::CassandraService;
    use dejavu_simcore::SimTime;

    #[test]
    fn client_count_scales_with_intensity() {
        let c = ClientEmulator::new(500, 0.0);
        assert_eq!(c.active_clients(0.0), 0);
        assert_eq!(c.active_clients(0.5), 250);
        assert_eq!(c.active_clients(1.0), 500);
    }

    #[test]
    fn measurement_noise_is_bounded_and_unbiased() {
        let c = ClientEmulator::new(500, 0.03);
        let svc = CassandraService::update_heavy();
        let ctx = EvalContext::steady(SimTime::ZERO, 8.0);
        let ideal = svc.evaluate(0.6, &ctx);
        let mut rng = SimRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..200)
            .map(|_| c.measure(&svc, 0.6, &ctx, &mut rng).latency_ms)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - ideal.latency_ms).abs() / ideal.latency_ms < 0.02);
        assert!(samples.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn zero_noise_reproduces_model() {
        let c = ClientEmulator::new(500, 0.0);
        let svc = CassandraService::update_heavy();
        let ctx = EvalContext::steady(SimTime::ZERO, 8.0);
        let mut rng = SimRng::seed_from_u64(2);
        let m = c.measure(&svc, 0.6, &ctx, &mut rng);
        let ideal = svc.evaluate(0.6, &ctx);
        assert_eq!(m.latency_ms, ideal.latency_ms);
        assert_eq!(m.utilization, ideal.utilization);
    }

    #[test]
    #[should_panic]
    fn zero_clients_rejected() {
        let _ = ClientEmulator::new(0, 0.01);
    }
}
