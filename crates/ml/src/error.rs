//! Error type for the ML crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the ML algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// The dataset is empty but the operation needs at least one instance.
    EmptyDataset,
    /// The dataset has no labels but the operation needs supervised data.
    MissingLabels,
    /// The requested number of clusters/classes is invalid for this dataset.
    InvalidK {
        /// Requested value.
        requested: usize,
        /// Number of available instances.
        available: usize,
    },
    /// An instance had the wrong number of features.
    DimensionMismatch {
        /// Expected number of features.
        expected: usize,
        /// Provided number of features.
        found: usize,
    },
    /// A configuration parameter was out of range.
    InvalidConfig(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => write!(f, "dataset is empty"),
            MlError::MissingLabels => write!(f, "dataset has no class labels"),
            MlError::InvalidK {
                requested,
                available,
            } => write!(
                f,
                "invalid number of clusters {requested} for {available} instances"
            ),
            MlError::DimensionMismatch { expected, found } => {
                write!(f, "expected {expected} features, found {found}")
            }
            MlError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = [
            MlError::EmptyDataset,
            MlError::MissingLabels,
            MlError::InvalidK {
                requested: 5,
                available: 2,
            },
            MlError::DimensionMismatch {
                expected: 3,
                found: 1,
            },
            MlError::InvalidConfig("bad".into()),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<MlError>();
    }
}
