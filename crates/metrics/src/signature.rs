//! The workload signature: an ordered tuple of named metric values, normalized
//! by the sampling duration (§3.3, equation (1) of the paper).

use dejavu_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A workload signature `WS = {m_1, m_2, ..., m_N}`.
///
/// Raw counter values accumulated over a sampling window are divided by the
/// window length, so signatures are comparable regardless of how long the
/// profiler sampled — the normalization the paper calls out as what lets
/// signatures "generalize across workloads regardless of how long the sampling
/// takes".
///
/// # Example
///
/// ```
/// use dejavu_metrics::WorkloadSignature;
/// use dejavu_simcore::SimDuration;
///
/// let a = WorkloadSignature::from_raw(
///     vec!["flops".into(), "cpu".into()],
///     vec![1000.0, 50.0],
///     SimDuration::from_secs(10.0),
/// );
/// let b = WorkloadSignature::from_raw(
///     vec!["flops".into(), "cpu".into()],
///     vec![2000.0, 100.0],
///     SimDuration::from_secs(20.0),
/// );
/// // Same workload observed for twice as long: identical normalized signatures.
/// assert!(a.distance(&b) < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSignature {
    /// Metric names, shared between signatures: every signature the sampler
    /// or a projection produces carries the same name list, so cloning a
    /// signature (the profiling hot path does, fleet-wide and hourly) bumps
    /// a reference count instead of copying one `String` per metric.
    names: Arc<[String]>,
    /// Normalized (per-second) metric values.
    values: Vec<f64>,
    /// The sampling window the raw values were accumulated over.
    sampling: SimDuration,
}

impl WorkloadSignature {
    /// Builds a signature from raw accumulated counter values and the sampling
    /// duration; values are normalized to per-second rates.
    ///
    /// # Panics
    ///
    /// Panics if `names` and `raw_values` have different lengths or the
    /// duration is zero.
    pub fn from_raw(names: Vec<String>, raw_values: Vec<f64>, sampling: SimDuration) -> Self {
        Self::from_raw_shared(names.into(), raw_values, sampling)
    }

    /// [`from_raw`](Self::from_raw) over an already-shared name list — the
    /// samplers cache one `Arc` per catalogue, so per-signature allocation is
    /// just the value vector.
    pub fn from_raw_shared(
        names: Arc<[String]>,
        raw_values: Vec<f64>,
        sampling: SimDuration,
    ) -> Self {
        assert_eq!(names.len(), raw_values.len(), "one value per metric name");
        assert!(!sampling.is_zero(), "sampling duration must be positive");
        let secs = sampling.as_secs();
        WorkloadSignature {
            names,
            values: raw_values.into_iter().map(|v| v / secs).collect(),
            sampling,
        }
    }

    /// Builds a signature directly from already-normalized per-second values.
    ///
    /// # Panics
    ///
    /// Panics if `names` and `values` have different lengths.
    pub fn from_normalized(names: Vec<String>, values: Vec<f64>, sampling: SimDuration) -> Self {
        Self::from_normalized_shared(names.into(), values, sampling)
    }

    /// [`from_normalized`](Self::from_normalized) over an already-shared name
    /// list.
    pub fn from_normalized_shared(
        names: Arc<[String]>,
        values: Vec<f64>,
        sampling: SimDuration,
    ) -> Self {
        assert_eq!(names.len(), values.len(), "one value per metric name");
        WorkloadSignature {
            names,
            values,
            sampling,
        }
    }

    /// The shared name list (for building further signatures over the same
    /// metrics without re-allocating names).
    pub fn shared_names(&self) -> Arc<[String]> {
        Arc::clone(&self.names)
    }

    /// Metric names, in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Normalized metric values, in the same order as [`names`](Self::names).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of metrics in the signature.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if the signature carries no metrics.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sampling window used to collect the signature.
    pub fn sampling(&self) -> SimDuration {
        self.sampling
    }

    /// The normalized value of the metric called `name`, if present.
    pub fn value_of(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.values[i])
    }

    /// Returns a signature containing only the metrics at `indices`
    /// (in the given order) — used after feature selection.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn project(&self, indices: &[usize]) -> WorkloadSignature {
        let names: Arc<[String]> = indices.iter().map(|&i| self.names[i].clone()).collect();
        self.project_shared(indices, names)
    }

    /// [`project`](Self::project) with a pre-built projected name list (one
    /// `Arc` per feature selection, not one allocation per projection).
    pub fn project_shared(&self, indices: &[usize], names: Arc<[String]>) -> WorkloadSignature {
        let values = indices.iter().map(|&i| self.values[i]).collect();
        WorkloadSignature {
            names,
            values,
            sampling: self.sampling,
        }
    }

    /// Euclidean distance between two signatures over the same metric set.
    ///
    /// # Panics
    ///
    /// Panics if the signatures have different lengths.
    pub fn distance(&self, other: &WorkloadSignature) -> f64 {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "signatures must cover the same metrics"
        );
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl fmt::Display for WorkloadSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WS{{")?;
        for (i, (n, v)) in self.names.iter().zip(&self.values).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}={v:.2}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(values: Vec<f64>, secs: f64) -> WorkloadSignature {
        let names = (0..values.len()).map(|i| format!("m{i}")).collect();
        WorkloadSignature::from_raw(names, values, SimDuration::from_secs(secs))
    }

    #[test]
    fn normalization_by_duration() {
        let s = sig(vec![100.0, 50.0], 10.0);
        assert_eq!(s.values(), &[10.0, 5.0]);
        assert_eq!(s.sampling(), SimDuration::from_secs(10.0));
    }

    #[test]
    fn sampling_duration_invariance() {
        let short = sig(vec![100.0, 50.0], 10.0);
        let long = sig(vec![1000.0, 500.0], 100.0);
        assert!(short.distance(&long) < 1e-12);
    }

    #[test]
    fn lookup_and_projection() {
        let s = WorkloadSignature::from_raw(
            vec!["a".into(), "b".into(), "c".into()],
            vec![10.0, 20.0, 30.0],
            SimDuration::from_secs(1.0),
        );
        assert_eq!(s.value_of("b"), Some(20.0));
        assert_eq!(s.value_of("zzz"), None);
        let p = s.project(&[2, 0]);
        assert_eq!(p.names(), &["c".to_string(), "a".to_string()]);
        assert_eq!(p.values(), &[30.0, 10.0]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = sig(vec![0.0, 0.0], 1.0);
        let b = sig(vec![3.0, 4.0], 1.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = WorkloadSignature::from_raw(
            vec!["a".into()],
            vec![1.0, 2.0],
            SimDuration::from_secs(1.0),
        );
    }

    #[test]
    #[should_panic]
    fn zero_duration_panics() {
        let _ = sig(vec![1.0], 0.0);
    }

    #[test]
    fn display_contains_names_and_values() {
        let s = sig(vec![4.0], 2.0);
        let text = s.to_string();
        assert!(text.contains("m0"));
        assert!(text.contains("2.00"));
    }
}
