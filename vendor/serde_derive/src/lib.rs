//! No-op stand-ins for serde's `#[derive(Serialize, Deserialize)]` macros.
//!
//! The workspace builds in a hermetic environment with no access to crates.io,
//! so the real `serde_derive` cannot be vendored. Nothing in the workspace
//! actually serializes data — the derives only decorate types so that the code
//! keeps serde-compatible shape — so emitting no impls at all is sufficient.
//! Swapping this crate for the real one requires no source change.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
