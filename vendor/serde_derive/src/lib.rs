//! Stand-ins for serde's `#[derive(Serialize, Deserialize)]` macros.
//!
//! The workspace builds in a hermetic environment with no access to crates.io,
//! so the real `serde_derive` cannot be vendored. Unlike the original no-op
//! stubs, these derives emit real (empty) impls of the marker traits in
//! `vendor/serde`, so code can use `T: serde::Serialize` bounds — the fleet
//! snapshot module compile-time-asserts them on its types — and still compile
//! unchanged against the real serde, whose derives also emit impls of those
//! traits. Swapping in the real crates remains a manifest-only change.
//!
//! Limitation kept deliberately small: for generic types (e.g. `FlatMap<K, V>`)
//! the derive emits nothing, because mirroring serde's per-parameter bounds
//! without `syn` is not worth the complexity — no generic type in the
//! workspace is used through a serde bound.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the derived type, or `None` when the type is generic
/// (in which case no impl is emitted — see the crate docs).
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    // Any token that is not the `struct`/`enum` keyword — attribute bodies
    // (`#[...]`, doc comments), visibility — is skipped.
    while let Some(tree) = tokens.next() {
        let TokenTree::Ident(ident) = tree else {
            continue;
        };
        let word = ident.to_string();
        if word != "struct" && word != "enum" {
            continue;
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(name)) => name.to_string(),
            _ => return None,
        };
        // A `<` right after the name means generic parameters.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '<' {
                return None;
            }
        }
        return Some(name);
    }
    None
}

/// Emits `impl ::serde::Serialize for T {}` for non-generic `T`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}

/// Emits `impl<'de> ::serde::Deserialize<'de> for T {}` for non-generic `T`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}
