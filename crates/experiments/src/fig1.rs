//! Figure 1 — the motivating experiment: a RUBiS deployment whose workload
//! volume follows a sine wave (changing every 10 minutes) managed by the
//! state-of-the-art experiment-driven tuner, which spends minutes retuning on
//! every change and leaves the service either under-performing ("bad
//! performance") or over-charged.

use crate::engine::{RunConfig, RunResult, SimulationEngine};
use crate::report::{pct, Report};
use dejavu_baselines::OnlineTuning;
use dejavu_services::{RubisService, ServiceModel};
use dejavu_simcore::SimDuration;
use dejavu_traces::sine::sine_trace;

/// The Figure-1 result.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// The state-of-the-art (online experiment-driven tuning) run.
    pub online_tuning: RunResult,
    /// Fraction of time the SLO was violated.
    pub violation_fraction: f64,
    /// Mean adaptation (retuning) time in seconds.
    pub mean_retuning_secs: f64,
}

impl Fig1Result {
    /// Renders the figure.
    pub fn report(&self) -> Report {
        let mut r = Report::new("Figure 1: state-of-the-art retuning under a sine-wave RUBiS load");
        r.kv("SLO violation fraction", pct(self.violation_fraction));
        r.kv(
            "mean retuning time (s)",
            format!("{:.0}", self.mean_retuning_secs),
        );
        r.kv("adaptations", self.online_tuning.adaptations.len());
        r.hourly("load", &self.online_tuning.load, 2);
        r.hourly("latency ms", &self.online_tuning.latency_ms, 2);
        r
    }
}

/// Runs the Figure-1 experiment.
pub fn run(seed: u64) -> Fig1Result {
    let trace = sine_trace(
        "rubis-sine",
        SimDuration::from_mins(10.0),
        SimDuration::from_mins(80.0),
        SimDuration::from_mins(40.0),
        0.5,
        0.45,
    )
    .expect("static parameters are valid");
    let service = RubisService::default_browsing();
    let cfg = RunConfig::scale_out("fig1", trace, service.default_mix(), seed)
        .with_tick(SimDuration::from_secs(5.0));
    let engine = SimulationEngine::new(cfg);
    let mut controller = OnlineTuning::new(
        Box::new(RubisService::default_browsing()),
        engine.config().space.clone(),
    );
    let run = engine.run(&service, &mut controller);
    Fig1Result {
        violation_fraction: run.slo_violation_fraction,
        mean_retuning_secs: run.mean_adaptation_secs(),
        online_tuning: run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_of_the_art_spends_minutes_retuning() {
        let fig = run(1);
        assert!(
            fig.mean_retuning_secs > 60.0,
            "retuning {}",
            fig.mean_retuning_secs
        );
        assert!(
            fig.violation_fraction > 0.02,
            "violations {}",
            fig.violation_fraction
        );
        assert!(fig.online_tuning.adaptations.len() >= 3);
        assert!(fig.report().to_string().contains("retuning"));
    }
}
