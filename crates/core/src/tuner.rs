//! The Tuner: determines the sufficient-but-not-wasteful allocation for a
//! workload class (§3.4).
//!
//! The choice of tuning mechanism is orthogonal to DejaVu; the paper's
//! evaluation uses a simple linear search over the allocation space, replaying
//! the workload against each candidate in a sandbox until the SLO is met.
//! Each sandboxed experiment takes real time, which is what makes tuning
//! expensive and caching worthwhile.

use dejavu_cloud::{AllocationSpace, ResourceAllocation};
use dejavu_services::service::EvalContext;
use dejavu_services::ServiceModel;
use dejavu_simcore::{SimDuration, SimTime};
use dejavu_traces::Workload;
use serde::{Deserialize, Serialize};

/// The result of one tuning run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningOutcome {
    /// The chosen allocation (the cheapest candidate meeting the SLO, or full
    /// capacity if none does).
    pub allocation: ResourceAllocation,
    /// Number of sandboxed experiments executed.
    pub experiments_run: usize,
    /// Wall-clock time the tuning took.
    pub duration: SimDuration,
    /// Whether any candidate met the SLO.
    pub slo_reachable: bool,
}

/// A tuning mechanism.
pub trait Tuner {
    /// Determines the preferred allocation for `workload` on `service`,
    /// inflating the required capacity by `capacity_inflation` (≥ 1.0) to
    /// account for known interference.
    fn tune(
        &self,
        workload: &Workload,
        service: &dyn ServiceModel,
        space: &AllocationSpace,
        capacity_inflation: f64,
    ) -> TuningOutcome;
}

/// Linear search from the cheapest allocation upwards, replaying the workload
/// against each candidate in a sandbox.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearSearchTuner {
    /// How long each sandboxed experiment takes (the paper cites ≈ 3 minutes
    /// of total adaptation for state-of-the-art experiment-based tuning).
    pub per_experiment: SimDuration,
}

impl Default for LinearSearchTuner {
    fn default() -> Self {
        LinearSearchTuner {
            per_experiment: SimDuration::from_secs(60.0),
        }
    }
}

impl LinearSearchTuner {
    /// Creates a tuner with the given per-experiment duration.
    pub fn new(per_experiment: SimDuration) -> Self {
        LinearSearchTuner { per_experiment }
    }
}

impl Tuner for LinearSearchTuner {
    fn tune(
        &self,
        workload: &Workload,
        service: &dyn ServiceModel,
        space: &AllocationSpace,
        capacity_inflation: f64,
    ) -> TuningOutcome {
        let inflation = capacity_inflation.max(1.0);
        let mut experiments = 0;
        for &candidate in space.candidates() {
            experiments += 1;
            // The sandbox has no co-located tenants; interference is modelled
            // by discounting the candidate's capacity.
            let effective = candidate.capacity_units() / inflation;
            let sample = service.evaluate(
                workload.intensity.value(),
                &EvalContext::steady(SimTime::ZERO, effective),
            );
            if service.slo().is_met(&sample) {
                return TuningOutcome {
                    allocation: candidate,
                    experiments_run: experiments,
                    duration: self.per_experiment * experiments as f64,
                    slo_reachable: true,
                };
            }
        }
        TuningOutcome {
            allocation: space.full_capacity(),
            experiments_run: experiments,
            duration: self.per_experiment * experiments as f64,
            slo_reachable: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_services::{CassandraService, SpecWebService, SpecWebWorkload};
    use dejavu_traces::{RequestMix, ServiceKind};

    fn cassandra_workload(intensity: f64) -> Workload {
        Workload::with_intensity(
            ServiceKind::Cassandra,
            intensity,
            RequestMix::update_heavy(),
        )
    }

    #[test]
    fn picks_the_minimal_scale_out_allocation() {
        let tuner = LinearSearchTuner::default();
        let svc = CassandraService::update_heavy();
        let space = AllocationSpace::scale_out(1, 10).unwrap();
        let out = tuner.tune(&cassandra_workload(0.5), &svc, &space, 1.0);
        assert!(out.slo_reachable);
        // Roughly 10 × intensity large instances.
        assert!(out.allocation.count() >= 5 && out.allocation.count() <= 6);
        // The next-cheaper allocation must not meet the SLO (not wasteful).
        let cheaper = ResourceAllocation::large(out.allocation.count() - 1);
        let sample = svc.evaluate(
            0.5,
            &EvalContext::steady(SimTime::ZERO, cheaper.capacity_units()),
        );
        assert!(!svc.slo().is_met(&sample));
    }

    #[test]
    fn tuning_time_scales_with_experiments() {
        let tuner = LinearSearchTuner::default();
        let svc = CassandraService::update_heavy();
        let space = AllocationSpace::scale_out(1, 10).unwrap();
        let low = tuner.tune(&cassandra_workload(0.2), &svc, &space, 1.0);
        let high = tuner.tune(&cassandra_workload(0.9), &svc, &space, 1.0);
        assert!(high.experiments_run > low.experiments_run);
        assert!(high.duration > low.duration);
        assert_eq!(low.duration.as_secs(), 60.0 * low.experiments_run as f64);
    }

    #[test]
    fn interference_inflation_buys_more_instances() {
        let tuner = LinearSearchTuner::default();
        let svc = CassandraService::update_heavy();
        let space = AllocationSpace::scale_out(1, 10).unwrap();
        let clean = tuner.tune(&cassandra_workload(0.5), &svc, &space, 1.0);
        let interfered = tuner.tune(&cassandra_workload(0.5), &svc, &space, 1.0 / 0.8);
        assert!(interfered.allocation.count() > clean.allocation.count());
    }

    #[test]
    fn scale_up_chooses_instance_type() {
        let tuner = LinearSearchTuner::default();
        let svc = SpecWebService::new(SpecWebWorkload::Support);
        let space = AllocationSpace::scale_up(5).unwrap();
        let low = tuner.tune(
            &Workload::with_intensity(ServiceKind::SpecWeb, 0.4, RequestMix::read_only()),
            &svc,
            &space,
            1.0,
        );
        let peak = tuner.tune(
            &Workload::with_intensity(ServiceKind::SpecWeb, 0.95, RequestMix::read_only()),
            &svc,
            &space,
            1.0,
        );
        assert_eq!(low.allocation, ResourceAllocation::large(5));
        assert_eq!(peak.allocation, ResourceAllocation::extra_large(5));
    }

    #[test]
    fn unreachable_slo_falls_back_to_full_capacity() {
        let tuner = LinearSearchTuner::default();
        let svc = CassandraService::update_heavy();
        let space = AllocationSpace::scale_out(1, 3).unwrap();
        let out = tuner.tune(&cassandra_workload(1.0), &svc, &space, 1.0);
        assert!(!out.slo_reachable);
        assert_eq!(out.allocation, space.full_capacity());
        assert_eq!(out.experiments_run, 3);
    }
}
