//! Benchmarks of the fleet-shared signature repository's hot path and of a
//! small end-to-end fleet run.
//!
//! Run with `cargo bench -p dejavu-bench --bench fleet_benchmarks`.

use criterion::{criterion_group, criterion_main, Criterion};
use dejavu_cloud::ResourceAllocation;
use dejavu_fleet::{
    FleetConfig, FleetEngine, ScenarioBuilder, SharedRepoConfig, SharedSignatureRepository,
};
use dejavu_simcore::{SimDuration, SimTime};
use std::hint::black_box;

/// Populates `namespaces × anchors` entries with well-separated signatures.
fn populated(namespaces: u64, anchors: usize) -> SharedSignatureRepository {
    let repo = SharedSignatureRepository::new(SharedRepoConfig::default());
    for ns in 0..namespaces {
        for a in 0..anchors {
            let sig = signature(a);
            repo.insert(
                0,
                ns,
                &sig,
                0,
                ResourceAllocation::large(1 + (a % 9) as u32),
                SimTime::ZERO,
            );
        }
    }
    repo
}

fn signature(anchor: usize) -> [f64; 8] {
    let base = 10.0 * 1.5f64.powi(anchor as i32 % 16);
    [
        base,
        base * 0.5,
        base * 2.0,
        base * 0.1,
        base * 4.0,
        base * 0.25,
        base * 8.0,
        base * 0.75,
    ]
}

fn bench_shared_repo(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_repo");

    group.bench_function("lookup_hit_8_anchors", |b| {
        let repo = populated(4, 8);
        let sig = signature(3);
        b.iter(|| black_box(repo.lookup(1, 2, &sig, 0, SimTime::ZERO)))
    });

    group.bench_function("lookup_miss_8_anchors", |b| {
        let repo = populated(4, 8);
        let sig = [1.0; 8];
        b.iter(|| black_box(repo.lookup(1, 2, &sig, 0, SimTime::ZERO)))
    });

    group.bench_function("peek_read_only", |b| {
        let repo = populated(4, 8);
        let sig = signature(3);
        b.iter(|| black_box(repo.peek(2, &sig, 0, SimTime::ZERO, Some(7))))
    });

    group.bench_function("insert_with_anchor_resolution", |b| {
        let repo = populated(4, 8);
        let sig = signature(5);
        b.iter(|| {
            repo.insert(1, 3, &sig, 0, ResourceAllocation::large(4), SimTime::ZERO);
            black_box(repo.len())
        })
    });

    group.bench_function("concurrent_lookups_8_threads", |b| {
        let repo = populated(16, 8);
        b.iter(|| {
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    let repo = &repo;
                    scope.spawn(move || {
                        let sig = signature((t % 8) as usize);
                        for ns in 0..16 {
                            black_box(repo.lookup(t as usize, ns, &sig, 0, SimTime::ZERO));
                        }
                    });
                }
            })
        })
    });

    group.finish();
}

fn bench_fleet_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(3);
    group.bench_function("fleet_8_tenants_2_days", |b| {
        b.iter(|| {
            let scenario = ScenarioBuilder::new("bench", 5, 2)
                .tick(SimDuration::from_secs(600.0))
                .diurnal_fleet(8)
                .build();
            black_box(FleetEngine::new(scenario, FleetConfig::default()).run())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_shared_repo, bench_fleet_run);
criterion_main!(benches);
