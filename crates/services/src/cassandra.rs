//! The Cassandra-like key-value store model.
//!
//! The paper's scale-out experiments run Cassandra under a YCSB-style
//! update-heavy workload (95% writes / 5% reads) with a 60 ms latency SLO, and
//! note that Cassandra "takes a long time to stabilize (e.g., tens of minutes)"
//! after the number of instances changes because of data re-partitioning.

use crate::perf::{PerfSample, QueueingModel};
use crate::service::{EvalContext, ServiceModel};
use crate::slo::Slo;
use dejavu_simcore::SimDuration;
use dejavu_traces::{RequestMix, ServiceKind};
use serde::{Deserialize, Serialize};

/// Configuration of the Cassandra model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CassandraConfig {
    /// The underlying queueing model.
    pub queueing: QueueingModel,
    /// Latency SLO in milliseconds.
    pub slo_latency_ms: f64,
    /// How long re-partitioning degrades performance after a reconfiguration.
    pub repartition_duration: SimDuration,
    /// Latency multiplier while re-partitioning.
    pub repartition_penalty: f64,
    /// Request mix offered by the client emulator.
    pub mix: RequestMix,
}

impl Default for CassandraConfig {
    fn default() -> Self {
        CassandraConfig {
            queueing: QueueingModel {
                base_latency_ms: 15.0,
                ..QueueingModel::default()
            },
            slo_latency_ms: 60.0,
            repartition_duration: SimDuration::from_mins(10.0),
            repartition_penalty: 1.5,
            mix: RequestMix::update_heavy(),
        }
    }
}

/// The Cassandra-like key-value store.
///
/// # Example
///
/// ```
/// use dejavu_services::{CassandraService, ServiceModel};
/// use dejavu_services::service::EvalContext;
/// use dejavu_simcore::SimTime;
///
/// let svc = CassandraService::update_heavy();
/// let sample = svc.evaluate(0.5, &EvalContext::steady(SimTime::ZERO, 10.0));
/// assert!(svc.slo().is_met(&sample));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CassandraService {
    config: CassandraConfig,
}

impl CassandraService {
    /// Creates a Cassandra model with the given configuration.
    pub fn new(config: CassandraConfig) -> Self {
        CassandraService { config }
    }

    /// The paper's update-heavy configuration (95% writes, 60 ms SLO).
    pub fn update_heavy() -> Self {
        CassandraService::new(CassandraConfig::default())
    }

    /// The model configuration.
    pub fn config(&self) -> &CassandraConfig {
        &self.config
    }
}

impl Default for CassandraService {
    fn default() -> Self {
        CassandraService::update_heavy()
    }
}

impl ServiceModel for CassandraService {
    fn kind(&self) -> ServiceKind {
        ServiceKind::Cassandra
    }

    fn default_mix(&self) -> RequestMix {
        self.config.mix
    }

    fn slo(&self) -> Slo {
        Slo::LatencyMs(self.config.slo_latency_ms)
    }

    fn evaluate(&self, intensity: f64, ctx: &EvalContext) -> PerfSample {
        // Writes are a little more expensive than reads: shift the effective
        // intensity by up to 6% depending on the write fraction.
        let write_factor = 1.0 + 0.06 * (self.config.mix.write_fraction() - 0.5);
        let multiplier = match ctx.since_reconfig {
            Some(d) if d < self.config.repartition_duration => self.config.repartition_penalty,
            _ => 1.0,
        };
        self.config
            .queueing
            .sample(intensity * write_factor, ctx.capacity_units, multiplier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_simcore::SimTime;

    #[test]
    fn meets_slo_with_adequate_capacity() {
        let svc = CassandraService::update_heavy();
        let ok = svc.evaluate(0.5, &EvalContext::steady(SimTime::ZERO, 6.0));
        assert!(svc.slo().is_met(&ok), "latency {}", ok.latency_ms);
        let bad = svc.evaluate(0.9, &EvalContext::steady(SimTime::ZERO, 4.0));
        assert!(!svc.slo().is_met(&bad));
    }

    #[test]
    fn required_capacity_tracks_intensity_roughly_linearly() {
        let svc = CassandraService::update_heavy();
        let c_half = svc.required_capacity(0.5);
        let c_full = svc.required_capacity(1.0);
        assert!(c_full > 1.7 * c_half && c_full < 2.4 * c_half);
        // Full capacity of the paper's deployment is 10 large instances.
        assert!(
            c_full <= 10.5,
            "peak must be servable by 10 instances, got {c_full}"
        );
    }

    #[test]
    fn repartitioning_degrades_latency_temporarily() {
        let svc = CassandraService::update_heavy();
        let during = svc.evaluate(
            0.5,
            &EvalContext {
                time: SimTime::from_secs(60.0),
                capacity_units: 6.0,
                since_reconfig: Some(SimDuration::from_mins(2.0)),
            },
        );
        let after = svc.evaluate(
            0.5,
            &EvalContext {
                time: SimTime::from_secs(60.0),
                capacity_units: 6.0,
                since_reconfig: Some(SimDuration::from_mins(30.0)),
            },
        );
        assert!(during.latency_ms > after.latency_ms * 1.3);
    }

    #[test]
    fn update_heavy_mix_is_write_dominated() {
        let svc = CassandraService::update_heavy();
        assert!(svc.default_mix().write_fraction() > 0.9);
        assert_eq!(svc.kind(), ServiceKind::Cassandra);
        assert_eq!(svc.slo(), Slo::LatencyMs(60.0));
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let write_heavy = CassandraService::update_heavy();
        let read_heavy = CassandraService::new(CassandraConfig {
            mix: RequestMix::new(0.95),
            ..CassandraConfig::default()
        });
        let ctx = EvalContext::steady(SimTime::ZERO, 6.0);
        assert!(
            write_heavy.evaluate(0.7, &ctx).latency_ms > read_heavy.evaluate(0.7, &ctx).latency_ms
        );
    }
}
