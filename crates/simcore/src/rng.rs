//! Seeded random number generation for the simulation.
//!
//! [`SimRng`] is a small facade over a deterministic PRNG (xoshiro-style,
//! implemented locally so that streams are stable across `rand` versions) plus
//! the distributions the experiments need: uniform, normal, exponential,
//! log-normal and Zipf. Sub-streams can be forked per component so that adding
//! randomness in one module does not perturb another.

use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64, used to expand seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable random number generator with the distributions the
/// DejaVu experiments rely on.
///
/// # Example
///
/// ```
/// use dejavu_simcore::SimRng;
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.uniform01(), b.uniform01());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Forks an independent sub-stream identified by `stream`.
    ///
    /// Forks with different `stream` values are statistically independent and
    /// stable: forking does not advance the parent generator.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0] ^ self.s[3] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    fn next(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform range"
        );
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer sample in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize requires n > 0");
        (self.uniform01() * n as f64) as usize % n
    }

    /// Standard normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.uniform01().max(f64::MIN_POSITIVE);
        let u2 = self.uniform01();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Exponential sample with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        -self.uniform01().max(f64::MIN_POSITIVE).ln() / rate
    }

    /// Log-normal sample parameterized by the underlying normal's `mu` and `sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Zipf-distributed rank in `[0, n)` with skew `s` (s = 0 is uniform).
    ///
    /// Uses inverse-CDF sampling over the precomputable harmonic weights; for
    /// the modest `n` used by the request-mix models a linear scan is fine.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf requires n > 0");
        assert!(s >= 0.0, "zipf skew must be non-negative");
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let target = self.uniform01() * norm;
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            if acc >= target {
                return k - 1;
            }
        }
        n - 1
    }

    /// Bernoulli sample with probability `p` of returning `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.uniform01() < p
    }

    /// Returns a uniformly chosen element of `items`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.uniform_usize(items.len())])
        }
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];
    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::seed_from_u64(u64::from_le_bytes(seed))
    }
}

/// Convenience: draw using any `rand::Rng` API on a `SimRng`.
pub fn gen_range_f64<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn fork_is_stable_and_independent() {
        let parent = SimRng::seed_from_u64(99);
        let mut f1 = parent.fork(1);
        let mut f1_again = parent.fork(1);
        let mut f2 = parent.fork(2);
        assert_eq!(f1.next_u64(), f1_again.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
            let u = rng.uniform01();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut rng = SimRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed_from_u64(5);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = SimRng::seed_from_u64(6);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.zipf(10, 1.2)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > counts[9]);
    }

    #[test]
    fn bernoulli_probability() {
        let mut rng = SimRng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(rng.choose(&v).is_some());
        let empty: Vec<u32> = vec![];
        assert!(rng.choose(&empty).is_none());
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = SimRng::seed_from_u64(10);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
