//! Synthetic load traces and workload descriptions for the DejaVu reproduction.
//!
//! The paper drives its evaluation with week-long hourly load traces from
//! HotMail and Windows Live Messenger (September 2009), a sine-wave RUBiS
//! workload for the motivating experiment (Figure 1), and workload-mix
//! variations (read/write ratio, SPECweb workload types). The real traces are
//! not publicly available, so this crate generates synthetic traces with the
//! structural properties the evaluation depends on: hourly granularity, a
//! repeating diurnal pattern with weekday/weekend asymmetry, a distinct peak
//! hour, and (for the HotMail-style trace) a day-4 surge that exercises the
//! unclassified-workload path of Figure 7.
//!
//! * [`workload`] — service kinds, request-mix descriptions and the
//!   [`workload::Workload`] observed at a point in time.
//! * [`trace`] — the [`trace::LoadTrace`] container (hourly normalized load).
//! * [`hotmail`] / [`messenger`] — the two week-long diurnal traces.
//! * [`sine`] — the sine-wave trace of Figure 1.
//! * [`spikes`] — spike/anomaly injection for unforeseen-workload experiments.

pub mod hotmail;
pub mod messenger;
pub mod sine;
pub mod spikes;
pub mod trace;
pub mod workload;

pub use hotmail::hotmail_week;
pub use messenger::messenger_week;
pub use sine::sine_trace;
pub use trace::{LoadTrace, TraceError};
pub use workload::{RequestMix, ServiceKind, Workload, WorkloadIntensity};
