//! The catalogue of low-level metrics DejaVu can include in a workload
//! signature: hardware performance counters (HPC events, collected without
//! instrumenting the guest VM) and `xentop`-reported VM resource metrics.
//!
//! The first eight HPC entries are exactly the events of the paper's Table 1
//! (the RUBiS signature); the rest are representative of the ~60 events a
//! Xeon X5472-class profiling server exposes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a metric comes from a hardware performance counter or from the
/// hypervisor's per-VM accounting (`xentop`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Hardware performance counter read around VM scheduling (Xenoprof-style).
    Hpc,
    /// Per-VM resource consumption reported by the hypervisor (xentop-style).
    Xentop,
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricKind::Hpc => f.write_str("HPC"),
            MetricKind::Xentop => f.write_str("xentop"),
        }
    }
}

/// Identifier of a metric within the [`MetricCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricId(pub usize);

/// Static description of one metric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricDescriptor {
    /// Identifier (index into the catalogue).
    pub id: MetricId,
    /// The event/metric name (e.g. `busq_empty`, `xentop_cpu_pct`).
    pub name: String,
    /// Counter family.
    pub kind: MetricKind,
    /// Human-readable description.
    pub description: String,
}

/// The full set of metrics the profiler can observe.
///
/// # Example
///
/// ```
/// use dejavu_metrics::MetricCatalog;
/// let cat = MetricCatalog::standard();
/// assert!(cat.len() > 20);
/// assert!(cat.find("busq_empty").is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricCatalog {
    metrics: Vec<MetricDescriptor>,
}

/// The Table-1 HPC events of the paper (the metrics CFS selects for RUBiS).
pub const TABLE1_EVENTS: [(&str, &str); 8] = [
    ("busq_empty", "Bus queue is empty"),
    ("cpu_clk_unhalted", "Clock cycles when not halted"),
    ("l2_ads", "Cycles the L2 address bus is in use"),
    ("l2_reject_busq", "Rejected L2 cache requests"),
    ("l2_st", "Number of L2 data stores"),
    ("load_block", "Events pertaining to loads"),
    ("store_block", "Events pertaining to stores"),
    ("page_walks", "Page table walk events"),
];

/// Additional HPC events representative of the profiling server's event list.
const EXTRA_HPC_EVENTS: [(&str, &str); 16] = [
    ("flops_rate", "Floating point operations retired"),
    ("inst_retired", "Instructions retired"),
    ("llc_misses", "Last-level cache misses"),
    ("llc_refs", "Last-level cache references"),
    ("branch_inst", "Branch instructions retired"),
    ("branch_misses", "Mispredicted branches"),
    ("dtlb_misses", "Data TLB misses"),
    ("itlb_misses", "Instruction TLB misses"),
    ("l1d_repl", "L1 data cache lines replaced"),
    ("l2_lines_in", "L2 cache lines allocated"),
    ("bus_trans_mem", "Memory bus transactions"),
    ("bus_trans_io", "I/O bus transactions"),
    ("resource_stalls", "Resource-related stall cycles"),
    ("uops_retired", "Micro-operations retired"),
    ("prefetch_hits", "Hardware prefetcher hits"),
    ("simd_inst", "SIMD instructions retired"),
];

/// xentop-style per-VM metrics.
const XENTOP_METRICS: [(&str, &str); 6] = [
    ("xentop_cpu_pct", "VM CPU utilization percentage"),
    ("xentop_mem_mb", "VM memory consumption"),
    ("xentop_net_rx_kbps", "VM network receive rate"),
    ("xentop_net_tx_kbps", "VM network transmit rate"),
    ("xentop_vbd_rd", "VM virtual block device reads"),
    ("xentop_vbd_wr", "VM virtual block device writes"),
];

impl MetricCatalog {
    /// Builds the standard catalogue: Table-1 HPC events, additional HPC
    /// events, and xentop metrics, in that order.
    pub fn standard() -> Self {
        let mut metrics = Vec::new();
        let mut push = |name: &str, desc: &str, kind: MetricKind| {
            let id = MetricId(metrics.len());
            metrics.push(MetricDescriptor {
                id,
                name: name.to_string(),
                kind,
                description: desc.to_string(),
            });
        };
        for (name, desc) in TABLE1_EVENTS {
            push(name, desc, MetricKind::Hpc);
        }
        for (name, desc) in EXTRA_HPC_EVENTS {
            push(name, desc, MetricKind::Hpc);
        }
        for (name, desc) in XENTOP_METRICS {
            push(name, desc, MetricKind::Xentop);
        }
        MetricCatalog { metrics }
    }

    /// Number of metrics in the catalogue.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Returns true if the catalogue is empty (never true for [`standard`](Self::standard)).
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// All metric descriptors, in id order.
    pub fn descriptors(&self) -> &[MetricDescriptor] {
        &self.metrics
    }

    /// The descriptor for `id`, if it exists.
    pub fn get(&self, id: MetricId) -> Option<&MetricDescriptor> {
        self.metrics.get(id.0)
    }

    /// Finds a metric by name.
    pub fn find(&self, name: &str) -> Option<&MetricDescriptor> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The names of all metrics, in id order.
    pub fn names(&self) -> Vec<String> {
        self.metrics.iter().map(|m| m.name.clone()).collect()
    }

    /// Ids of all metrics of the given kind.
    pub fn ids_of_kind(&self, kind: MetricKind) -> Vec<MetricId> {
        self.metrics
            .iter()
            .filter(|m| m.kind == kind)
            .map(|m| m.id)
            .collect()
    }

    /// Number of HPC metrics (the part of the signature constrained by the
    /// number of physical counter registers).
    pub fn num_hpc(&self) -> usize {
        self.ids_of_kind(MetricKind::Hpc).len()
    }
}

impl Default for MetricCatalog {
    fn default() -> Self {
        MetricCatalog::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_contains_table1_first() {
        let cat = MetricCatalog::standard();
        for (i, (name, _)) in TABLE1_EVENTS.iter().enumerate() {
            assert_eq!(&cat.descriptors()[i].name, name);
            assert_eq!(cat.descriptors()[i].kind, MetricKind::Hpc);
        }
    }

    #[test]
    fn catalog_has_both_kinds() {
        let cat = MetricCatalog::standard();
        assert_eq!(cat.len(), 30);
        assert_eq!(cat.num_hpc(), 24);
        assert_eq!(cat.ids_of_kind(MetricKind::Xentop).len(), 6);
    }

    #[test]
    fn lookup_by_name_and_id() {
        let cat = MetricCatalog::standard();
        let m = cat.find("page_walks").expect("table-1 metric present");
        assert_eq!(cat.get(m.id).unwrap().name, "page_walks");
        assert!(cat.find("nonexistent_counter").is_none());
        assert!(cat.get(MetricId(9999)).is_none());
    }

    #[test]
    fn names_are_unique() {
        let cat = MetricCatalog::standard();
        let names = cat.names();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn kind_display() {
        assert_eq!(MetricKind::Hpc.to_string(), "HPC");
        assert_eq!(MetricKind::Xentop.to_string(), "xentop");
    }
}
