//! Gaussian naive Bayes classifier.
//!
//! The paper reports that "both Bayesian models and decision trees work well"
//! for classifying workload signatures; this implementation backs the
//! classifier-family ablation (ABL-CLF in `DESIGN.md`).

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::Classifier;
use serde::{Deserialize, Serialize};

/// Per-class Gaussian model of each attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClassModel {
    prior: f64,
    means: Vec<f64>,
    variances: Vec<f64>,
    count: usize,
}

/// A Gaussian naive Bayes classifier.
///
/// # Example
///
/// ```
/// use dejavu_ml::dataset::Dataset;
/// use dejavu_ml::bayes::NaiveBayes;
/// use dejavu_ml::Classifier;
///
/// let mut d = Dataset::new(vec!["m".into()]);
/// for i in 0..10 { d.push_labeled(vec![i as f64], 0); }
/// for i in 0..10 { d.push_labeled(vec![100.0 + i as f64], 1); }
/// let nb = NaiveBayes::fit(&d)?;
/// assert_eq!(nb.predict(&[3.0]), 0);
/// assert_eq!(nb.predict(&[105.0]), 1);
/// # Ok::<(), dejavu_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaiveBayes {
    classes: Vec<ClassModel>,
    num_attributes: usize,
}

/// Variance floor to keep likelihoods finite for constant attributes.
const VARIANCE_FLOOR: f64 = 1e-9;

impl NaiveBayes {
    /// Trains the classifier on a fully labeled dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for an empty dataset and
    /// [`MlError::MissingLabels`] if any instance is unlabeled.
    pub fn fit(data: &Dataset) -> Result<Self, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let labels = data.labels()?;
        let num_classes = data.num_classes();
        let num_attributes = data.num_attributes();
        let total = data.len() as f64;
        let mut classes = Vec::with_capacity(num_classes);
        for c in 0..num_classes {
            let members: Vec<&[f64]> = data
                .instances()
                .iter()
                .zip(&labels)
                .filter(|(_, &l)| l == c)
                .map(|(inst, _)| inst.features.as_slice())
                .collect();
            let count = members.len();
            let mut means = vec![0.0; num_attributes];
            let mut variances = vec![VARIANCE_FLOOR; num_attributes];
            if count > 0 {
                for a in 0..num_attributes {
                    let mean = members.iter().map(|m| m[a]).sum::<f64>() / count as f64;
                    let var =
                        members.iter().map(|m| (m[a] - mean).powi(2)).sum::<f64>() / count as f64;
                    means[a] = mean;
                    variances[a] = var.max(VARIANCE_FLOOR);
                }
            }
            classes.push(ClassModel {
                // Laplace-smoothed prior so empty classes never have zero mass.
                prior: (count as f64 + 1.0) / (total + num_classes as f64),
                means,
                variances,
                count,
            });
        }
        Ok(NaiveBayes {
            classes,
            num_attributes,
        })
    }

    fn log_likelihood(&self, model: &ClassModel, features: &[f64]) -> f64 {
        let mut ll = model.prior.ln();
        for (a, &x) in features.iter().enumerate().take(self.num_attributes) {
            let var = model.variances[a];
            let diff = x - model.means[a];
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
        }
        ll
    }

    /// Per-class posterior probabilities for `features` (they sum to 1).
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality.
    pub fn posteriors(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(
            features.len(),
            self.num_attributes,
            "feature vector has wrong dimensionality"
        );
        let lls: Vec<f64> = self
            .classes
            .iter()
            .map(|m| self.log_likelihood(m, features))
            .collect();
        let max = lls.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = lls.iter().map(|&l| (l - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Training accuracy on a labeled dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::MissingLabels`] if the dataset is not fully labeled.
    pub fn accuracy(&self, data: &Dataset) -> Result<f64, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let labels = data.labels()?;
        let correct = data
            .instances()
            .iter()
            .zip(&labels)
            .filter(|(inst, &l)| self.predict(&inst.features) == l)
            .count();
        Ok(correct as f64 / data.len() as f64)
    }
}

impl Classifier for NaiveBayes {
    fn predict_with_confidence(&self, features: &[f64]) -> (usize, f64) {
        let post = self.posteriors(features);
        post.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, &p)| (i, p))
            .unwrap_or((0, 0.0))
    }

    fn num_classes(&self) -> usize {
        self.classes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_simcore::SimRng;

    fn labeled_blobs(centers: &[f64], per: usize, spread: f64, seed: u64) -> Dataset {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["m1".into(), "m2".into()]);
        for (label, &c) in centers.iter().enumerate() {
            for _ in 0..per {
                d.push_labeled(vec![rng.normal(c, spread), rng.normal(-c, spread)], label);
            }
        }
        d
    }

    #[test]
    fn separable_classes_are_classified() {
        let d = labeled_blobs(&[0.0, 50.0, 100.0], 30, 1.0, 1);
        let nb = NaiveBayes::fit(&d).unwrap();
        assert!(nb.accuracy(&d).unwrap() > 0.99);
        assert_eq!(nb.num_classes(), 3);
    }

    #[test]
    fn posteriors_sum_to_one_and_reflect_distance() {
        let d = labeled_blobs(&[0.0, 2.0], 50, 1.0, 2);
        let nb = NaiveBayes::fit(&d).unwrap();
        let p = nb.posteriors(&[0.0, 0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[0] > 0.6);
        let mid = nb.posteriors(&[1.0, -1.0]);
        assert!(
            mid[0] < 0.9 && mid[1] < 0.9,
            "ambiguous point should be uncertain"
        );
    }

    #[test]
    fn constant_attribute_does_not_blow_up() {
        let mut d = Dataset::new(vec!["const".into(), "varies".into()]);
        for i in 0..10 {
            d.push_labeled(vec![1.0, i as f64], usize::from(i >= 5));
        }
        let nb = NaiveBayes::fit(&d).unwrap();
        let p = nb.posteriors(&[1.0, 9.0]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert_eq!(nb.predict(&[1.0, 9.0]), 1);
    }

    #[test]
    fn rejects_empty_and_unlabeled() {
        let empty = Dataset::new(vec!["x".into()]);
        assert!(matches!(
            NaiveBayes::fit(&empty),
            Err(MlError::EmptyDataset)
        ));
        let mut unl = Dataset::new(vec!["x".into()]);
        unl.push_unlabeled(vec![1.0]);
        assert!(matches!(NaiveBayes::fit(&unl), Err(MlError::MissingLabels)));
    }

    #[test]
    fn confidence_is_probability() {
        let d = labeled_blobs(&[0.0, 30.0], 25, 0.5, 3);
        let nb = NaiveBayes::fit(&d).unwrap();
        let (_, conf) = nb.predict_with_confidence(&[0.0, 0.0]);
        assert!((0.0..=1.0).contains(&conf));
        assert!(conf > 0.95);
    }
}
