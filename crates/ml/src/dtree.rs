//! A C4.5-style decision tree over continuous attributes.
//!
//! This plays the role of WEKA's `J48` in the paper: it is trained on workload
//! signatures labeled with their cluster id and used at runtime to classify a
//! fresh signature, reporting both the class and a confidence ("certainty
//! level") derived from the class distribution at the reached leaf.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::Classifier;
use serde::{Deserialize, Serialize};

/// Configuration of the tree induction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeConfig {
    /// Maximum depth of the tree (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of instances required to attempt a split.
    pub min_split: usize,
    /// Minimum information-gain ratio for a split to be accepted.
    pub min_gain: f64,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 12,
            min_split: 2,
            min_gain: 1e-6,
        }
    }
}

/// Internal tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Class counts observed at this leaf during training.
        counts: Vec<usize>,
    },
    Split {
        attribute: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained C4.5-style decision tree.
///
/// # Example
///
/// ```
/// use dejavu_ml::dataset::Dataset;
/// use dejavu_ml::dtree::{DecisionTree, DecisionTreeConfig};
/// use dejavu_ml::Classifier;
///
/// let mut d = Dataset::new(vec!["load".into()]);
/// for i in 0..20 {
///     d.push_labeled(vec![i as f64], if i < 10 { 0 } else { 1 });
/// }
/// let tree = DecisionTree::fit(&d, &DecisionTreeConfig::default())?;
/// assert_eq!(tree.predict(&[3.0]), 0);
/// assert_eq!(tree.predict(&[17.0]), 1);
/// # Ok::<(), dejavu_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    num_classes: usize,
    num_attributes: usize,
}

fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

fn class_counts(labels: &[usize], num_classes: usize, indices: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; num_classes];
    for &i in indices {
        counts[labels[i]] += 1;
    }
    counts
}

impl DecisionTree {
    /// Trains a tree on a fully labeled dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for an empty dataset and
    /// [`MlError::MissingLabels`] if any instance is unlabeled.
    pub fn fit(data: &Dataset, config: &DecisionTreeConfig) -> Result<Self, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let labels = data.labels()?;
        let num_classes = data.num_classes();
        let features: Vec<&[f64]> = data
            .instances()
            .iter()
            .map(|i| i.features.as_slice())
            .collect();
        let indices: Vec<usize> = (0..data.len()).collect();
        let root = Self::build(&features, &labels, num_classes, &indices, config, 0);
        Ok(DecisionTree {
            root,
            num_classes,
            num_attributes: data.num_attributes(),
        })
    }

    fn build(
        features: &[&[f64]],
        labels: &[usize],
        num_classes: usize,
        indices: &[usize],
        config: &DecisionTreeConfig,
        depth: usize,
    ) -> Node {
        let counts = class_counts(labels, num_classes, indices);
        let node_entropy = entropy(&counts);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= config.max_depth || indices.len() < config.min_split {
            return Node::Leaf { counts };
        }
        // Find the best (attribute, threshold) by gain ratio.
        let mut best: Option<(usize, f64, f64)> = None; // (attr, threshold, gain_ratio)
        let num_attrs = features[0].len();
        #[allow(clippy::needless_range_loop)]
        for attr in 0..num_attrs {
            let mut values: Vec<(f64, usize)> = indices
                .iter()
                .map(|&i| (features[i][attr], labels[i]))
                .collect();
            values.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            // Candidate thresholds: midpoints between distinct consecutive values.
            let mut left_counts = vec![0usize; num_classes];
            let mut right_counts = counts.clone();
            let total = indices.len() as f64;
            for w in 0..values.len().saturating_sub(1) {
                let (v, label) = values[w];
                left_counts[label] += 1;
                right_counts[label] -= 1;
                let next_v = values[w + 1].0;
                if next_v <= v {
                    continue;
                }
                let threshold = (v + next_v) / 2.0;
                let n_left = (w + 1) as f64;
                let n_right = total - n_left;
                let cond_entropy = (n_left / total) * entropy(&left_counts)
                    + (n_right / total) * entropy(&right_counts);
                let gain = node_entropy - cond_entropy;
                // Split information (penalizes fragmenting splits), as in C4.5.
                let split_info = {
                    let pl = n_left / total;
                    let pr = n_right / total;
                    -(pl * pl.log2() + pr * pr.log2())
                };
                let gain_ratio = if split_info > 0.0 {
                    gain / split_info
                } else {
                    0.0
                };
                if best
                    .map(|(_, _, g)| gain_ratio > g)
                    .unwrap_or(gain_ratio > config.min_gain)
                {
                    best = Some((attr, threshold, gain_ratio));
                }
            }
        }
        let Some((attr, threshold, gain_ratio)) = best else {
            return Node::Leaf { counts };
        };
        if gain_ratio <= config.min_gain {
            return Node::Leaf { counts };
        }
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| features[i][attr] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return Node::Leaf { counts };
        }
        let left = Self::build(features, labels, num_classes, &left_idx, config, depth + 1);
        let right = Self::build(features, labels, num_classes, &right_idx, config, depth + 1);
        // Pessimistic collapse: if both children predict the same class, merge.
        if let (Node::Leaf { counts: lc }, Node::Leaf { counts: rc }) = (&left, &right) {
            let lmaj = lc
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i);
            let rmaj = rc
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i);
            if lmaj == rmaj {
                return Node::Leaf { counts };
            }
        }
        Node::Split {
            attribute: attr,
            threshold,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Number of attributes the tree was trained on.
    pub fn num_attributes(&self) -> usize {
        self.num_attributes
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        fn c(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => c(left) + c(right),
            }
        }
        c(&self.root)
    }

    fn leaf_for(&self, features: &[f64]) -> &Node {
        assert_eq!(
            features.len(),
            self.num_attributes,
            "feature vector has wrong dimensionality"
        );
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { .. } => return node,
                Node::Split {
                    attribute,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*attribute] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Training accuracy on a labeled dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::MissingLabels`] if the dataset is not fully labeled.
    pub fn accuracy(&self, data: &Dataset) -> Result<f64, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let labels = data.labels()?;
        let correct = data
            .instances()
            .iter()
            .zip(&labels)
            .filter(|(inst, &l)| self.predict(&inst.features) == l)
            .count();
        Ok(correct as f64 / data.len() as f64)
    }
}

impl Classifier for DecisionTree {
    fn predict_with_confidence(&self, features: &[f64]) -> (usize, f64) {
        match self.leaf_for(features) {
            Node::Leaf { counts } => {
                let total: usize = counts.iter().sum();
                let (class, &count) = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .unwrap_or((0, &0));
                // Laplace-smoothed confidence, as J48 reports for leaves.
                let confidence = if total == 0 {
                    0.0
                } else {
                    (count as f64 + 1.0) / (total as f64 + self.num_classes.max(1) as f64)
                };
                (class, confidence)
            }
            Node::Split { .. } => unreachable!("leaf_for always returns a leaf"),
        }
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_simcore::SimRng;

    fn labeled_blobs(centers: &[(f64, f64)], per: usize, spread: f64, seed: u64) -> Dataset {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["x".into(), "y".into()]);
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..per {
                d.push_labeled(vec![rng.normal(cx, spread), rng.normal(cy, spread)], label);
            }
        }
        d
    }

    #[test]
    fn perfectly_separable_data_is_learned_exactly() {
        let d = labeled_blobs(&[(0.0, 0.0), (100.0, 100.0), (0.0, 100.0)], 20, 1.0, 1);
        let tree = DecisionTree::fit(&d, &DecisionTreeConfig::default()).unwrap();
        assert!((tree.accuracy(&d).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(tree.num_classes(), 3);
    }

    #[test]
    fn confidence_is_high_on_pure_leaves_and_bounded() {
        let d = labeled_blobs(&[(0.0, 0.0), (50.0, 50.0)], 30, 0.5, 2);
        let tree = DecisionTree::fit(&d, &DecisionTreeConfig::default()).unwrap();
        let (class, conf) = tree.predict_with_confidence(&[0.0, 0.0]);
        assert_eq!(class, 0);
        assert!(conf > 0.9 && conf <= 1.0);
        let (_, conf2) = tree.predict_with_confidence(&[50.0, 50.0]);
        assert!(conf2 > 0.9 && conf2 <= 1.0);
    }

    #[test]
    fn noisy_overlapping_data_yields_lower_confidence() {
        // Two heavily overlapping classes: confidence near the boundary should
        // be lower than in the clean case.
        let d = labeled_blobs(&[(0.0, 0.0), (1.0, 1.0)], 50, 2.0, 3);
        let tree = DecisionTree::fit(
            &d,
            &DecisionTreeConfig {
                max_depth: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let (_, conf) = tree.predict_with_confidence(&[0.5, 0.5]);
        assert!(conf < 0.95);
    }

    #[test]
    fn rejects_empty_and_unlabeled() {
        let empty = Dataset::new(vec!["x".into()]);
        assert!(matches!(
            DecisionTree::fit(&empty, &DecisionTreeConfig::default()),
            Err(MlError::EmptyDataset)
        ));
        let mut unlabeled = Dataset::new(vec!["x".into()]);
        unlabeled.push_unlabeled(vec![1.0]);
        assert!(matches!(
            DecisionTree::fit(&unlabeled, &DecisionTreeConfig::default()),
            Err(MlError::MissingLabels)
        ));
    }

    #[test]
    fn respects_max_depth() {
        let d = labeled_blobs(
            &[(0.0, 0.0), (5.0, 0.0), (10.0, 0.0), (15.0, 0.0)],
            10,
            0.3,
            4,
        );
        let tree = DecisionTree::fit(
            &d,
            &DecisionTreeConfig {
                max_depth: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(tree.depth() <= 1);
        assert!(tree.num_leaves() <= 2);
    }

    #[test]
    fn single_class_dataset_gives_single_leaf() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..10 {
            d.push_labeled(vec![i as f64], 0);
        }
        let tree = DecisionTree::fit(&d, &DecisionTreeConfig::default()).unwrap();
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.predict(&[100.0]), 0);
    }

    #[test]
    #[should_panic]
    fn wrong_dimensionality_panics() {
        let d = labeled_blobs(&[(0.0, 0.0), (5.0, 5.0)], 5, 0.1, 5);
        let tree = DecisionTree::fit(&d, &DecisionTreeConfig::default()).unwrap();
        let _ = tree.predict(&[1.0]);
    }

    #[test]
    fn one_dimensional_threshold_is_sensible() {
        let mut d = Dataset::new(vec!["volume".into()]);
        for i in 0..50 {
            d.push_labeled(vec![i as f64], usize::from(i >= 25));
        }
        let tree = DecisionTree::fit(&d, &DecisionTreeConfig::default()).unwrap();
        assert_eq!(tree.predict(&[10.0]), 0);
        assert_eq!(tree.predict(&[40.0]), 1);
        assert_eq!(tree.predict(&[24.0]), 0);
        assert_eq!(tree.predict(&[25.0]), 1);
    }
}
