//! Fixed-allocation policies, including the always-overprovision baseline the
//! paper's cost savings are measured against.

use dejavu_cloud::{
    AllocationSpace, ControllerDecision, Observation, ProvisioningController, ResourceAllocation,
};

/// Always keeps a single fixed allocation.
#[derive(Debug, Clone)]
pub struct FixedAllocation {
    name: String,
    allocation: ResourceAllocation,
}

impl FixedAllocation {
    /// Creates a policy pinned to `allocation`.
    pub fn new(name: impl Into<String>, allocation: ResourceAllocation) -> Self {
        FixedAllocation {
            name: name.into(),
            allocation,
        }
    }

    /// The pinned allocation.
    pub fn allocation(&self) -> ResourceAllocation {
        self.allocation
    }
}

impl ProvisioningController for FixedAllocation {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, observation: &Observation) -> ControllerDecision {
        if observation.current_allocation == self.allocation {
            ControllerDecision::keep()
        } else {
            ControllerDecision::deploy(
                self.allocation,
                dejavu_simcore::SimDuration::ZERO,
                dejavu_cloud::DecisionReason::Schedule,
            )
        }
    }
}

/// The overprovisioning baseline: always run at full capacity so the SLO is
/// met even at the foreseeable peak (§2.2).
#[derive(Debug, Clone)]
pub struct FixedMax {
    inner: FixedAllocation,
}

impl FixedMax {
    /// Creates the full-capacity policy for an allocation space.
    pub fn new(space: &AllocationSpace) -> Self {
        FixedMax {
            inner: FixedAllocation::new("fixed-max", space.full_capacity()),
        }
    }
}

impl ProvisioningController for FixedMax {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn decide(&mut self, observation: &Observation) -> ControllerDecision {
        self.inner.decide(observation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_simcore::SimTime;
    use dejavu_traces::{RequestMix, ServiceKind, Workload};

    fn obs(current: ResourceAllocation) -> Observation {
        Observation {
            time: SimTime::ZERO,
            workload: Workload::with_intensity(
                ServiceKind::Cassandra,
                0.5,
                RequestMix::update_heavy(),
            ),
            latency_ms: Some(40.0),
            qos_percent: None,
            utilization: 0.5,
            slo_violated: false,
            current_allocation: current,
        }
    }

    #[test]
    fn fixed_max_pins_full_capacity() {
        let space = AllocationSpace::scale_out(1, 10).unwrap();
        let mut c = FixedMax::new(&space);
        assert_eq!(c.name(), "fixed-max");
        let d = c.decide(&obs(ResourceAllocation::large(2)));
        assert_eq!(d.target, Some(ResourceAllocation::large(10)));
        let d2 = c.decide(&obs(ResourceAllocation::large(10)));
        assert!(d2.target.is_none());
    }

    #[test]
    fn fixed_allocation_keeps_its_target() {
        let mut c = FixedAllocation::new("pin-4", ResourceAllocation::large(4));
        assert_eq!(c.allocation(), ResourceAllocation::large(4));
        let d = c.decide(&obs(ResourceAllocation::large(4)));
        assert!(d.target.is_none());
    }
}
