//! Figure 4 — low-level metrics reliably identify workloads that differ in
//! type or intensity: for each benchmark, a signature metric is sampled five
//! times per load volume and the across-volume separation is contrasted with
//! the within-volume spread.

use crate::report::Report;
use dejavu_metrics::{MetricModel, MetricSampler, SamplerConfig, WorkloadPoint};
use dejavu_simcore::SimRng;
use dejavu_traces::{RequestMix, ServiceKind};

/// The per-service Figure-4 panel.
#[derive(Debug, Clone)]
pub struct Fig4Panel {
    /// The benchmark service.
    pub service: ServiceKind,
    /// The metric plotted.
    pub metric: String,
    /// `(volume, per-trial metric values)` for each load volume.
    pub trials: Vec<(f64, Vec<f64>)>,
    /// Smallest gap between adjacent volumes divided by the largest
    /// within-volume spread (> 1 means volumes are cleanly separable).
    pub separability: f64,
}

/// The Figure-4 result: one panel per benchmark.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// The three panels (SPECweb, RUBiS, Cassandra).
    pub panels: Vec<Fig4Panel>,
}

impl Fig4Result {
    /// Renders the figure.
    pub fn report(&self) -> Report {
        let mut r = Report::new("Figure 4: signature metrics separate workload volumes");
        for p in &self.panels {
            r.kv(
                &format!("{} ({})", p.service, p.metric),
                format!("separability {:.1}x", p.separability),
            );
        }
        r
    }
}

fn panel(service: ServiceKind, metric: &str, mix: RequestMix, seed: u64) -> Fig4Panel {
    let sampler = MetricSampler::new(MetricModel::default(), SamplerConfig::default());
    let mut rng = SimRng::seed_from_u64(seed);
    let idx = sampler
        .model()
        .catalog()
        .find(metric)
        .expect("metric exists in the standard catalogue")
        .id
        .0;
    let volumes = [0.2, 0.4, 0.6, 0.8, 1.0];
    let mut trials = Vec::new();
    for &v in &volumes {
        let point = WorkloadPoint::new(service, v, mix.read_fraction());
        let values: Vec<f64> = sampler
            .sample_trials(&point, 5, &mut rng)
            .iter()
            .map(|s| s.values()[idx])
            .collect();
        trials.push((v, values));
    }
    // Separability: min gap between adjacent volume means / max within-volume range.
    let means: Vec<f64> = trials
        .iter()
        .map(|(_, vals)| vals.iter().sum::<f64>() / vals.len() as f64)
        .collect();
    let min_gap = means
        .windows(2)
        .map(|w| (w[1] - w[0]).abs())
        .fold(f64::INFINITY, f64::min);
    let max_spread = trials
        .iter()
        .map(|(_, vals)| {
            let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        })
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    Fig4Panel {
        service,
        metric: metric.to_string(),
        trials,
        separability: min_gap / max_spread,
    }
}

/// Runs the Figure-4 experiment.
pub fn run(seed: u64) -> Fig4Result {
    Fig4Result {
        panels: vec![
            panel(
                ServiceKind::SpecWeb,
                "flops_rate",
                RequestMix::read_only(),
                seed,
            ),
            panel(
                ServiceKind::Rubis,
                "cpu_clk_unhalted",
                RequestMix::new(0.8),
                seed ^ 1,
            ),
            panel(
                ServiceKind::Cassandra,
                "xentop_net_tx_kbps",
                RequestMix::update_heavy(),
                seed ^ 2,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volumes_are_cleanly_separated_in_all_three_panels() {
        let fig = run(7);
        assert_eq!(fig.panels.len(), 3);
        for p in &fig.panels {
            assert!(
                p.separability > 1.5,
                "{} / {} separability {}",
                p.service,
                p.metric,
                p.separability
            );
            assert_eq!(p.trials.len(), 5);
            assert!(p.trials.iter().all(|(_, vals)| vals.len() == 5));
        }
        assert!(fig.report().to_string().contains("separability"));
    }
}
