//! Interference-index estimation (§3.6).
//!
//! When the baseline allocation for the just-identified workload class still
//! violates the SLO, DejaVu blames interference (the workload itself was just
//! classified in isolation) and computes an interference index by contrasting
//! the production performance with the performance the profiler measured in
//! isolation. The index is bucketed and becomes part of the repository key.

use crate::repository::RepositoryKey;
use dejavu_services::{PerfSample, Slo};
use serde::{Deserialize, Serialize};

/// An interference-index bucket (0 = no detectable interference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InterferenceBucket(pub u32);

impl InterferenceBucket {
    /// No interference.
    pub const NONE: InterferenceBucket = InterferenceBucket(0);

    /// Buckets an interference index (index 1.0 = identical performance in
    /// production and isolation).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not positive.
    pub fn from_index(index: f64, bucket_width: f64) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        if !index.is_finite() || index <= 1.0 {
            return InterferenceBucket::NONE;
        }
        InterferenceBucket(((index - 1.0) / bucket_width).ceil() as u32)
    }

    /// Builds the repository key for a workload class observed under this bucket.
    pub fn key_for(self, class: usize) -> RepositoryKey {
        RepositoryKey {
            class,
            interference_bucket: self.0,
        }
    }
}

/// Estimates interference indices and the implied capacity loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceEstimator {
    /// Width of one index bucket.
    pub bucket_width: f64,
}

impl Default for InterferenceEstimator {
    fn default() -> Self {
        InterferenceEstimator { bucket_width: 0.25 }
    }
}

impl InterferenceEstimator {
    /// Creates an estimator.
    pub fn new(bucket_width: f64) -> Self {
        InterferenceEstimator { bucket_width }
    }

    /// The interference index: production performance contrasted with the
    /// isolated (profiler) performance, oriented so that larger is worse.
    ///
    /// For latency SLOs the index is `latency_production / latency_isolation`;
    /// for QoS SLOs it is `qos_isolation / qos_production`.
    pub fn index(&self, production: &PerfSample, isolation: &PerfSample, slo: &Slo) -> f64 {
        match slo {
            Slo::LatencyMs(_) => {
                if isolation.latency_ms <= 0.0 {
                    1.0
                } else {
                    (production.latency_ms / isolation.latency_ms).max(1.0)
                }
            }
            Slo::QosPercent(_) => {
                if production.qos_percent <= 0.0 {
                    2.0
                } else {
                    (isolation.qos_percent / production.qos_percent).max(1.0)
                }
            }
        }
    }

    /// Buckets an index.
    pub fn bucket(&self, index: f64) -> InterferenceBucket {
        InterferenceBucket::from_index(index, self.bucket_width)
    }

    /// Estimates the fraction of capacity stolen by co-located tenants from a
    /// latency-based interference index, given the utilization the deployment
    /// would have in isolation. Derived from the `latency ∝ 1/(1-ρ)` model:
    /// `index = (1-ρ_iso)/(1-ρ_prod)` and `ρ_prod = ρ_iso/(1-stolen)`.
    pub fn stolen_fraction(&self, index: f64, rho_isolation: f64) -> f64 {
        if index <= 1.0 || rho_isolation <= 0.0 {
            return 0.0;
        }
        let rho_prod = 1.0 - (1.0 - rho_isolation) / index;
        if rho_prod <= rho_isolation {
            return 0.0;
        }
        (1.0 - rho_isolation / rho_prod).clamp(0.0, 0.9)
    }

    /// The capacity-inflation factor to hand to the Tuner so that the chosen
    /// allocation retains enough effective capacity under the estimated
    /// interference.
    pub fn capacity_inflation(&self, stolen_fraction: f64) -> f64 {
        1.0 / (1.0 - stolen_fraction.clamp(0.0, 0.9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(latency: f64, qos: f64) -> PerfSample {
        PerfSample {
            latency_ms: latency,
            qos_percent: qos,
            throughput_rps: 1000.0,
            utilization: 0.6,
        }
    }

    #[test]
    fn latency_index_ratio() {
        let est = InterferenceEstimator::default();
        let idx = est.index(
            &sample(90.0, 100.0),
            &sample(45.0, 100.0),
            &Slo::LatencyMs(60.0),
        );
        assert!((idx - 2.0).abs() < 1e-12);
        // Production better than isolation never yields an index below 1.
        let idx2 = est.index(
            &sample(30.0, 100.0),
            &sample(45.0, 100.0),
            &Slo::LatencyMs(60.0),
        );
        assert_eq!(idx2, 1.0);
    }

    #[test]
    fn qos_index_ratio() {
        let est = InterferenceEstimator::default();
        let idx = est.index(
            &sample(10.0, 80.0),
            &sample(10.0, 100.0),
            &Slo::QosPercent(95.0),
        );
        assert!((idx - 1.25).abs() < 1e-12);
    }

    #[test]
    fn bucketing() {
        assert_eq!(
            InterferenceBucket::from_index(1.0, 0.25),
            InterferenceBucket::NONE
        );
        assert_eq!(
            InterferenceBucket::from_index(1.2, 0.25),
            InterferenceBucket(1)
        );
        assert_eq!(
            InterferenceBucket::from_index(1.3, 0.25),
            InterferenceBucket(2)
        );
        assert_eq!(
            InterferenceBucket::from_index(f64::NAN, 0.25),
            InterferenceBucket::NONE
        );
        let key = InterferenceBucket(2).key_for(3);
        assert_eq!(key.class, 3);
        assert_eq!(key.interference_bucket, 2);
    }

    #[test]
    fn stolen_fraction_recovers_injected_interference() {
        // With rho_iso = 0.6 and 20% stolen capacity, rho_prod = 0.75 and the
        // latency index is (1-0.6)/(1-0.75) = 1.6.
        let est = InterferenceEstimator::default();
        let stolen = est.stolen_fraction(1.6, 0.6);
        assert!((stolen - 0.2).abs() < 0.02, "stolen {stolen}");
        assert!((est.capacity_inflation(0.2) - 1.25).abs() < 1e-12);
        assert_eq!(est.stolen_fraction(1.0, 0.6), 0.0);
    }

    #[test]
    fn inflation_is_bounded() {
        let est = InterferenceEstimator::default();
        assert!(est.capacity_inflation(0.99) <= 10.0 + 1e-9);
        assert_eq!(est.capacity_inflation(0.0), 1.0);
    }
}
