//! Sampling the metric model over a profiling window.
//!
//! The profiler accumulates counter values over a sampling window (the paper's
//! adaptation time is dominated by the ~10 s it takes to collect a signature),
//! normalizes by the window length and adds trial noise. Monitoring more
//! events than there are physical counter registers requires time-division
//! multiplexing, which costs accuracy (§3.3 cites [16]); the sampler models
//! that as extra relative noise.

use crate::counter::MetricKind;
use crate::model::{MetricModel, WorkloadPoint};
use crate::signature::WorkloadSignature;
use dejavu_simcore::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Sampler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Length of the profiling window.
    pub window: SimDuration,
    /// Number of physical HPC registers available (4 on the paper's
    /// Xeon X5472 profiling server).
    pub hpc_registers: usize,
    /// Extra relative noise incurred per multiplexing round beyond the first.
    pub multiplex_noise: f64,
    /// Additional relative perturbation applied to all metrics, used to model
    /// profiling *without* an isolated clone VM (co-located tenants disturb
    /// the counters, §3.2.2).
    pub perturbation: f64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            window: SimDuration::from_secs(10.0),
            hpc_registers: 4,
            multiplex_noise: 0.003,
            perturbation: 0.0,
        }
    }
}

/// Samples workload signatures from a [`MetricModel`].
///
/// # Example
///
/// ```
/// use dejavu_metrics::{MetricModel, MetricSampler, SamplerConfig, WorkloadPoint};
/// use dejavu_simcore::SimRng;
/// use dejavu_traces::ServiceKind;
///
/// let sampler = MetricSampler::new(MetricModel::default(), SamplerConfig::default());
/// let mut rng = SimRng::seed_from_u64(1);
/// let point = WorkloadPoint::new(ServiceKind::Cassandra, 0.6, 0.05);
/// let sig = sampler.sample(&point, &mut rng);
/// assert_eq!(sig.len(), sampler.model().catalog().len());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSampler {
    model: MetricModel,
    config: SamplerConfig,
    /// Catalogue names, shared once with every signature this sampler emits.
    names: std::sync::Arc<[String]>,
}

impl MetricSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero or `hpc_registers` is zero.
    pub fn new(model: MetricModel, config: SamplerConfig) -> Self {
        assert!(!config.window.is_zero(), "sampling window must be positive");
        assert!(config.hpc_registers > 0, "need at least one HPC register");
        let names = model.catalog().names().into();
        MetricSampler {
            model,
            config,
            names,
        }
    }

    /// The underlying generative model.
    pub fn model(&self) -> &MetricModel {
        &self.model
    }

    /// The sampler configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Number of time-division multiplexing rounds needed to observe every HPC
    /// event in the catalogue with the configured register count.
    pub fn multiplex_rounds(&self) -> usize {
        let hpc = self.model.catalog().num_hpc();
        hpc.div_ceil(self.config.hpc_registers)
    }

    /// Collects one workload signature covering the full catalogue.
    pub fn sample(&self, point: &WorkloadPoint, rng: &mut SimRng) -> WorkloadSignature {
        let secs = self.config.window.as_secs();
        let extra_mux_noise =
            self.config.multiplex_noise * (self.multiplex_rounds().saturating_sub(1)) as f64;
        let mut raw = Vec::with_capacity(self.model.catalog().len());
        for desc in self.model.catalog().descriptors() {
            let expected = self.model.expected_rate(desc.id, point);
            let mut rel_noise =
                self.model.relative_noise(desc.id, point.service) + self.config.perturbation;
            if desc.kind == MetricKind::Hpc {
                rel_noise += extra_mux_noise;
            }
            let noisy = rng.normal(expected, expected.abs() * rel_noise).max(0.0);
            raw.push(noisy * secs);
        }
        WorkloadSignature::from_raw_shared(
            std::sync::Arc::clone(&self.names),
            raw,
            self.config.window,
        )
    }

    /// Collects `trials` signatures at the same operating point (the repeated
    /// trials of Figure 4).
    pub fn sample_trials(
        &self,
        point: &WorkloadPoint,
        trials: usize,
        rng: &mut SimRng,
    ) -> Vec<WorkloadSignature> {
        (0..trials).map(|_| self.sample(point, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_traces::ServiceKind;

    fn sampler(perturbation: f64) -> MetricSampler {
        MetricSampler::new(
            MetricModel::default(),
            SamplerConfig {
                perturbation,
                ..Default::default()
            },
        )
    }

    #[test]
    fn signature_covers_catalog_and_window() {
        let s = sampler(0.0);
        let mut rng = SimRng::seed_from_u64(1);
        let sig = s.sample(&WorkloadPoint::new(ServiceKind::Rubis, 0.5, 0.8), &mut rng);
        assert_eq!(sig.len(), s.model().catalog().len());
        assert_eq!(sig.sampling(), SimDuration::from_secs(10.0));
        assert!(sig.values().iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn trials_cluster_tightly_around_expectation() {
        let s = sampler(0.0);
        let mut rng = SimRng::seed_from_u64(2);
        let point = WorkloadPoint::new(ServiceKind::SpecWeb, 0.7, 1.0);
        let flops_idx = s.model().catalog().find("flops_rate").unwrap().id.0;
        let expected = s
            .model()
            .expected_rate(s.model().catalog().find("flops_rate").unwrap().id, &point);
        let sigs = s.sample_trials(&point, 5, &mut rng);
        for sig in &sigs {
            let v = sig.values()[flops_idx];
            assert!(
                (v - expected).abs() / expected < 0.1,
                "trial too far from expectation"
            );
        }
    }

    #[test]
    fn different_volumes_are_separated_much_more_than_trial_noise() {
        // The Figure-4 property: the gap between load volumes dwarfs the
        // within-volume spread.
        let s = sampler(0.0);
        let mut rng = SimRng::seed_from_u64(3);
        let flops = s.model().catalog().find("flops_rate").unwrap().id.0;
        let lo: Vec<f64> = s
            .sample_trials(
                &WorkloadPoint::new(ServiceKind::SpecWeb, 0.4, 1.0),
                5,
                &mut rng,
            )
            .iter()
            .map(|sig| sig.values()[flops])
            .collect();
        let hi: Vec<f64> = s
            .sample_trials(
                &WorkloadPoint::new(ServiceKind::SpecWeb, 0.8, 1.0),
                5,
                &mut rng,
            )
            .iter()
            .map(|sig| sig.values()[flops])
            .collect();
        let lo_max = lo.iter().copied().fold(f64::MIN, f64::max);
        let hi_min = hi.iter().copied().fold(f64::MAX, f64::min);
        assert!(hi_min > lo_max * 1.2, "volumes must be clearly separated");
    }

    #[test]
    fn multiplexing_rounds_computed_from_registers() {
        let s = sampler(0.0);
        // 24 HPC events over 4 registers -> 6 rounds.
        assert_eq!(s.multiplex_rounds(), 6);
        let s2 = MetricSampler::new(
            MetricModel::default(),
            SamplerConfig {
                hpc_registers: 24,
                ..Default::default()
            },
        );
        assert_eq!(s2.multiplex_rounds(), 1);
    }

    #[test]
    fn perturbation_increases_spread() {
        let clean = sampler(0.0);
        let noisy = sampler(0.3);
        let point = WorkloadPoint::new(ServiceKind::Cassandra, 0.6, 0.05);
        let spread = |s: &MetricSampler, seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            let flops = s.model().catalog().find("flops_rate").unwrap().id.0;
            let vals: Vec<f64> = s
                .sample_trials(&point, 20, &mut rng)
                .iter()
                .map(|sig| sig.values()[flops])
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        assert!(spread(&noisy, 4) > spread(&clean, 4) * 2.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = sampler(0.0);
        let p = WorkloadPoint::new(ServiceKind::Rubis, 0.5, 0.5);
        let a = s.sample(&p, &mut SimRng::seed_from_u64(7));
        let b = s.sample(&p, &mut SimRng::seed_from_u64(7));
        assert_eq!(a.values(), b.values());
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        let _ = MetricSampler::new(
            MetricModel::default(),
            SamplerConfig {
                window: SimDuration::ZERO,
                ..Default::default()
            },
        );
    }
}
