//! Command-line entry point that regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p dejavu-experiments --release -- all
//! cargo run -p dejavu-experiments --release -- fig6 fig8 --seed 7
//! cargo run -p dejavu-experiments --release -- fleet --tenants 40 --snapshot-out fleet.snap
//! cargo run -p dejavu-experiments --release -- fleet --tenants 8 --snapshot-in fleet.snap --churn
//! cargo run -p dejavu-experiments --release -- fleet --transport async --staleness 2
//! cargo run -p dejavu-experiments --release -- fleet --transport steal --threads 4 --staleness 1
//! cargo run -p dejavu-experiments --release -- fleet --obs --obs-out fleet-obs.json
//! cargo run -p dejavu-experiments --release -- fleet --transport async --faults 42 --checkpoint-every 8
//! cargo run -p dejavu-experiments --release -- fleet --transport async --checkpoint-dir fleet-ckpt/
//! cargo run -p dejavu-experiments --release -- fleet --repo remote:127.0.0.1:7117
//! ```

use dejavu_fleet::{FaultSpec, TransportConfig};
use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut seed = 1u64;
    let mut fleet_opts = dejavu_experiments::fleet::FleetOptions {
        seed: 1,
        tenants: 40,
        days: 3,
        baselines: true,
        ..Default::default()
    };
    // `--transport async|steal` defaults to 1 epoch of staleness;
    // `--staleness` overrides it (0 bit-matches the BSP barrier) and
    // `--threads` caps the work-stealing pool. The name itself goes through
    // the typed `TransportConfig::parse`, so an unknown backend is a clear
    // error listing the valid choices.
    let mut transport_name: Option<String> = None;
    let mut staleness = 1usize;
    let mut threads = 4usize;
    // `--faults SEED[:kind,...]` goes through the typed `FaultSpec::parse`
    // and is checked against the resolved transport: malformed specs and
    // fault injection on the BSP barrier are clear errors, not panics.
    let mut fault_spec: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if arg == "--seed" {
            if let Some(v) = it.next() {
                seed = v.parse().unwrap_or(1);
            }
        } else if arg == "--tenants" {
            if let Some(v) = it.next() {
                fleet_opts.tenants = v.parse().unwrap_or(40);
            }
        } else if arg == "--days" {
            if let Some(v) = it.next() {
                fleet_opts.days = v.parse().unwrap_or(3);
            }
        } else if arg == "--transport" {
            match it.next() {
                Some(v) => transport_name = Some(v.clone()),
                None => {
                    eprintln!("--transport needs a backend name ('bsp', 'async' or 'steal')");
                    std::process::exit(2);
                }
            }
        } else if arg == "--staleness" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(k) => staleness = k,
                None => {
                    eprintln!("--staleness needs an epoch count");
                    std::process::exit(2);
                }
            }
        } else if arg == "--threads" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => {
                    eprintln!("--threads needs a positive worker count");
                    std::process::exit(2);
                }
            }
        } else if arg == "--faults" {
            match it.next() {
                Some(v) if !v.starts_with("--") => fault_spec = Some(v.clone()),
                _ => {
                    eprintln!(
                        "--faults needs a schedule spec: \"SEED\" or \"SEED:kind,...\" \
                         with kinds like 'crash', 'drop', 'shard-loss'"
                    );
                    std::process::exit(2);
                }
            }
        } else if arg == "--checkpoint-every" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => fleet_opts.checkpoint_every = n,
                None => {
                    eprintln!("--checkpoint-every needs a commit count (0 keeps every delta)");
                    std::process::exit(2);
                }
            }
        } else if arg == "--checkpoint-dir" {
            match it.next() {
                Some(v) if !v.starts_with("--") => fleet_opts.checkpoint_dir = Some(v.clone()),
                _ => {
                    eprintln!("--checkpoint-dir needs a directory path");
                    std::process::exit(2);
                }
            }
        } else if arg == "--snapshot-compact" {
            fleet_opts.snapshot_compact = true;
        } else if arg == "--snapshot-in" || arg == "--snapshot-out" {
            // A missing path must not silently no-op (or swallow the next
            // flag as a file name): demand a non-flag value.
            let path = match it.next() {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => {
                    eprintln!("{arg} needs a file path");
                    std::process::exit(2);
                }
            };
            if arg == "--snapshot-in" {
                fleet_opts.snapshot_in = Some(path);
            } else {
                fleet_opts.snapshot_out = Some(path);
            }
        } else if arg == "--repo" {
            // `--repo local` (the default), `--repo remote` (the daemon's
            // default port) or `--repo remote:HOST:PORT`.
            match it.next().map(String::as_str) {
                Some("local") => fleet_opts.repo_remote = None,
                Some("remote") => fleet_opts.repo_remote = Some("127.0.0.1:7117".to_string()),
                Some(v) if v.starts_with("remote:") => {
                    fleet_opts.repo_remote = Some(v["remote:".len()..].to_string());
                }
                _ => {
                    eprintln!("--repo needs 'local', 'remote' or 'remote:HOST:PORT'");
                    std::process::exit(2);
                }
            }
        } else if arg == "--churn" {
            fleet_opts.churn = true;
        } else if arg == "--obs" {
            fleet_opts.obs = true;
        } else if arg == "--obs-out" {
            let path = match it.next() {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => {
                    eprintln!("--obs-out needs a file path");
                    std::process::exit(2);
                }
            };
            fleet_opts.obs = true;
            fleet_opts.obs_out = Some(path);
        } else {
            targets.push(arg.clone());
        }
    }
    fleet_opts.seed = seed;
    if let Some(name) = &transport_name {
        match TransportConfig::parse(name, threads, staleness) {
            Ok(transport) => fleet_opts.transport = transport,
            Err(message) => {
                eprintln!("--transport: {message}");
                std::process::exit(2);
            }
        }
    }
    if let Some(spec) = &fault_spec {
        let spec = match FaultSpec::parse(spec) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("--faults: {e}");
                std::process::exit(2);
            }
        };
        if let Err(e) = fleet_opts.transport.check_faults(&spec) {
            eprintln!("--faults: {e}");
            std::process::exit(2);
        }
        fleet_opts.faults = Some(spec);
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = vec![
            "fig1", "fig4", "fig5", "table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "overhead", "savings", "ablation",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    for target in targets {
        let text = match target.as_str() {
            "fig1" => dejavu_experiments::fig1::run(seed).report().into_text(),
            "fig4" => dejavu_experiments::fig4::run(seed).report().into_text(),
            "fig5" => dejavu_experiments::fig5::run(seed).report().into_text(),
            "table1" => dejavu_experiments::table1::run(seed).report().into_text(),
            "fig6" => dejavu_experiments::fig6::run(seed)
                .report("Figure 6: scaling out Cassandra (Messenger trace)")
                .into_text(),
            "fig7" => dejavu_experiments::fig7::run(seed)
                .report("Figure 7: scaling out Cassandra (HotMail trace)")
                .into_text(),
            "fig8" => dejavu_experiments::fig8::run(seed).report().into_text(),
            "fig9" => dejavu_experiments::fig9::run(seed)
                .report("Figure 9: scaling up SPECweb (HotMail trace)")
                .into_text(),
            "fig10" => dejavu_experiments::fig10::run(seed)
                .report("Figure 10: scaling up SPECweb (Messenger trace)")
                .into_text(),
            "fig11" => dejavu_experiments::fig11::run(seed).report().into_text(),
            "overhead" => dejavu_experiments::overhead::run(seed).report().into_text(),
            "savings" => dejavu_experiments::savings::run(seed).report().into_text(),
            "ablation" => dejavu_experiments::ablation::run(seed).report().into_text(),
            "fleet" => match dejavu_experiments::fleet::run_opts(&fleet_opts) {
                Ok(figure) => figure.report().into_text(),
                Err(e) => {
                    eprintln!("fleet experiment failed: {e}");
                    std::process::exit(1);
                }
            },
            other => format!("unknown experiment '{other}'\n"),
        };
        println!("{text}");
    }
}
