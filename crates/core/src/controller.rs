//! The DejaVu provisioning controller: learning phase, signature-based reuse,
//! unforeseen-workload fallback and interference compensation (§3).

use crate::classify::OnlineClassifier;
use crate::clustering::WorkloadClusterer;
use crate::config::DejaVuConfig;
use crate::error::DejaVuError;
use crate::interference::{InterferenceBucket, InterferenceEstimator};
use crate::repository::{
    AllocationStore, RepositoryKey, RepositoryStats, SignatureRepository, StoreContext,
};
use crate::signature::SignatureBuilder;
use crate::tuner::{LinearSearchTuner, Tuner};
use dejavu_cloud::{
    AllocationSpace, ControllerDecision, DecisionReason, Observation, ProvisioningController,
    ResourceAllocation,
};
use dejavu_metrics::WorkloadSignature;
use dejavu_proxy::{Profiler, ProfilerConfig};
use dejavu_services::{PerfSample, ServiceModel};
use dejavu_simcore::{SimRng, SimTime};
use dejavu_traces::Workload;
use serde::{Deserialize, Serialize};

/// Which phase the controller is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DejaVuPhase {
    /// Initial profiling/tuning phase (the first day of the trace).
    Learning,
    /// Signature-based reuse of cached allocations.
    Reuse,
}

/// Counters and measurements the experiments report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DejaVuStats {
    /// Signatures collected by the profiler.
    pub signatures_collected: usize,
    /// Tuning runs executed (learning, repository misses, re-clustering).
    pub tunings: usize,
    /// Reuse-phase classifications that hit the repository.
    pub cache_hits: u64,
    /// Reuse-phase classifications rejected as unforeseen (low certainty or novel).
    pub unforeseen: u64,
    /// Classifications that were confident but had no repository entry yet.
    pub repository_misses: u64,
    /// Number of workload classes identified at the end of learning.
    pub num_classes: usize,
    /// How many times DejaVu re-ran clustering because of repeated low certainty.
    pub reclusterings: usize,
    /// Interference compensations applied.
    pub interference_compensations: u64,
    /// Learning-phase tunings skipped because a fleet-shared repository already
    /// held an allocation another tenant tuned for an equivalent workload.
    pub fleet_reuses: u64,
    /// Hit/miss statistics of the underlying repository (shared or local),
    /// from this controller's perspective.
    pub repository: RepositoryStats,
    /// Decision latencies (seconds) of reuse-phase adaptations.
    pub adaptation_times_secs: Vec<f64>,
}

impl DejaVuStats {
    /// Mean reuse-phase adaptation (decision) time in seconds.
    pub fn mean_adaptation_secs(&self) -> f64 {
        if self.adaptation_times_secs.is_empty() {
            0.0
        } else {
            self.adaptation_times_secs.iter().sum::<f64>() / self.adaptation_times_secs.len() as f64
        }
    }

    /// Cache hit rate among reuse-phase classifications.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.unforeseen + self.repository_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Hit rate of the underlying repository over every lookup this controller
    /// issued (learning-phase fleet lookups included), as reported by
    /// [`RepositoryStats::hit_rate`].
    pub fn repository_hit_rate(&self) -> f64 {
        self.repository.hit_rate()
    }
}

/// The DejaVu framework as a provisioning controller.
pub struct DejaVuController {
    config: DejaVuConfig,
    name: String,
    service: Box<dyn ServiceModel>,
    space: AllocationSpace,
    profiler: Profiler,
    tuner: LinearSearchTuner,
    estimator: InterferenceEstimator,
    rng: SimRng,
    phase: DejaVuPhase,
    // Learning-phase data.
    learning_sigs: Vec<WorkloadSignature>,
    learning_workloads: Vec<Workload>,
    learning_allocs: Vec<ResourceAllocation>,
    // Trained state.
    builder: Option<SignatureBuilder>,
    classifier: Option<OnlineClassifier>,
    repository: Box<dyn AllocationStore>,
    /// Full-catalogue medoid signature of each workload class; the cross-tenant
    /// identity fleet-shared stores match on.
    class_signatures: Vec<WorkloadSignature>,
    // Runtime bookkeeping.
    last_profile_time: Option<SimTime>,
    last_action_time: Option<SimTime>,
    current_class: Option<usize>,
    current_bucket: InterferenceBucket,
    violated_since: Option<SimTime>,
    consecutive_low_certainty: usize,
    unforeseen_buffer: Vec<(WorkloadSignature, Workload)>,
    stats: DejaVuStats,
}

impl std::fmt::Debug for DejaVuController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DejaVuController")
            .field("name", &self.name)
            .field("phase", &self.phase)
            .field("classes", &self.stats.num_classes)
            .field("repository_entries", &self.repository.len())
            .finish()
    }
}

impl DejaVuController {
    /// Creates a DejaVu controller for a service deployed over `space`.
    pub fn new(
        config: DejaVuConfig,
        service: Box<dyn ServiceModel>,
        space: AllocationSpace,
    ) -> Self {
        let profiler = Profiler::new(ProfilerConfig {
            sampler: dejavu_metrics::SamplerConfig {
                window: config.signature_window,
                ..Default::default()
            },
            ..Default::default()
        });
        let rng = SimRng::seed_from_u64(config.seed);
        let estimator = InterferenceEstimator::new(config.interference_bucket_width);
        DejaVuController {
            name: "dejavu".to_string(),
            profiler,
            tuner: LinearSearchTuner::default(),
            estimator,
            rng,
            phase: DejaVuPhase::Learning,
            learning_sigs: Vec::new(),
            learning_workloads: Vec::new(),
            learning_allocs: Vec::new(),
            builder: None,
            classifier: None,
            repository: Box::new(SignatureRepository::new()),
            class_signatures: Vec::new(),
            last_profile_time: None,
            last_action_time: None,
            current_class: None,
            current_bucket: InterferenceBucket::NONE,
            violated_since: None,
            consecutive_low_certainty: 0,
            unforeseen_buffer: Vec::new(),
            stats: DejaVuStats::default(),
            config,
            service,
            space,
        }
    }

    /// Overrides the controller's display name (used when several variants run
    /// in one experiment, e.g. "dejavu-no-interference").
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replaces the backing repository, e.g. with a tenant view over the
    /// fleet-shared store from `dejavu-fleet`. Call before the first decision;
    /// any entries already cached in the previous store are not migrated.
    pub fn with_store(mut self, store: Box<dyn AllocationStore>) -> Self {
        self.repository = store;
        self
    }

    /// The current phase.
    pub fn phase(&self) -> DejaVuPhase {
        self.phase
    }

    /// The signature repository (the cache) — local or fleet-shared.
    pub fn repository(&self) -> &dyn AllocationStore {
        self.repository.as_ref()
    }

    /// Mutable access to the backing store, for store-specific maintenance
    /// (see [`AllocationStore::as_any_mut`]). Decision paths never need this.
    pub fn store_mut(&mut self) -> &mut dyn AllocationStore {
        self.repository.as_mut()
    }

    /// The statistics gathered so far.
    pub fn stats(&self) -> &DejaVuStats {
        &self.stats
    }

    /// The signature metrics chosen by feature selection, once trained.
    pub fn signature_metrics(&self) -> Option<&[String]> {
        self.builder.as_ref().map(|b| b.metric_names())
    }

    fn profile_due(&self, now: SimTime) -> bool {
        match self.last_profile_time {
            None => true,
            Some(t) => {
                now.saturating_since(t).as_secs() + 1e-9 >= self.config.profile_interval.as_secs()
            }
        }
    }

    fn cooldown_passed(&self, now: SimTime) -> bool {
        match self.last_action_time {
            None => true,
            Some(t) => {
                now.saturating_since(t).as_secs() >= self.config.violation_cooldown.as_secs()
            }
        }
    }

    fn production_sample(obs: &Observation) -> PerfSample {
        PerfSample {
            latency_ms: obs.latency_ms.unwrap_or(0.0),
            qos_percent: obs.qos_percent.unwrap_or(100.0),
            throughput_rps: 0.0,
            utilization: obs.utilization,
        }
    }

    /// Learning-phase step: profile the workload and tune it, as the state of
    /// the art would, while recording the data that will seed the cache.
    ///
    /// Before paying for a tuning run, the profiled signature is offered to
    /// the repository: a plain [`SignatureRepository`] always misses here, but
    /// a fleet-shared store can return an allocation another tenant already
    /// tuned for an equivalent workload, eliminating this tenant's cold-start
    /// cost (the fleet argument of the DejaVu paper's §5).
    fn learn_step(&mut self, obs: &Observation) -> ControllerDecision {
        let report = self.profiler.profile(&obs.workload, &mut self.rng);
        self.stats.signatures_collected += 1;
        let fleet_entry = self.repository.get(
            StoreContext::with_signature(RepositoryKey::unclassified(), &report.signature)
                .at(obs.time),
        );
        let (allocation, latency, reason) = match fleet_entry {
            Some(entry) => {
                self.stats.fleet_reuses += 1;
                (
                    entry.allocation,
                    report.duration,
                    DecisionReason::FleetReuse,
                )
            }
            None => {
                let outcome =
                    self.tuner
                        .tune(&obs.workload, self.service.as_ref(), &self.space, 1.0);
                self.stats.tunings += 1;
                // Publish the fresh tuning decision under its raw signature so
                // fleet peers (and later this tenant's own reuse phase, via the
                // class medoids) can skip the same tuning. Local repositories
                // drop signature-only publications.
                self.repository.put(
                    StoreContext::with_signature(RepositoryKey::unclassified(), &report.signature)
                        .at(obs.time),
                    outcome.allocation,
                    obs.time,
                );
                (
                    outcome.allocation,
                    report.duration + outcome.duration,
                    DecisionReason::Learning,
                )
            }
        };
        self.learning_sigs.push(report.signature);
        self.learning_workloads.push(obs.workload);
        self.learning_allocs.push(allocation);
        self.last_profile_time = Some(obs.time);
        self.last_action_time = Some(obs.time);
        ControllerDecision::deploy(allocation, latency, reason)
    }

    /// Ends the learning phase: clusters the collected signatures, selects the
    /// signature metrics, trains the classifier and populates the repository
    /// with the tuned allocation of each class medoid.
    fn finalize_learning(&mut self, now: SimTime) -> Result<(), DejaVuError> {
        if self.learning_sigs.is_empty() {
            return Err(DejaVuError::NoTrainingData);
        }
        // First clustering pass on the full metric catalogue provides labels
        // for feature selection.
        let clusterer = WorkloadClusterer::new(self.config.cluster_range, self.config.seed);
        let coarse = clusterer.cluster(&self.learning_sigs)?;
        let builder = SignatureBuilder::select(
            &self.learning_sigs,
            &coarse.assignments,
            self.config.max_signature_metrics,
        )?;
        // Re-cluster and train on the selected signature metrics.
        let projected: Vec<WorkloadSignature> = self
            .learning_sigs
            .iter()
            .map(|s| builder.project(s))
            .collect();
        let clustering = clusterer.cluster(&projected)?;
        let classifier = OnlineClassifier::train(
            self.config.classifier,
            &projected,
            &clustering,
            self.config.novelty_margin,
            self.config.certainty_threshold,
        )?;
        self.repository.clear();
        // Seed each class with the largest allocation its members needed during
        // learning: robust even when two nearby load plateaus end up merged
        // into one class, at the cost of slight over-provisioning.
        self.class_signatures = clustering
            .medoids
            .iter()
            .map(|&m| self.learning_sigs[m].clone())
            .collect();
        for (class, &medoid) in clustering.medoids.iter().enumerate() {
            let mut allocation = self.learning_allocs[medoid];
            for (i, &assigned) in clustering.assignments.iter().enumerate() {
                if assigned == class
                    && self.learning_allocs[i].capacity_units() > allocation.capacity_units()
                {
                    allocation = self.learning_allocs[i];
                }
            }
            self.repository.put(
                StoreContext::with_signature(
                    RepositoryKey::baseline(class),
                    &self.class_signatures[class],
                )
                .at(now),
                allocation,
                now,
            );
        }
        self.stats.num_classes = clustering.num_classes();
        self.builder = Some(builder);
        self.classifier = Some(classifier);
        self.phase = DejaVuPhase::Reuse;
        Ok(())
    }

    /// Re-runs clustering after repeated low-certainty classifications,
    /// folding the unforeseen signatures into the training set and tuning the
    /// new class medoids.
    fn recluster(&mut self, now: SimTime) -> Result<(), DejaVuError> {
        for (sig, workload) in std::mem::take(&mut self.unforeseen_buffer) {
            let outcome = self
                .tuner
                .tune(&workload, self.service.as_ref(), &self.space, 1.0);
            self.stats.tunings += 1;
            self.learning_sigs.push(sig);
            self.learning_workloads.push(workload);
            self.learning_allocs.push(outcome.allocation);
        }
        self.stats.reclusterings += 1;
        self.consecutive_low_certainty = 0;
        self.finalize_learning(now)
    }

    /// Reuse-phase step on a periodic profile: classify and reuse.
    fn reuse_step(&mut self, obs: &Observation) -> ControllerDecision {
        let report = self.profiler.profile(&obs.workload, &mut self.rng);
        self.stats.signatures_collected += 1;
        self.last_profile_time = Some(obs.time);
        let (builder, classifier) = match (&self.builder, &self.classifier) {
            (Some(b), Some(c)) => (b, c),
            _ => return ControllerDecision::keep(),
        };
        let projected = builder.project(&report.signature);
        let classification = classifier.classify(&projected);
        if !classifier.is_confident(&classification) {
            // Unforeseen workload: deploy full capacity to stay safe.
            self.stats.unforeseen += 1;
            self.consecutive_low_certainty += 1;
            self.unforeseen_buffer
                .push((report.signature, obs.workload));
            self.current_class = None;
            if self.consecutive_low_certainty >= self.config.reclustering_threshold {
                // Re-clustering runs offline (sandboxed tuning); deployment of
                // full capacity is not delayed by it.
                let _ = self.recluster(obs.time);
            }
            self.last_action_time = Some(obs.time);
            self.stats
                .adaptation_times_secs
                .push(report.duration.as_secs());
            return ControllerDecision::deploy(
                self.space.full_capacity(),
                report.duration,
                DecisionReason::CacheMiss,
            );
        }
        self.consecutive_low_certainty = 0;
        self.current_class = Some(classification.class);
        // A fresh classification starts from the interference-free entry; the
        // interference path below re-establishes a bucketed entry only if the
        // SLO keeps being violated with the baseline allocation deployed.
        self.current_bucket = InterferenceBucket::NONE;
        let key = RepositoryKey::baseline(classification.class);
        let ctx = match self.class_signatures.get(classification.class) {
            Some(sig) => StoreContext::with_signature(key, sig),
            None => StoreContext::keyed(key),
        }
        .at(obs.time);
        let entry = self.repository.get(ctx);
        match entry {
            Some(entry) => {
                self.stats.cache_hits += 1;
                self.last_action_time = Some(obs.time);
                self.stats
                    .adaptation_times_secs
                    .push(report.duration.as_secs());
                ControllerDecision::deploy(
                    entry.allocation,
                    report.duration,
                    DecisionReason::CacheHit {
                        class: classification.class,
                    },
                )
            }
            None => {
                // Classified, but nothing cached yet: tune and remember.
                self.stats.repository_misses += 1;
                let outcome =
                    self.tuner
                        .tune(&obs.workload, self.service.as_ref(), &self.space, 1.0);
                self.stats.tunings += 1;
                self.repository.put(ctx, outcome.allocation, obs.time);
                self.last_action_time = Some(obs.time);
                self.stats
                    .adaptation_times_secs
                    .push((report.duration + outcome.duration).as_secs());
                ControllerDecision::deploy(
                    outcome.allocation,
                    report.duration + outcome.duration,
                    DecisionReason::Tuned,
                )
            }
        }
    }

    /// Interference path (§3.6): the workload class was just identified in
    /// isolation, yet the baseline allocation violates the SLO in production —
    /// blame interference, estimate the index and deploy the compensating
    /// allocation.
    fn interference_step(&mut self, obs: &Observation, class: usize) -> ControllerDecision {
        let isolation = self.profiler.evaluate_isolated(
            self.service.as_ref(),
            &obs.workload,
            obs.current_allocation.capacity_units(),
        );
        // If the deployed allocation would violate the SLO even in isolation,
        // the problem is the allocation (e.g. the class groups workloads with
        // different needs), not interference: re-tune the class instead.
        if !self.service.slo().is_met(&isolation) {
            // Ride out the rest of the interval at full capacity; the next
            // periodic classification re-evaluates the workload. The cache is
            // left untouched so a transient misattribution cannot permanently
            // inflate a class's allocation.
            self.last_action_time = Some(obs.time);
            return ControllerDecision::deploy(
                self.space.full_capacity(),
                self.config.signature_window,
                DecisionReason::CacheMiss,
            );
        }
        let production = Self::production_sample(obs);
        let index = self
            .estimator
            .index(&production, &isolation, &self.service.slo());
        let bucket = self.estimator.bucket(index);
        if bucket == InterferenceBucket::NONE {
            return ControllerDecision::keep();
        }
        self.current_bucket = bucket;
        let key = bucket.key_for(class);
        let ctx = match self.class_signatures.get(class) {
            Some(sig) => StoreContext::with_signature(key, sig),
            None => StoreContext::keyed(key),
        }
        .at(obs.time);
        let allocation = match self.repository.get(ctx) {
            Some(entry) => entry.allocation,
            None => {
                let stolen = self.estimator.stolen_fraction(index, isolation.utilization);
                let inflation = self.estimator.capacity_inflation(stolen);
                let outcome =
                    self.tuner
                        .tune(&obs.workload, self.service.as_ref(), &self.space, inflation);
                self.stats.tunings += 1;
                self.repository.put(ctx, outcome.allocation, obs.time);
                outcome.allocation
            }
        };
        self.stats.interference_compensations += 1;
        self.last_action_time = Some(obs.time);
        ControllerDecision::deploy(
            allocation,
            self.config.signature_window,
            DecisionReason::InterferenceCompensation,
        )
    }
}

impl ProvisioningController for DejaVuController {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, obs: &Observation) -> ControllerDecision {
        let decision = self.decide_inner(obs);
        // Repository stats live in the store (which may be fleet-shared);
        // mirror them into the controller stats so one snapshot has
        // everything the reports need.
        self.stats.repository = self.repository.stats();
        decision
    }
}

impl DejaVuController {
    fn decide_inner(&mut self, obs: &Observation) -> ControllerDecision {
        // Transition from learning to reuse at the configured boundary.
        if self.phase == DejaVuPhase::Learning
            && obs.time.hour_index() >= self.config.learning_hours
            && self.finalize_learning(obs.time).is_ok()
        {
            // Fall through: the first reuse-phase profile happens below.
        }
        match self.phase {
            DejaVuPhase::Learning => {
                if self.profile_due(obs.time) {
                    self.learn_step(obs)
                } else {
                    ControllerDecision::keep()
                }
            }
            DejaVuPhase::Reuse => {
                // Track how long the SLO has been violated: transient spikes
                // (re-partitioning, reconfiguration warm-up) must not be
                // mistaken for interference.
                if obs.slo_violated {
                    if self.violated_since.is_none() {
                        self.violated_since = Some(obs.time);
                    }
                } else {
                    self.violated_since = None;
                }
                let persistent_violation = self
                    .violated_since
                    .map(|since| {
                        obs.time.saturating_since(since).as_secs()
                            >= self.config.violation_cooldown.as_secs()
                    })
                    .unwrap_or(false);
                if self.profile_due(obs.time) {
                    self.reuse_step(obs)
                } else if self.config.interference_detection
                    && persistent_violation
                    && self.cooldown_passed(obs.time)
                {
                    // First exclude a workload change as the cause by
                    // re-profiling and re-classifying; only when the cache
                    // confirms the deployed allocation is the preferred one for
                    // this workload is the violation blamed on interference.
                    let reclassified = self.reuse_step(obs);
                    if reclassified.changes_allocation(obs.current_allocation) {
                        reclassified
                    } else if let Some(class) = self.current_class {
                        self.interference_step(obs, class)
                    } else {
                        reclassified
                    }
                } else {
                    ControllerDecision::keep()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_services::CassandraService;
    use dejavu_traces::{RequestMix, ServiceKind};

    fn controller(learning_hours: u64) -> DejaVuController {
        let config = DejaVuConfig::builder()
            .learning_hours(learning_hours)
            .seed(42)
            .build();
        DejaVuController::new(
            config,
            Box::new(CassandraService::update_heavy()),
            AllocationSpace::scale_out(1, 10).unwrap(),
        )
    }

    fn obs(hour: f64, intensity: f64, alloc: ResourceAllocation, violated: bool) -> Observation {
        Observation {
            time: SimTime::from_hours(hour),
            workload: Workload::with_intensity(
                ServiceKind::Cassandra,
                intensity,
                RequestMix::update_heavy(),
            ),
            latency_ms: Some(if violated { 90.0 } else { 40.0 }),
            qos_percent: None,
            utilization: 0.7,
            slo_violated: violated,
            current_allocation: alloc,
        }
    }

    /// Drives the controller through a learning day over four load plateaus.
    fn run_learning(ctrl: &mut DejaVuController) {
        let plateaus = [0.2, 0.45, 0.55, 0.95];
        for h in 0..24u64 {
            let level = plateaus[(h / 6) as usize];
            let o = obs(h as f64, level, ResourceAllocation::large(10), false);
            let d = ctrl.decide(&o);
            if h == 0 {
                assert_eq!(d.reason, DecisionReason::Learning);
            }
        }
    }

    #[test]
    fn learning_phase_tunes_each_profiled_workload() {
        let mut ctrl = controller(24);
        run_learning(&mut ctrl);
        assert_eq!(ctrl.phase(), DejaVuPhase::Learning);
        assert_eq!(ctrl.stats().signatures_collected, 24);
        assert_eq!(ctrl.stats().tunings, 24);
    }

    #[test]
    fn transitions_to_reuse_and_hits_the_cache() {
        let mut ctrl = controller(24);
        run_learning(&mut ctrl);
        // Hour 24: same plateau as the learning day's first plateau.
        let d = ctrl.decide(&obs(24.0, 0.45, ResourceAllocation::large(10), false));
        assert_eq!(ctrl.phase(), DejaVuPhase::Reuse);
        assert!(ctrl.stats().num_classes >= 3 && ctrl.stats().num_classes <= 5);
        assert!(
            matches!(d.reason, DecisionReason::CacheHit { .. }),
            "{:?}",
            d.reason
        );
        // Adaptation is dominated by the ~10 s signature collection.
        assert!(d.decision_latency.as_secs() <= 11.0);
        let target = d.target.expect("cache hit deploys an allocation");
        assert!(
            target.count() >= 4 && target.count() <= 6,
            "allocation {target}"
        );
        assert!(ctrl.stats().cache_hits >= 1);
        assert!(ctrl.signature_metrics().is_some());
    }

    #[test]
    fn unforeseen_workload_falls_back_to_full_capacity() {
        let mut ctrl = controller(24);
        run_learning(&mut ctrl);
        // An unseen volume far beyond anything the learning day contained.
        let d = ctrl.decide(&obs(24.0, 1.3, ResourceAllocation::large(10), false));
        assert_eq!(d.reason, DecisionReason::CacheMiss);
        assert_eq!(d.target, Some(ResourceAllocation::large(10)));
        assert_eq!(ctrl.stats().unforeseen, 1);
    }

    #[test]
    fn interference_violation_triggers_compensation() {
        let mut ctrl = controller(24);
        run_learning(&mut ctrl);
        // Classify a known plateau first (cache hit).
        let d = ctrl.decide(&obs(24.0, 0.45, ResourceAllocation::large(10), false));
        let baseline = d.target.unwrap();
        // The SLO keeps being violated while the baseline is deployed (and the
        // baseline would be fine in isolation): DejaVu must blame interference
        // and add capacity.
        let _ = ctrl.decide(&obs(24.3, 0.45, baseline, true));
        let d2 = ctrl.decide(&obs(24.7, 0.45, baseline, true));
        assert_eq!(d2.reason, DecisionReason::InterferenceCompensation);
        let compensated = d2.target.unwrap();
        assert!(compensated.capacity_units() > baseline.capacity_units());
        assert_eq!(ctrl.stats().interference_compensations, 1);
    }

    #[test]
    fn interference_detection_can_be_disabled() {
        let config = DejaVuConfig::builder()
            .learning_hours(24)
            .interference_detection(false)
            .seed(42)
            .build();
        let mut ctrl = DejaVuController::new(
            config,
            Box::new(CassandraService::update_heavy()),
            AllocationSpace::scale_out(1, 10).unwrap(),
        );
        run_learning(&mut ctrl);
        let d = ctrl.decide(&obs(24.0, 0.45, ResourceAllocation::large(10), false));
        let baseline = d.target.unwrap();
        let _ = ctrl.decide(&obs(24.3, 0.45, baseline, true));
        let d2 = ctrl.decide(&obs(24.7, 0.45, baseline, true));
        assert_eq!(d2.reason, DecisionReason::NoChange);
    }

    #[test]
    fn stats_summaries() {
        let mut ctrl = controller(24);
        run_learning(&mut ctrl);
        for h in 24..36u64 {
            let level = [0.2, 0.45, 0.55, 0.95][((h - 24) / 3) as usize % 4];
            let _ = ctrl.decide(&obs(h as f64, level, ResourceAllocation::large(10), false));
        }
        let stats = ctrl.stats();
        assert!(stats.hit_rate() > 0.8, "hit rate {}", stats.hit_rate());
        assert!(stats.mean_adaptation_secs() <= 15.0);
        assert!(!ctrl.repository().is_empty());
        assert!(format!("{ctrl:?}").contains("dejavu"));
    }
}
