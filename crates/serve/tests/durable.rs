//! The durability differential: a dejavu-serve daemon with
//! `--checkpoint-dir` that is **SIGKILLed mid-run and restarted** must end a
//! split workload in exactly the state an uninterrupted daemon reaches —
//! snapshot text, per-shard statistics, and eviction counts all bit-equal.
//!
//! The contract under test (see `ServePersistence`): every acknowledged
//! mutation is on disk before its response frame, and `Lookup` hit counters
//! ride the touched shard's next mutating capture. Each workload stage
//! therefore ends with a full `EvictStale` sweep — a mutating request that
//! captures every shard — so the stage boundary is a durable-consistent
//! point and the kill between stages loses nothing that was acknowledged.

use dejavu_fleet::{RepositoryClient, SharedRepoConfig, SharedSignatureRepository};
use dejavu_serve::{serve_tcp_persistent, RemoteRepository, ServeConfig, ServePersistence};
use dejavu_simcore::{SimDuration, SimTime};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh per-test scratch directory (process id + sequence keep parallel
/// test binaries and parallel tests apart).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dejavu-serve-durable-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One deterministic workload stage: a fixed mix of publishes, lookups
/// (hits and misses both move counters), and periodic eviction sweeps, with
/// namespaces reused across stages so stage 1 hits stage 0's entries. Ends
/// with a full sweep so every shard's pending hit counters become durable
/// at the stage boundary.
fn run_stage(client: &RemoteRepository, stage: u64) {
    let t0 = 1_000.0 + stage as f64 * 100_000.0;
    for i in 0..40u64 {
        let namespace = (stage * 7 + i) % 23;
        let signature = [(namespace % 11) as f64 * 0.5, (namespace % 5) as f64, 3.25];
        let now = SimTime::from_secs(t0 + i as f64 * 60.0);
        if i % 3 == 0 {
            client
                .publish(
                    (i % 5) as usize,
                    namespace,
                    &signature,
                    (namespace % 4) as u32,
                    dejavu_cloud::ResourceAllocation::large(1 + (i % 3) as u32),
                    now,
                )
                .expect("publish");
        } else {
            let _ = client
                .lookup(
                    (i % 5) as usize,
                    namespace,
                    &signature,
                    (namespace % 4) as u32,
                    now,
                )
                .expect("lookup");
        }
        if i % 10 == 9 {
            client.evict_stale(SimTime::from_secs(t0 + i as f64 * 60.0 + 1.0));
        }
    }
    client.evict_stale(SimTime::from_secs(t0 + 40.0 * 60.0));
}

fn final_state(client: &RemoteRepository) -> (String, Vec<dejavu_fleet::ShardStats>) {
    (client.snapshot().expect("snapshot"), client.shard_stats())
}

/// In-process differential: stage 0 against a persistent server, stop, boot
/// replay, stage 1 against the resumed server — and the result bit-matches
/// an uninterrupted server running both stages. The TTL is short enough
/// that stage 1's sweeps evict stage 0 entries, so the differential covers
/// eviction counts, not just hits.
#[test]
fn restarted_persistent_server_bit_matches_an_uninterrupted_one() {
    let repo_config = SharedRepoConfig {
        shards: 8,
        ttl: Some(SimDuration::from_hours(6.0)),
        ..Default::default()
    };

    // Interrupted run: stage 0, stop, resume from disk, stage 1.
    let dir = scratch_dir("inproc");
    let repo = Arc::new(SharedSignatureRepository::new(repo_config.clone()));
    let persistence = ServePersistence::create(&dir, &repo, 4).expect("checkpoint dir");
    let handle = serve_tcp_persistent(repo, "127.0.0.1:0", ServeConfig::default(), persistence)
        .expect("server binds");
    let addr = handle.tcp_addr().expect("tcp").to_string();
    let client = RemoteRepository::connect_tcp(&addr, 0).expect("session");
    run_stage(&client, 0);
    let at_stop = client.snapshot().expect("snapshot");
    drop(client);
    handle.stop();

    let (resumed, persistence, report) = ServePersistence::resume(&dir, 4).expect("boot replay");
    assert!(report.segments_replayed > 0, "stage 0 recorded no deltas");
    assert!(
        report.quarantined.is_empty(),
        "clean directory quarantined files: {:?}",
        report.quarantined
    );
    assert_eq!(
        resumed.save_snapshot_compact(),
        at_stop,
        "boot replay is not bit-exact at the stage boundary"
    );
    let handle = serve_tcp_persistent(resumed, "127.0.0.1:0", ServeConfig::default(), persistence)
        .expect("resumed server binds");
    let addr = handle.tcp_addr().expect("tcp").to_string();
    let client = RemoteRepository::connect_tcp(&addr, 0).expect("resumed session");
    run_stage(&client, 1);
    let interrupted = final_state(&client);
    drop(client);
    handle.stop();

    // Uninterrupted run: both stages against one server.
    let dir = scratch_dir("inproc-ref");
    let repo = Arc::new(SharedSignatureRepository::new(repo_config));
    let persistence = ServePersistence::create(&dir, &repo, 4).expect("checkpoint dir");
    let handle = serve_tcp_persistent(
        Arc::clone(&repo),
        "127.0.0.1:0",
        ServeConfig::default(),
        persistence,
    )
    .expect("reference server binds");
    let addr = handle.tcp_addr().expect("tcp").to_string();
    let client = RemoteRepository::connect_tcp(&addr, 0).expect("reference session");
    run_stage(&client, 0);
    run_stage(&client, 1);
    let uninterrupted = final_state(&client);
    drop(client);
    handle.stop();

    assert!(
        repo.stats().evictions > 0,
        "the TTL never fired — the eviction differential is vacuous"
    );
    assert_eq!(
        interrupted.0, uninterrupted.0,
        "restarted run's final snapshot diverged from the uninterrupted run"
    );
    assert_eq!(
        interrupted.1, uninterrupted.1,
        "restarted run's per-shard statistics diverged"
    );
}

/// Kills a spawned daemon even when the test fails partway.
#[cfg(unix)]
struct Daemon(std::process::Child);

#[cfg(unix)]
impl Daemon {
    fn spawn(socket: &std::path::Path, checkpoint_dir: &std::path::Path) -> Daemon {
        let child = std::process::Command::new(env!("CARGO_BIN_EXE_dejavu-serve"))
            .arg("--unix")
            .arg(socket)
            .arg("--checkpoint-dir")
            .arg(checkpoint_dir)
            .args(["--checkpoint-every", "4"])
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("dejavu-serve spawns");
        Daemon(child)
    }

    fn connect(&mut self, socket: &std::path::Path, tenant: usize) -> RemoteRepository {
        // The daemon binds asynchronously; poll until the socket answers.
        for _ in 0..400 {
            if let Ok(client) = RemoteRepository::connect_unix(socket, tenant) {
                return client;
            }
            if let Some(status) = self.0.try_wait().expect("daemon status") {
                panic!("dejavu-serve exited before serving: {status}");
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        panic!("dejavu-serve never answered on {}", socket.display());
    }

    fn sigkill(mut self) {
        self.0.kill().expect("SIGKILL");
        self.0.wait().expect("reap");
    }
}

#[cfg(unix)]
impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The acceptance differential against the real binary: run stage 0,
/// `SIGKILL` the daemon mid-run (no clean shutdown — the socket file is
/// even left behind for the restart to reclaim), restart it on the same
/// `--checkpoint-dir`, run stage 1, and compare the final snapshot and
/// per-shard statistics bit-for-bit against an uninterrupted daemon.
#[cfg(unix)]
#[test]
fn sigkilled_daemon_resumes_and_bit_matches_an_uninterrupted_daemon() {
    // Interrupted daemon.
    let dir = scratch_dir("kill");
    let socket = dir.join("serve.sock");
    let ckpt = dir.join("ckpt");
    let mut daemon = Daemon::spawn(&socket, &ckpt);
    let client = daemon.connect(&socket, 0);
    run_stage(&client, 0);
    drop(client);
    daemon.sigkill();
    assert!(
        socket.exists(),
        "SIGKILL should leave the socket corpse behind (the restart reclaims it)"
    );

    let mut daemon = Daemon::spawn(&socket, &ckpt);
    let client = daemon.connect(&socket, 0);
    run_stage(&client, 1);
    let interrupted = final_state(&client);
    drop(client);
    daemon.sigkill();

    // Uninterrupted daemon, fresh state, both stages.
    let dir = scratch_dir("kill-ref");
    let socket = dir.join("serve.sock");
    let ckpt = dir.join("ckpt");
    let mut daemon = Daemon::spawn(&socket, &ckpt);
    let client = daemon.connect(&socket, 0);
    run_stage(&client, 0);
    run_stage(&client, 1);
    let uninterrupted = final_state(&client);
    drop(client);
    daemon.sigkill();

    assert_eq!(
        interrupted.0, uninterrupted.0,
        "SIGKILLed+restarted daemon's final snapshot diverged"
    );
    assert_eq!(
        interrupted.1, uninterrupted.1,
        "SIGKILLed+restarted daemon's per-shard statistics diverged"
    );
}

/// `--snapshot-in` next to an existing checkpoint manifest is refused: the
/// manifest owns the repository contents, and silently preferring either
/// source would be a trap.
#[cfg(unix)]
#[test]
fn snapshot_in_conflicts_with_an_existing_checkpoint_directory() {
    let dir = scratch_dir("conflict");
    let ckpt = dir.join("ckpt");
    let repo = SharedSignatureRepository::new(SharedRepoConfig::default());
    drop(ServePersistence::create(&ckpt, &repo, 4).expect("manifest"));
    let snapshot = dir.join("seed.snap");
    std::fs::write(&snapshot, repo.save_snapshot()).expect("seed snapshot");

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_dejavu-serve"))
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .arg("--snapshot-in")
        .arg(&snapshot)
        .output()
        .expect("dejavu-serve runs");
    assert!(
        !output.status.success(),
        "conflicting repository sources must be a boot error"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--snapshot-in"),
        "boot error should name the conflicting flag: {stderr}"
    );
}
