//! The signature repository: DejaVu's cache of resource-allocation decisions.
//!
//! The repository maps a workload class (and, when interference has been
//! detected, an interference-index bucket) to the preferred resource
//! allocation determined by the Tuner. At runtime a cache hit lets DejaVu jump
//! straight to the right allocation; misses fall back to tuning or to full
//! capacity.

use dejavu_cloud::ResourceAllocation;
use dejavu_simcore::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Repository key: workload class × interference bucket.
///
/// Bucket 0 means "no interference beyond what tuning saw".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RepositoryKey {
    /// Workload class (cluster id).
    pub class: usize,
    /// Interference-index bucket.
    pub interference_bucket: u32,
}

impl RepositoryKey {
    /// Key for a workload class with no interference.
    pub fn baseline(class: usize) -> Self {
        RepositoryKey {
            class,
            interference_bucket: 0,
        }
    }
}

/// One cached allocation decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepositoryEntry {
    /// The preferred allocation for this key.
    pub allocation: ResourceAllocation,
    /// When the Tuner produced this entry.
    pub tuned_at: SimTime,
    /// How often the entry has been reused.
    pub hits: u64,
}

/// Hit/miss statistics of the repository.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepositoryStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (including overwrites).
    pub insertions: u64,
}

impl RepositoryStats {
    /// Cache hit rate over all lookups (0.0 if there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The DejaVu cache.
///
/// # Example
///
/// ```
/// use dejavu_core::{RepositoryKey, SignatureRepository};
/// use dejavu_cloud::ResourceAllocation;
/// use dejavu_simcore::SimTime;
///
/// let mut repo = SignatureRepository::new();
/// repo.insert(RepositoryKey::baseline(0), ResourceAllocation::large(4), SimTime::ZERO);
/// assert!(repo.lookup(RepositoryKey::baseline(0)).is_some());
/// assert!(repo.lookup(RepositoryKey::baseline(1)).is_none());
/// assert_eq!(repo.stats().hits, 1);
/// assert_eq!(repo.stats().misses, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SignatureRepository {
    entries: BTreeMap<RepositoryKey, RepositoryEntry>,
    stats: RepositoryStats,
}

impl SignatureRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        SignatureRepository::default()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts (or replaces) the preferred allocation for `key`.
    pub fn insert(&mut self, key: RepositoryKey, allocation: ResourceAllocation, tuned_at: SimTime) {
        self.stats.insertions += 1;
        self.entries.insert(
            key,
            RepositoryEntry {
                allocation,
                tuned_at,
                hits: 0,
            },
        );
    }

    /// Looks up the preferred allocation for `key`, counting a hit or miss and
    /// bumping the entry's reuse counter on a hit.
    pub fn lookup(&mut self, key: RepositoryKey) -> Option<RepositoryEntry> {
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.hits += 1;
                self.stats.hits += 1;
                Some(*entry)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Reads an entry without affecting statistics.
    pub fn peek(&self, key: RepositoryKey) -> Option<&RepositoryEntry> {
        self.entries.get(&key)
    }

    /// Removes every cached entry (used when DejaVu re-clusters).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over all `(key, entry)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&RepositoryKey, &RepositoryEntry)> {
        self.entries.iter()
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> RepositoryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_roundtrip() {
        let mut repo = SignatureRepository::new();
        let key = RepositoryKey::baseline(2);
        repo.insert(key, ResourceAllocation::large(6), SimTime::from_hours(1.0));
        let entry = repo.lookup(key).expect("present");
        assert_eq!(entry.allocation, ResourceAllocation::large(6));
        assert_eq!(entry.tuned_at, SimTime::from_hours(1.0));
        assert_eq!(repo.len(), 1);
        assert!(!repo.is_empty());
    }

    #[test]
    fn hit_counters_and_rates() {
        let mut repo = SignatureRepository::new();
        repo.insert(RepositoryKey::baseline(0), ResourceAllocation::large(2), SimTime::ZERO);
        let _ = repo.lookup(RepositoryKey::baseline(0));
        let _ = repo.lookup(RepositoryKey::baseline(0));
        let _ = repo.lookup(RepositoryKey::baseline(5));
        let stats = repo.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(repo.peek(RepositoryKey::baseline(0)).unwrap().hits, 2);
    }

    #[test]
    fn interference_buckets_are_separate_entries() {
        let mut repo = SignatureRepository::new();
        let base = RepositoryKey::baseline(1);
        let interfered = RepositoryKey {
            class: 1,
            interference_bucket: 2,
        };
        repo.insert(base, ResourceAllocation::large(4), SimTime::ZERO);
        repo.insert(interfered, ResourceAllocation::large(6), SimTime::ZERO);
        assert_eq!(repo.lookup(base).unwrap().allocation.count(), 4);
        assert_eq!(repo.lookup(interfered).unwrap().allocation.count(), 6);
        assert_eq!(repo.len(), 2);
    }

    #[test]
    fn overwrite_replaces_allocation() {
        let mut repo = SignatureRepository::new();
        let key = RepositoryKey::baseline(0);
        repo.insert(key, ResourceAllocation::large(2), SimTime::ZERO);
        repo.insert(key, ResourceAllocation::large(8), SimTime::from_hours(2.0));
        assert_eq!(repo.lookup(key).unwrap().allocation.count(), 8);
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.stats().insertions, 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut repo = SignatureRepository::new();
        repo.insert(RepositoryKey::baseline(0), ResourceAllocation::large(2), SimTime::ZERO);
        repo.clear();
        assert!(repo.is_empty());
        assert!(repo.lookup(RepositoryKey::baseline(0)).is_none());
        assert_eq!(repo.iter().count(), 0);
    }

    #[test]
    fn empty_stats_hit_rate_is_zero() {
        assert_eq!(RepositoryStats::default().hit_rate(), 0.0);
    }
}
