//! The RUBiS-like three-tier auction service model.
//!
//! RUBiS drives the paper's motivating experiment (Figure 1) and the proxy
//! overhead study (§4.4). It defines 26 client interaction types (browsing,
//! bidding, selling, …) whose frequencies are given by a transition table; the
//! mix shifts how expensive the average request is.

use crate::perf::{PerfSample, QueueingModel};
use crate::service::{EvalContext, ServiceModel};
use crate::slo::Slo;
use dejavu_traces::{RequestMix, ServiceKind};
use serde::{Deserialize, Serialize};

/// Number of client interaction types RUBiS defines.
pub const NUM_INTERACTIONS: usize = 26;

/// The names of the 26 RUBiS client interactions.
pub const INTERACTION_NAMES: [&str; NUM_INTERACTIONS] = [
    "Home",
    "Register",
    "RegisterUser",
    "Browse",
    "BrowseCategories",
    "SearchItemsInCategory",
    "BrowseRegions",
    "BrowseCategoriesInRegion",
    "SearchItemsInRegion",
    "ViewItem",
    "ViewUserInfo",
    "ViewBidHistory",
    "BuyNowAuth",
    "BuyNow",
    "StoreBuyNow",
    "PutBidAuth",
    "PutBid",
    "StoreBid",
    "PutCommentAuth",
    "PutComment",
    "StoreComment",
    "Sell",
    "SelectCategoryToSellItem",
    "SellItemForm",
    "RegisterItem",
    "AboutMe",
];

/// A RUBiS interaction mix: the probability of each interaction type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionMix {
    probabilities: Vec<f64>,
}

impl InteractionMix {
    /// The default browsing-dominated mix (read-mostly), normalized to sum to 1.
    pub fn browsing() -> Self {
        // Browsing/viewing interactions dominate; write interactions
        // (bids, comments, registrations) are rare.
        let mut p = vec![0.0; NUM_INTERACTIONS];
        let heavy = [3usize, 4, 5, 9, 10];
        let medium = [0usize, 6, 7, 8, 11, 25];
        for &i in &heavy {
            p[i] = 0.12;
        }
        for &i in &medium {
            p[i] = 0.05;
        }
        let assigned: f64 = p.iter().sum();
        let rest = (1.0 - assigned) / (NUM_INTERACTIONS - heavy.len() - medium.len()) as f64;
        for (i, prob) in p.iter_mut().enumerate() {
            if *prob == 0.0 {
                *prob = rest;
            }
            debug_assert!(i < NUM_INTERACTIONS);
        }
        InteractionMix { probabilities: p }
    }

    /// A bidding-heavy mix (more writes).
    pub fn bidding() -> Self {
        let mut base = Self::browsing();
        for &i in &[15usize, 16, 17, 13, 14] {
            base.probabilities[i] += 0.05;
        }
        let sum: f64 = base.probabilities.iter().sum();
        for prob in &mut base.probabilities {
            *prob /= sum;
        }
        base
    }

    /// Per-interaction probabilities (sums to 1).
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// The fraction of read-only interactions in the mix.
    pub fn read_fraction(&self) -> f64 {
        // Interactions that store data (writes).
        const WRITES: [usize; 7] = [2, 14, 17, 20, 24, 12, 15];
        1.0 - WRITES.iter().map(|&i| self.probabilities[i]).sum::<f64>()
    }
}

/// The RUBiS service model.
///
/// # Example
///
/// ```
/// use dejavu_services::{RubisService, ServiceModel};
/// use dejavu_services::service::EvalContext;
/// use dejavu_simcore::SimTime;
///
/// let svc = RubisService::default_browsing();
/// let s = svc.evaluate(0.4, &EvalContext::steady(SimTime::ZERO, 6.0));
/// assert!(svc.slo().is_met(&s));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RubisService {
    mix: InteractionMix,
    queueing: QueueingModel,
    slo_latency_ms: f64,
}

impl RubisService {
    /// Creates the service with the default browsing mix and the Figure-1 SLO.
    pub fn default_browsing() -> Self {
        RubisService {
            mix: InteractionMix::browsing(),
            queueing: QueueingModel {
                base_latency_ms: 25.0,
                ..QueueingModel::default()
            },
            slo_latency_ms: 100.0,
        }
    }

    /// Creates the service with a bidding-heavy mix.
    pub fn bidding_heavy() -> Self {
        RubisService {
            mix: InteractionMix::bidding(),
            ..RubisService::default_browsing()
        }
    }

    /// The interaction mix.
    pub fn interaction_mix(&self) -> &InteractionMix {
        &self.mix
    }
}

impl ServiceModel for RubisService {
    fn kind(&self) -> ServiceKind {
        ServiceKind::Rubis
    }

    fn default_mix(&self) -> RequestMix {
        RequestMix::new(self.mix.read_fraction().clamp(0.0, 1.0))
    }

    fn slo(&self) -> Slo {
        Slo::LatencyMs(self.slo_latency_ms)
    }

    fn evaluate(&self, intensity: f64, ctx: &EvalContext) -> PerfSample {
        // Write interactions hit the database tier and cost slightly more.
        let write_cost = 1.0 + 0.2 * (1.0 - self.mix.read_fraction());
        self.queueing
            .sample(intensity * write_cost, ctx.capacity_units, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_simcore::SimTime;

    #[test]
    fn interaction_mix_is_a_distribution() {
        for mix in [InteractionMix::browsing(), InteractionMix::bidding()] {
            let sum: f64 = mix.probabilities().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert_eq!(mix.probabilities().len(), NUM_INTERACTIONS);
            assert!(mix.probabilities().iter().all(|&p| p >= 0.0));
        }
        assert_eq!(INTERACTION_NAMES.len(), NUM_INTERACTIONS);
    }

    #[test]
    fn bidding_mix_has_more_writes() {
        assert!(
            InteractionMix::bidding().read_fraction() < InteractionMix::browsing().read_fraction()
        );
    }

    #[test]
    fn bidding_service_needs_more_capacity() {
        let browse = RubisService::default_browsing();
        let bid = RubisService::bidding_heavy();
        assert!(bid.required_capacity(0.8) >= browse.required_capacity(0.8));
    }

    #[test]
    fn slo_and_kind() {
        let svc = RubisService::default_browsing();
        assert_eq!(svc.kind(), ServiceKind::Rubis);
        assert_eq!(svc.slo(), Slo::LatencyMs(100.0));
        assert!(svc.default_mix().read_fraction() > 0.7);
    }

    #[test]
    fn latency_grows_under_load() {
        let svc = RubisService::default_browsing();
        let low = svc.evaluate(0.2, &EvalContext::steady(SimTime::ZERO, 5.0));
        let high = svc.evaluate(0.9, &EvalContext::steady(SimTime::ZERO, 5.0));
        assert!(high.latency_ms > low.latency_ms * 1.5);
    }
}
