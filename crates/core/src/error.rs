//! Error type for the DejaVu framework.

use std::error::Error;
use std::fmt;

/// Errors produced by the DejaVu framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DejaVuError {
    /// The learning phase produced no usable signatures.
    NoTrainingData,
    /// The classifier has not been trained yet.
    NotTrained,
    /// A machine-learning step failed.
    Ml(dejavu_ml::MlError),
    /// A platform/allocation error occurred.
    Cloud(dejavu_cloud::CloudError),
    /// A configuration value was invalid.
    InvalidConfig(String),
}

impl fmt::Display for DejaVuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DejaVuError::NoTrainingData => {
                write!(f, "no workload signatures collected during learning")
            }
            DejaVuError::NotTrained => write!(f, "classifier has not been trained"),
            DejaVuError::Ml(e) => write!(f, "machine learning error: {e}"),
            DejaVuError::Cloud(e) => write!(f, "platform error: {e}"),
            DejaVuError::InvalidConfig(msg) => write!(f, "invalid DejaVu configuration: {msg}"),
        }
    }
}

impl Error for DejaVuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DejaVuError::Ml(e) => Some(e),
            DejaVuError::Cloud(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dejavu_ml::MlError> for DejaVuError {
    fn from(e: dejavu_ml::MlError) -> Self {
        DejaVuError::Ml(e)
    }
}

impl From<dejavu_cloud::CloudError> for DejaVuError {
    fn from(e: dejavu_cloud::CloudError) -> Self {
        DejaVuError::Cloud(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = DejaVuError::from(dejavu_ml::MlError::EmptyDataset);
        assert!(e.to_string().contains("machine learning"));
        assert!(e.source().is_some());
        assert!(DejaVuError::NotTrained.source().is_none());
        assert!(!DejaVuError::NoTrainingData.to_string().is_empty());
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error + Send + Sync>() {}
        check::<DejaVuError>();
    }
}
