//! Versioned, deterministic persistence for the fleet-shared signature
//! repository.
//!
//! A snapshot captures everything the repository needs to resume **bit
//! identically**: the sharding configuration, every namespace's anchors (in
//! anchor-id order, with full-precision centroid values), every entry with its
//! reuse counters, and the per-shard statistics. The φ-space ball-tree anchor
//! index is *not* serialized — it is a pure acceleration structure whose
//! results are provably identical to a linear scan, so the loader simply
//! rebuilds it.
//!
//! # Format
//!
//! The format is a line-oriented text format, chosen over the vendored serde
//! stubs because it must round-trip `f64`s bit-exactly and emit byte-identical
//! output for identical repositories (floats are written as 16-digit hex IEEE
//! bit patterns, `fb<bits>`). The first line carries the format version and is
//! checked on load:
//!
//! ```text
//! dejavu-fleet-snapshot v1
//! config shards=16 tolerance=fb3fb999999999999a ttl=none clock=fb40f5180000000000
//! namespace 42
//! anchor 0 fb4024000000000000 fb4034000000000000
//! entry 0 0 L 4 fb0000000000000000 7 12 3
//! shard 0 12 3 5 0 3 1
//! end
//! ```
//!
//! * `namespace <id>` starts a namespace block; `anchor <id> <values…>` lines
//!   list its anchors in id order (anchors whose dimensionality differs from
//!   the namespace's first non-empty anchor are the "misfits" of
//!   [`shared_repo`](crate::shared_repo) and are reconstructed as such);
//!   `entry <anchor> <bucket> <type> <count> <tuned_at> <owner> <hits>
//!   <cross_hits>` lines list its entries in key order.
//! * `shard <idx> <hits> <misses> <insertions> <evictions> <cross> <anchors>`
//!   lines restore the per-shard statistics counters.
//! * `end` terminates the snapshot; trailing garbage is rejected.
//!
//! Version policy: the major version (`v1`) changes whenever a change would
//! make an old snapshot decode to a *different* repository state; loaders
//! reject versions they do not understand rather than guessing. New optional
//! trailing fields within a line are **not** allowed — that would break the
//! byte-identical determinism guarantee tests rely on.

use crate::shared_repo::ShardStats;
use dejavu_cloud::{InstanceType, ResourceAllocation};
use serde::{Deserialize, Serialize};

/// The version string written to (and required of) every snapshot.
pub const SNAPSHOT_VERSION: &str = "dejavu-fleet-snapshot v1";

/// The version string written to (and required of) every **delta** snapshot.
///
/// A delta is the `v1.1` incremental companion of the `v1` full format: it
/// carries the full replacement image of every namespace that changed on one
/// shard during one committed epoch, plus that shard's statistics counters
/// and the global clock high-water mark. Applying the epoch-ordered chain of
/// deltas for a shard onto a `v1` base snapshot reproduces the repository
/// state bit-exactly (namespaces are replaced wholesale, so there are no
/// partial-merge ambiguities and no deletion records — namespaces never
/// disappear, entries within one are replaced with the namespace).
pub const DELTA_SNAPSHOT_VERSION: &str = "dejavu-fleet-snapshot v1.1 delta";

/// Upper bound on the shard count a snapshot may declare. Real repositories
/// use a handful of lock stripes (default 16); the bound exists so a corrupt
/// or hostile `config shards=…` line is rejected with a typed error instead
/// of aborting the process inside a huge allocation.
pub const MAX_SHARDS: usize = 1 << 16;

// The snapshot types stay serde-shaped so the planned swap to the real serde
// (ROADMAP: `vendor/*` are hermetic stand-ins) is a manifest-only change:
// these bounds fail to compile if anyone drops the derives — which is also
// what requires the vendored derive macros to emit real marker impls.
const _: () = {
    fn serde_shaped<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    #[allow(dead_code)]
    fn assert_snapshot_types_are_serde_shaped() {
        serde_shaped::<RepoSnapshot>();
        serde_shaped::<NamespaceSnapshot>();
        serde_shaped::<AnchorSnapshot>();
        serde_shaped::<EntrySnapshot>();
        serde_shaped::<DeltaSnapshot>();
    }
};

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The version line did not match [`SNAPSHOT_VERSION`].
    Version {
        /// The version line actually found.
        found: String,
    },
    /// A line failed to parse.
    Format {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The decoded data is structurally inconsistent (e.g. anchor ids with
    /// gaps, entries referencing unknown anchors, shard index out of range).
    Inconsistent {
        /// What went wrong.
        message: String,
    },
    /// A delta chain was applied with no base snapshot. Deltas only carry the
    /// namespaces that *changed*; without the full base image the unchanged
    /// namespaces are unrecoverable, so this is always an error.
    MissingBase,
    /// A delta arrived out of epoch order for its shard. Chains must be
    /// applied in strictly consecutive epoch order — skipping an epoch would
    /// silently lose its changes, and replaying backwards would resurrect
    /// overwritten state.
    DeltaOrder {
        /// The shard whose chain broke order.
        shard: usize,
        /// The epoch the chain expected next.
        expected_epoch: usize,
        /// The epoch the delta actually carried.
        found_epoch: usize,
    },
    /// The delta does not belong to the base it was applied to (shard index
    /// out of range, or a namespace routed to a different shard — i.e. the
    /// base was taken with a different shard count).
    BaseMismatch {
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Version { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found:?} (expected {SNAPSHOT_VERSION:?})"
                )
            }
            SnapshotError::Format { line, message } => {
                write!(f, "snapshot line {line}: {message}")
            }
            SnapshotError::Inconsistent { message } => {
                write!(f, "inconsistent snapshot: {message}")
            }
            SnapshotError::MissingBase => {
                write!(
                    f,
                    "delta chain has no base snapshot (deltas only carry changed \
                     namespaces; a full base is required)"
                )
            }
            SnapshotError::DeltaOrder {
                shard,
                expected_epoch,
                found_epoch,
            } => {
                write!(
                    f,
                    "delta chain for shard {shard} is out of order: expected epoch \
                     {expected_epoch}, found {found_epoch}"
                )
            }
            SnapshotError::BaseMismatch { message } => {
                write!(f, "delta does not match its base snapshot: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One anchor of a namespace: its id and full-precision centroid values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnchorSnapshot {
    /// The anchor id (dense: ids cover `0..count`).
    pub id: u32,
    /// Full-catalogue signature values of the anchor centroid.
    pub values: Vec<f64>,
}

/// One stored entry of a namespace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntrySnapshot {
    /// The anchor the entry is keyed under.
    pub anchor: u32,
    /// The interference bucket the entry is keyed under.
    pub bucket: u32,
    /// The cached allocation decision.
    pub allocation: ResourceAllocation,
    /// When a tuner produced the entry, in **global fleet time** (tenant
    /// views translate their local clocks at the publish boundary, so TTL
    /// staleness is coherent across tenants and across restarts).
    pub tuned_at_secs: f64,
    /// The tenant whose tuning produced the entry.
    pub owner: usize,
    /// Total lookups served from the entry.
    pub hits: u64,
    /// Lookups served to tenants other than the owner.
    pub cross_tenant_hits: u64,
}

/// One namespace: anchors in id order plus entries in key order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamespaceSnapshot {
    /// The namespace id.
    pub id: u64,
    /// All anchors, in strictly increasing id order.
    pub anchors: Vec<AnchorSnapshot>,
    /// All entries, in `(anchor, bucket)` order.
    pub entries: Vec<EntrySnapshot>,
}

/// The complete, plain-data image of a [`crate::SharedSignatureRepository`].
///
/// Obtained from [`crate::SharedSignatureRepository::to_snapshot`] and turned
/// back into a repository by
/// [`crate::SharedSignatureRepository::from_snapshot`]; [`encode`] and
/// [`decode`] convert it to and from the persistent text form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepoSnapshot {
    /// Number of lock-striped shards.
    pub shards: usize,
    /// The anchor match tolerance the repository was built with.
    pub match_tolerance: f64,
    /// TTL in seconds, if entries expire.
    pub ttl_secs: Option<f64>,
    /// The global fleet clock when the snapshot was taken (the high-water
    /// mark of times the repository has seen). A warm start resumes the
    /// fleet clock here, so entry ages — and with them TTL expiry — carry
    /// over restarts instead of resetting to zero.
    pub clock_secs: f64,
    /// Every non-empty namespace, in (shard index, namespace id) order.
    pub namespaces: Vec<NamespaceSnapshot>,
    /// Per-shard statistics counters, one per shard.
    pub shard_stats: Vec<ShardStats>,
}

/// One incremental checkpoint: everything that changed on one shard during
/// one committed epoch.
///
/// Changed namespaces are carried as **full replacement images** (the same
/// [`NamespaceSnapshot`] records the full format uses), so applying a delta
/// is a wholesale swap — no merge logic, no deletion records, and bit-exact
/// by construction. The shard's statistics counters travel with it because
/// they advance on every commit and sweep of the shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaSnapshot {
    /// The shard the delta belongs to.
    pub shard: usize,
    /// The epoch whose commit (and trailing TTL sweep) the delta captures;
    /// the delta moves the shard from "commits < epoch" to
    /// "commits ≤ epoch".
    pub epoch: usize,
    /// The global fleet clock high-water mark when the delta was captured.
    pub clock_secs: f64,
    /// Full replacement images of every namespace that changed this epoch,
    /// in namespace-id order.
    pub namespaces: Vec<NamespaceSnapshot>,
    /// The shard's statistics counters after the commit.
    pub shard_stats: ShardStats,
}

impl RepoSnapshot {
    /// Compacts the snapshot in place: drops every entry that never served a
    /// lookup (`hits == 0`), the dead weight a long-lived fleet cache
    /// accretes from one-off workloads. Anchors are kept even when their
    /// last entry goes — restore requires dense anchor ids, and a warm
    /// workload may re-publish under an existing anchor. Returns how many
    /// entries were dropped.
    pub fn compact(&mut self) -> usize {
        let mut dropped = 0;
        for ns in &mut self.namespaces {
            let before = ns.entries.len();
            ns.entries.retain(|e| e.hits > 0);
            dropped += before - ns.entries.len();
        }
        dropped
    }
}

/// Encodes an `f64` as its IEEE-754 bit pattern (`fb` + 16 hex digits):
/// bit-exact and byte-deterministic, unlike decimal formatting.
fn write_f64(out: &mut String, v: f64) {
    out.push_str("fb");
    out.push_str(&format!("{:016x}", v.to_bits()));
}

fn parse_f64(tok: &str) -> Option<f64> {
    let hex = tok.strip_prefix("fb")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
}

/// Serializes a snapshot to the versioned text format. Output is
/// byte-deterministic: identical repositories encode to identical strings.
pub fn encode(snapshot: &RepoSnapshot) -> String {
    let mut out = String::new();
    out.push_str(SNAPSHOT_VERSION);
    out.push('\n');
    out.push_str(&format!("config shards={} tolerance=", snapshot.shards));
    write_f64(&mut out, snapshot.match_tolerance);
    out.push_str(" ttl=");
    match snapshot.ttl_secs {
        Some(secs) => write_f64(&mut out, secs),
        None => out.push_str("none"),
    }
    out.push_str(" clock=");
    write_f64(&mut out, snapshot.clock_secs);
    out.push('\n');
    for ns in &snapshot.namespaces {
        encode_namespace(&mut out, ns);
    }
    for (idx, s) in snapshot.shard_stats.iter().enumerate() {
        out.push_str(&format!("shard {idx} "));
        write_stats_fields(&mut out, s);
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// Writes one namespace block (shared between the full and delta encoders).
fn encode_namespace(out: &mut String, ns: &NamespaceSnapshot) {
    out.push_str(&format!("namespace {}\n", ns.id));
    for anchor in &ns.anchors {
        out.push_str(&format!("anchor {}", anchor.id));
        for &v in &anchor.values {
            out.push(' ');
            write_f64(out, v);
        }
        out.push('\n');
    }
    for e in &ns.entries {
        let ty = match e.allocation.instance_type() {
            InstanceType::Large => 'L',
            InstanceType::ExtraLarge => 'X',
        };
        out.push_str(&format!(
            "entry {} {} {} {} ",
            e.anchor,
            e.bucket,
            ty,
            e.allocation.count()
        ));
        write_f64(out, e.tuned_at_secs);
        out.push_str(&format!(
            " {} {} {}\n",
            e.owner, e.hits, e.cross_tenant_hits
        ));
    }
}

/// Writes the six statistics counters in the order every stats-bearing
/// record uses (`shard` in the full format, `stats` in the delta format).
fn write_stats_fields(out: &mut String, s: &ShardStats) {
    out.push_str(&format!(
        "{} {} {} {} {} {}",
        s.hits, s.misses, s.insertions, s.evictions, s.cross_tenant_hits, s.anchors_created
    ));
}

/// Serializes a delta to the versioned `v1.1` text format. Output is
/// byte-deterministic, like [`encode`].
pub fn encode_delta(delta: &DeltaSnapshot) -> String {
    let mut out = String::new();
    out.push_str(DELTA_SNAPSHOT_VERSION);
    out.push('\n');
    out.push_str(&format!(
        "delta shard={} epoch={} clock=",
        delta.shard, delta.epoch
    ));
    write_f64(&mut out, delta.clock_secs);
    out.push('\n');
    for ns in &delta.namespaces {
        encode_namespace(&mut out, ns);
    }
    out.push_str("stats ");
    write_stats_fields(&mut out, &delta.shard_stats);
    out.push('\n');
    out.push_str("end\n");
    out
}

fn format_err(line: usize, message: impl Into<String>) -> SnapshotError {
    SnapshotError::Format {
        line,
        message: message.into(),
    }
}

fn parse_int<T: std::str::FromStr>(tok: &str, line: usize, what: &str) -> Result<T, SnapshotError> {
    tok.parse()
        .map_err(|_| format_err(line, format!("bad {what} {tok:?}")))
}

fn parse_float(tok: &str, line: usize, what: &str) -> Result<f64, SnapshotError> {
    parse_f64(tok).ok_or_else(|| {
        format_err(
            line,
            format!("bad {what} {tok:?} (expected fb<16 hex digits>)"),
        )
    })
}

/// Parses an `anchor <id> <values…>` record (head token already consumed).
fn parse_anchor(
    toks: &mut std::str::SplitWhitespace,
    line_no: usize,
) -> Result<AnchorSnapshot, SnapshotError> {
    let id = parse_int::<u32>(
        toks.next()
            .ok_or_else(|| format_err(line_no, "anchor needs an id"))?,
        line_no,
        "anchor id",
    )?;
    let values = toks
        .map(|t| parse_float(t, line_no, "anchor value"))
        .collect::<Result<Vec<f64>, _>>()?;
    Ok(AnchorSnapshot { id, values })
}

/// Parses an `entry …` record (head token already consumed).
fn parse_entry(
    toks: &mut std::str::SplitWhitespace,
    line_no: usize,
) -> Result<EntrySnapshot, SnapshotError> {
    let mut next = |what: &str| {
        toks.next()
            .ok_or_else(|| format_err(line_no, format!("entry is missing {what}")))
    };
    let anchor = parse_int::<u32>(next("anchor")?, line_no, "entry anchor")?;
    let bucket = parse_int::<u32>(next("bucket")?, line_no, "entry bucket")?;
    let ty = match next("instance type")? {
        "L" => InstanceType::Large,
        "X" => InstanceType::ExtraLarge,
        other => return Err(format_err(line_no, format!("bad instance type {other:?}"))),
    };
    let count = parse_int::<u32>(next("count")?, line_no, "entry count")?;
    let tuned_at_secs = parse_float(next("tuned_at")?, line_no, "tuned_at")?;
    let owner = parse_int::<usize>(next("owner")?, line_no, "entry owner")?;
    let hits = parse_int::<u64>(next("hits")?, line_no, "entry hits")?;
    let cross = parse_int::<u64>(next("cross hits")?, line_no, "entry cross hits")?;
    if toks.next().is_some() {
        return Err(format_err(line_no, "trailing tokens after entry"));
    }
    let allocation = ResourceAllocation::new(ty, count)
        .map_err(|e| format_err(line_no, format!("bad allocation: {e}")))?;
    Ok(EntrySnapshot {
        anchor,
        bucket,
        allocation,
        tuned_at_secs,
        owner,
        hits,
        cross_tenant_hits: cross,
    })
}

/// Parses the six statistics counters of a `shard`/`stats` record and
/// rejects trailing tokens. `record` names the record kind in errors.
fn parse_stats_fields(
    toks: &mut std::str::SplitWhitespace,
    line_no: usize,
    record: &str,
) -> Result<ShardStats, SnapshotError> {
    let mut next = |what: &str| {
        toks.next()
            .ok_or_else(|| format_err(line_no, format!("{record} is missing {what}")))
    };
    let stats = ShardStats {
        hits: parse_int(next("hits")?, line_no, "shard hits")?,
        misses: parse_int(next("misses")?, line_no, "shard misses")?,
        insertions: parse_int(next("insertions")?, line_no, "shard insertions")?,
        evictions: parse_int(next("evictions")?, line_no, "shard evictions")?,
        cross_tenant_hits: parse_int(next("cross")?, line_no, "shard cross hits")?,
        anchors_created: parse_int(next("anchors")?, line_no, "shard anchors")?,
    };
    if toks.next().is_some() {
        return Err(format_err(
            line_no,
            format!("trailing tokens after {record}"),
        ));
    }
    Ok(stats)
}

/// Parses the versioned text format back into a [`RepoSnapshot`].
pub fn decode(text: &str) -> Result<RepoSnapshot, SnapshotError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (_, version) = lines.next().ok_or_else(|| SnapshotError::Version {
        found: String::new(),
    })?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::Version {
            found: version.to_string(),
        });
    }

    let (config_line_no, config_line) = lines
        .next()
        .ok_or_else(|| format_err(2, "missing config line"))?;
    let mut shards = None;
    let mut tolerance = None;
    let mut ttl_secs = None;
    let mut clock_secs = None;
    let mut fields = config_line.split_whitespace();
    if fields.next() != Some("config") {
        return Err(format_err(config_line_no, "expected `config ...`"));
    }
    for field in fields {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format_err(config_line_no, format!("bad config field {field:?}")))?;
        match key {
            "shards" => shards = Some(parse_int::<usize>(value, config_line_no, "shard count")?),
            "tolerance" => tolerance = Some(parse_float(value, config_line_no, "tolerance")?),
            "ttl" => {
                ttl_secs = Some(if value == "none" {
                    None
                } else {
                    Some(parse_float(value, config_line_no, "ttl")?)
                })
            }
            "clock" => clock_secs = Some(parse_float(value, config_line_no, "clock")?),
            other => {
                return Err(format_err(
                    config_line_no,
                    format!("unknown config key {other:?}"),
                ))
            }
        }
    }
    let shards = shards.ok_or_else(|| format_err(config_line_no, "config is missing `shards`"))?;
    let match_tolerance =
        tolerance.ok_or_else(|| format_err(config_line_no, "config is missing `tolerance`"))?;
    let ttl_secs = ttl_secs.ok_or_else(|| format_err(config_line_no, "config is missing `ttl`"))?;
    let clock_secs =
        clock_secs.ok_or_else(|| format_err(config_line_no, "config is missing `clock`"))?;

    let mut namespaces: Vec<NamespaceSnapshot> = Vec::new();
    let mut shard_stats: Vec<(usize, ShardStats)> = Vec::new();
    let mut ended = false;
    for (line_no, line) in &mut lines {
        let mut toks = line.split_whitespace();
        let Some(head) = toks.next() else {
            return Err(format_err(line_no, "blank line"));
        };
        match head {
            "namespace" => {
                let id = parse_int::<u64>(
                    toks.next()
                        .ok_or_else(|| format_err(line_no, "namespace needs an id"))?,
                    line_no,
                    "namespace id",
                )?;
                if toks.next().is_some() {
                    return Err(format_err(line_no, "trailing tokens after namespace id"));
                }
                namespaces.push(NamespaceSnapshot {
                    id,
                    anchors: Vec::new(),
                    entries: Vec::new(),
                });
            }
            "anchor" => {
                let ns = namespaces
                    .last_mut()
                    .ok_or_else(|| format_err(line_no, "anchor before any namespace"))?;
                if !ns.entries.is_empty() {
                    return Err(format_err(line_no, "anchor after entries in a namespace"));
                }
                ns.anchors.push(parse_anchor(&mut toks, line_no)?);
            }
            "entry" => {
                let ns = namespaces
                    .last_mut()
                    .ok_or_else(|| format_err(line_no, "entry before any namespace"))?;
                ns.entries.push(parse_entry(&mut toks, line_no)?);
            }
            "shard" => {
                let idx = parse_int::<usize>(
                    toks.next()
                        .ok_or_else(|| format_err(line_no, "shard is missing index"))?,
                    line_no,
                    "shard index",
                )?;
                shard_stats.push((idx, parse_stats_fields(&mut toks, line_no, "shard")?));
            }
            "end" => {
                ended = true;
                break;
            }
            other => return Err(format_err(line_no, format!("unknown record {other:?}"))),
        }
    }
    if !ended {
        return Err(SnapshotError::Inconsistent {
            message: "snapshot is truncated (no `end` line)".into(),
        });
    }
    if let Some((line_no, _)) = lines.next() {
        return Err(format_err(line_no, "data after `end`"));
    }

    if shards == 0 || shards > MAX_SHARDS {
        return Err(SnapshotError::Inconsistent {
            message: format!("shard count {shards} outside 1..={MAX_SHARDS}"),
        });
    }
    let mut stats = vec![ShardStats::default(); shards];
    let mut seen = vec![false; shards];
    for (idx, s) in shard_stats {
        if idx >= shards {
            return Err(SnapshotError::Inconsistent {
                message: format!("shard index {idx} out of range (shards={shards})"),
            });
        }
        if std::mem::replace(&mut seen[idx], true) {
            return Err(SnapshotError::Inconsistent {
                message: format!("duplicate shard record {idx}"),
            });
        }
        stats[idx] = s;
    }
    // The encoder always writes one record per shard; a gap means the
    // snapshot was truncated or hand-mangled. Reject rather than silently
    // zero that shard's statistics.
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(SnapshotError::Inconsistent {
            message: format!("missing shard record {missing} (shards={shards})"),
        });
    }

    Ok(RepoSnapshot {
        shards,
        match_tolerance,
        ttl_secs,
        clock_secs,
        namespaces,
        shard_stats: stats,
    })
}

/// Parses the `v1.1` delta text format back into a [`DeltaSnapshot`].
///
/// Feeding a full `v1` snapshot (or any other version) here is rejected with
/// [`SnapshotError::Version`], and vice versa for [`decode`] — a chain whose
/// base and deltas disagree on format version can never be silently applied.
pub fn decode_delta(text: &str) -> Result<DeltaSnapshot, SnapshotError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (_, version) = lines.next().ok_or_else(|| SnapshotError::Version {
        found: String::new(),
    })?;
    if version != DELTA_SNAPSHOT_VERSION {
        return Err(SnapshotError::Version {
            found: version.to_string(),
        });
    }

    let (header_no, header) = lines
        .next()
        .ok_or_else(|| format_err(2, "missing delta header line"))?;
    let mut shard = None;
    let mut epoch = None;
    let mut clock_secs = None;
    let mut fields = header.split_whitespace();
    if fields.next() != Some("delta") {
        return Err(format_err(header_no, "expected `delta ...`"));
    }
    for field in fields {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format_err(header_no, format!("bad delta field {field:?}")))?;
        match key {
            "shard" => shard = Some(parse_int::<usize>(value, header_no, "delta shard")?),
            "epoch" => epoch = Some(parse_int::<usize>(value, header_no, "delta epoch")?),
            "clock" => clock_secs = Some(parse_float(value, header_no, "delta clock")?),
            other => {
                return Err(format_err(
                    header_no,
                    format!("unknown delta key {other:?}"),
                ))
            }
        }
    }
    let shard = shard.ok_or_else(|| format_err(header_no, "delta is missing `shard`"))?;
    let epoch = epoch.ok_or_else(|| format_err(header_no, "delta is missing `epoch`"))?;
    let clock_secs = clock_secs.ok_or_else(|| format_err(header_no, "delta is missing `clock`"))?;

    let mut namespaces: Vec<NamespaceSnapshot> = Vec::new();
    let mut shard_stats: Option<ShardStats> = None;
    let mut ended = false;
    for (line_no, line) in &mut lines {
        let mut toks = line.split_whitespace();
        let Some(head) = toks.next() else {
            return Err(format_err(line_no, "blank line"));
        };
        match head {
            "namespace" => {
                let id = parse_int::<u64>(
                    toks.next()
                        .ok_or_else(|| format_err(line_no, "namespace needs an id"))?,
                    line_no,
                    "namespace id",
                )?;
                if toks.next().is_some() {
                    return Err(format_err(line_no, "trailing tokens after namespace id"));
                }
                namespaces.push(NamespaceSnapshot {
                    id,
                    anchors: Vec::new(),
                    entries: Vec::new(),
                });
            }
            "anchor" => {
                let ns = namespaces
                    .last_mut()
                    .ok_or_else(|| format_err(line_no, "anchor before any namespace"))?;
                if !ns.entries.is_empty() {
                    return Err(format_err(line_no, "anchor after entries in a namespace"));
                }
                ns.anchors.push(parse_anchor(&mut toks, line_no)?);
            }
            "entry" => {
                let ns = namespaces
                    .last_mut()
                    .ok_or_else(|| format_err(line_no, "entry before any namespace"))?;
                ns.entries.push(parse_entry(&mut toks, line_no)?);
            }
            "stats" => {
                if shard_stats.is_some() {
                    return Err(format_err(line_no, "duplicate stats record"));
                }
                shard_stats = Some(parse_stats_fields(&mut toks, line_no, "stats")?);
            }
            "end" => {
                ended = true;
                break;
            }
            other => return Err(format_err(line_no, format!("unknown record {other:?}"))),
        }
    }
    if !ended {
        return Err(SnapshotError::Inconsistent {
            message: "delta is truncated (no `end` line)".into(),
        });
    }
    if let Some((line_no, _)) = lines.next() {
        return Err(format_err(line_no, "data after `end`"));
    }
    let shard_stats = shard_stats.ok_or_else(|| SnapshotError::Inconsistent {
        message: "delta is missing its `stats` record".into(),
    })?;
    Ok(DeltaSnapshot {
        shard,
        epoch,
        clock_secs,
        namespaces,
        shard_stats,
    })
}

/// Applies one delta onto a base snapshot in place: replaces (or inserts)
/// every namespace the delta carries, overwrites the shard's statistics, and
/// advances the clock high-water mark. Namespace placement preserves the
/// encoder's (shard, namespace id) order, so a materialized snapshot is
/// byte-identical to one taken from a live repository in the same state.
///
/// Epoch ordering is *not* checked here — that is the chain's job
/// ([`apply_chain`]) — but shard routing is: a delta whose namespaces do not
/// route to its declared shard under the base's shard count was taken from a
/// differently-configured repository and is rejected with
/// [`SnapshotError::BaseMismatch`].
pub fn apply_delta(base: &mut RepoSnapshot, delta: &DeltaSnapshot) -> Result<(), SnapshotError> {
    if delta.shard >= base.shards {
        return Err(SnapshotError::BaseMismatch {
            message: format!(
                "delta shard {} out of range (base has {} shards)",
                delta.shard, base.shards
            ),
        });
    }
    let shard_of = |ns: u64| crate::shared_repo::shard_of_namespace(ns, base.shards);
    for ns in &delta.namespaces {
        let routed = shard_of(ns.id);
        if routed != delta.shard {
            return Err(SnapshotError::BaseMismatch {
                message: format!(
                    "namespace {} routes to shard {routed}, not the delta's shard {} \
                     (base taken with a different shard count?)",
                    ns.id, delta.shard
                ),
            });
        }
        let key = (routed, ns.id);
        match base
            .namespaces
            .binary_search_by_key(&key, |existing| (shard_of(existing.id), existing.id))
        {
            Ok(at) => base.namespaces[at] = ns.clone(),
            Err(at) => base.namespaces.insert(at, ns.clone()),
        }
    }
    base.shard_stats[delta.shard] = delta.shard_stats;
    if delta.clock_secs > base.clock_secs {
        base.clock_secs = delta.clock_secs;
    }
    Ok(())
}

/// Applies an epoch-ordered chain of deltas onto its base snapshot and
/// returns the materialized state.
///
/// * `base = None` models a lost (or never-written) base checkpoint:
///   unrecoverable, because deltas only carry *changed* namespaces —
///   [`SnapshotError::MissingBase`].
/// * Per shard, deltas must arrive in strictly consecutive epoch order; the
///   first delta seen for a shard anchors its chain (the base may already
///   fold earlier epochs in, via compaction). A gap or a replay is
///   [`SnapshotError::DeltaOrder`].
pub fn apply_chain(
    base: Option<RepoSnapshot>,
    deltas: &[DeltaSnapshot],
) -> Result<RepoSnapshot, SnapshotError> {
    let mut snapshot = base.ok_or(SnapshotError::MissingBase)?;
    let mut next_epoch: Vec<Option<usize>> = vec![None; snapshot.shards];
    for delta in deltas {
        if delta.shard >= snapshot.shards {
            return Err(SnapshotError::BaseMismatch {
                message: format!(
                    "delta shard {} out of range (base has {} shards)",
                    delta.shard, snapshot.shards
                ),
            });
        }
        if let Some(expected) = next_epoch[delta.shard] {
            if delta.epoch != expected {
                return Err(SnapshotError::DeltaOrder {
                    shard: delta.shard,
                    expected_epoch: expected,
                    found_epoch: delta.epoch,
                });
            }
        }
        apply_delta(&mut snapshot, delta)?;
        next_epoch[delta.shard] = Some(delta.epoch + 1);
    }
    Ok(snapshot)
}

/// The recovery substrate of the fault-tolerant transports: one base
/// snapshot plus a per-shard chain of epoch deltas, with bounded-length
/// compaction.
///
/// The committer [`record`](CheckpointStore::record)s one delta per
/// `(shard, epoch)` commit; recovery [`materialize`](CheckpointStore::materialize)s
/// the repository image at any retained epoch frontier (crash replay, shard
/// re-seed). Chains are kept short by folding deltas into a per-shard
/// *folded* image every `checkpoint_every` records — but never past the
/// shard's [`floor`](CheckpointStore::set_floor): the oldest epoch a pending
/// recovery may still need to replay from. A floor of `usize::MAX` (the
/// default) lets compaction fold everything.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    base: RepoSnapshot,
    chains: Vec<ShardChain>,
    checkpoint_every: usize,
    checkpoints: u64,
    compactions: u64,
    chain_peak: usize,
}

#[derive(Debug, Clone)]
struct ShardChain {
    /// The base with epochs `0..folded_epochs` of this shard folded in
    /// (`None` until the first compaction: read through to the shared base).
    folded: Option<RepoSnapshot>,
    folded_epochs: usize,
    /// Deltas for epochs `folded_epochs..folded_epochs + deltas.len()`,
    /// strictly consecutive.
    deltas: Vec<DeltaSnapshot>,
    /// Compaction never folds epochs `>= floor`.
    floor: usize,
}

impl CheckpointStore {
    /// A store over `base` (the quiescent run-start image), compacting each
    /// shard's chain whenever it exceeds `checkpoint_every` deltas
    /// (`0` = never compact).
    pub fn new(base: RepoSnapshot, checkpoint_every: usize) -> Self {
        let shards = base.shards;
        CheckpointStore {
            base,
            chains: (0..shards)
                .map(|_| ShardChain {
                    folded: None,
                    folded_epochs: 0,
                    deltas: Vec::new(),
                    floor: usize::MAX,
                })
                .collect(),
            checkpoint_every,
            checkpoints: 0,
            compactions: 0,
            chain_peak: 0,
        }
    }

    /// Rebuilds a store from a *recovered* image whose shards already hold
    /// history: `base` is the merged replay result and `chain_starts[shard]`
    /// is the epoch count it already folds in for that shard, so the next
    /// [`record`](CheckpointStore::record) for the shard must carry exactly
    /// that epoch. The durable layer boots through this after replaying its
    /// manifest.
    ///
    /// Each chain starts empty with its folded head at `chain_starts[shard]`
    /// reading through to the shared `base` — correct because the recovered
    /// image *is* every shard's merged prefix, and
    /// [`materialize`](CheckpointStore::materialize) only ever reads the
    /// caller's own shard from it.
    pub fn resume(
        base: RepoSnapshot,
        chain_starts: &[usize],
        checkpoint_every: usize,
    ) -> Result<Self, SnapshotError> {
        if chain_starts.len() != base.shards {
            return Err(SnapshotError::BaseMismatch {
                message: format!(
                    "resume carries {} chain starts, base has {} shards",
                    chain_starts.len(),
                    base.shards
                ),
            });
        }
        Ok(CheckpointStore {
            chains: chain_starts
                .iter()
                .map(|&start| ShardChain {
                    folded: None,
                    folded_epochs: start,
                    deltas: Vec::new(),
                    floor: usize::MAX,
                })
                .collect(),
            base,
            checkpoint_every,
            checkpoints: 0,
            compactions: 0,
            chain_peak: 0,
        })
    }

    /// Declares that epochs `>= epoch` of `shard` must stay individually
    /// replayable (a pending tenant recovery may need them); compaction will
    /// not fold past it. Raising the floor re-enables compaction of the
    /// backlog at the next [`record`](CheckpointStore::record).
    ///
    /// A floor below the shard's already-folded chain head is unhonourable:
    /// those epochs are gone, and a recovery that later trusted the stale
    /// floor would ask [`materialize`](CheckpointStore::materialize) for an
    /// image compaction folded away. The request is clamped to the chain
    /// head instead, and the **effective** floor is returned so callers can
    /// observe the adjustment.
    pub fn set_floor(&mut self, shard: usize, epoch: usize) -> usize {
        match self.chains.get_mut(shard) {
            Some(chain) => {
                let effective = epoch.max(chain.folded_epochs);
                chain.floor = effective;
                effective
            }
            None => epoch,
        }
    }

    /// The current compaction floor of `shard` (`usize::MAX` = unpinned).
    pub fn floor(&self, shard: usize) -> usize {
        self.chains.get(shard).map_or(usize::MAX, |c| c.floor)
    }

    /// Appends one captured delta to its shard's chain. Deltas must arrive
    /// in strictly consecutive epoch order per shard (the committer's commit
    /// order guarantees it).
    pub fn record(&mut self, delta: DeltaSnapshot) -> Result<(), SnapshotError> {
        if delta.shard >= self.chains.len() {
            return Err(SnapshotError::BaseMismatch {
                message: format!(
                    "delta shard {} out of range (store has {} shards)",
                    delta.shard,
                    self.chains.len()
                ),
            });
        }
        let shard = delta.shard;
        let expected = {
            let chain = &self.chains[shard];
            chain.folded_epochs + chain.deltas.len()
        };
        if delta.epoch != expected {
            return Err(SnapshotError::DeltaOrder {
                shard,
                expected_epoch: expected,
                found_epoch: delta.epoch,
            });
        }
        self.chains[shard].deltas.push(delta);
        self.checkpoints += 1;
        let result = self.compact(shard);
        self.chain_peak = self.chain_peak.max(self.chains[shard].deltas.len());
        result
    }

    /// Folds the compactable prefix of `shard`'s chain into its folded image
    /// when the chain has outgrown the cadence.
    fn compact(&mut self, shard: usize) -> Result<(), SnapshotError> {
        if self.checkpoint_every == 0 {
            return Ok(());
        }
        let chain = &mut self.chains[shard];
        if chain.deltas.len() < self.checkpoint_every {
            return Ok(());
        }
        let compactable = chain
            .floor
            .saturating_sub(chain.folded_epochs)
            .min(chain.deltas.len());
        if compactable == 0 {
            return Ok(());
        }
        let mut folded = chain.folded.take().unwrap_or_else(|| self.base.clone());
        for delta in chain.deltas.drain(..compactable) {
            apply_delta(&mut folded, &delta)?;
            chain.folded_epochs += 1;
        }
        chain.folded = Some(folded);
        self.compactions += 1;
        Ok(())
    }

    /// Materializes the repository image of `shard` after `upto` committed
    /// epochs (`upto = 0` is the base). Other shards carry whatever the
    /// folded image holds for them — callers re-seeding or replaying one
    /// shard never read the rest.
    pub fn materialize(&self, shard: usize, upto: usize) -> Result<RepoSnapshot, SnapshotError> {
        let chain = self.chains.get(shard).ok_or(SnapshotError::BaseMismatch {
            message: format!(
                "shard {shard} out of range (store has {} shards)",
                self.chains.len()
            ),
        })?;
        if upto < chain.folded_epochs {
            return Err(SnapshotError::Inconsistent {
                message: format!(
                    "shard {shard} epoch {upto} was compacted away (folded through {})",
                    chain.folded_epochs
                ),
            });
        }
        let keep = upto - chain.folded_epochs;
        if keep > chain.deltas.len() {
            return Err(SnapshotError::Inconsistent {
                message: format!(
                    "shard {shard} chain ends at epoch {}, cannot materialize {upto}",
                    chain.folded_epochs + chain.deltas.len()
                ),
            });
        }
        let mut snapshot = chain.folded.clone().unwrap_or_else(|| self.base.clone());
        for delta in &chain.deltas[..keep] {
            apply_delta(&mut snapshot, delta)?;
        }
        Ok(snapshot)
    }

    /// The retained delta of `(shard, epoch)`, for epoch-by-epoch replay.
    pub fn delta(&self, shard: usize, epoch: usize) -> Result<DeltaSnapshot, SnapshotError> {
        let chain = self.chains.get(shard).ok_or(SnapshotError::BaseMismatch {
            message: format!(
                "shard {shard} out of range (store has {} shards)",
                self.chains.len()
            ),
        })?;
        if epoch < chain.folded_epochs {
            return Err(SnapshotError::Inconsistent {
                message: format!(
                    "shard {shard} epoch {epoch} was compacted away (folded through {})",
                    chain.folded_epochs
                ),
            });
        }
        chain
            .deltas
            .get(epoch - chain.folded_epochs)
            .cloned()
            .ok_or(SnapshotError::Inconsistent {
                message: format!("shard {shard} has no delta for epoch {epoch} yet"),
            })
    }

    /// Deltas recorded so far (compacted ones included).
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Compaction passes run so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The longest un-compacted chain any shard reached after a record's
    /// compaction pass — the store's peak memory pressure. Bounded on long
    /// runs only if floors advance as tenancy windows close.
    pub fn chain_peak(&self) -> usize {
        self.chain_peak
    }

    /// Un-compacted chain length of `shard`.
    pub fn chain_len(&self, shard: usize) -> usize {
        self.chains.get(shard).map_or(0, |c| c.deltas.len())
    }

    /// The exclusive end of `shard`'s recorded history: the highest epoch
    /// count [`materialize`](CheckpointStore::materialize) can produce
    /// (folded epochs plus the live chain).
    pub fn chain_end(&self, shard: usize) -> usize {
        self.chains
            .get(shard)
            .map_or(0, |c| c.folded_epochs + c.deltas.len())
    }

    /// How many of `shard`'s epochs compaction has folded into its head
    /// image — the oldest epoch count [`materialize`](CheckpointStore::materialize)
    /// can still produce.
    pub fn folded_epochs(&self, shard: usize) -> usize {
        self.chains.get(shard).map_or(0, |c| c.folded_epochs)
    }

    /// The folded head image of `shard`: the base with its first
    /// [`folded_epochs`](CheckpointStore::folded_epochs) epochs applied
    /// (the shared base itself until the first compaction). Only the
    /// caller's shard is meaningful in it — other shards may carry folds
    /// from their own chains.
    pub fn folded_image(&self, shard: usize) -> &RepoSnapshot {
        self.chains
            .get(shard)
            .and_then(|c| c.folded.as_ref())
            .unwrap_or(&self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RepoSnapshot {
        RepoSnapshot {
            shards: 4,
            match_tolerance: 0.1,
            ttl_secs: Some(86_400.0),
            clock_secs: 7_200.0,
            namespaces: vec![NamespaceSnapshot {
                id: 42,
                anchors: vec![
                    AnchorSnapshot {
                        id: 0,
                        values: vec![10.0, -0.5, 0.0],
                    },
                    AnchorSnapshot {
                        id: 1,
                        values: vec![7.0, 7.0],
                    },
                ],
                entries: vec![EntrySnapshot {
                    anchor: 0,
                    bucket: 2,
                    allocation: ResourceAllocation::extra_large(3),
                    tuned_at_secs: 3600.0,
                    owner: 9,
                    hits: 12,
                    cross_tenant_hits: 4,
                }],
            }],
            shard_stats: vec![ShardStats::default(); 4],
        }
    }

    #[test]
    fn encode_decode_round_trips_and_is_deterministic() {
        let snap = sample();
        let text = encode(&snap);
        assert_eq!(text, encode(&snap), "encoding must be deterministic");
        let back = decode(&text).expect("decodes");
        assert_eq!(back, snap);
        assert_eq!(encode(&back), text, "re-encoding is byte-identical");
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e308,
            -2.5e-17,
            f64::NAN,
        ] {
            let mut s = String::new();
            write_f64(&mut s, v);
            let back = parse_f64(&s).expect("parses");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} did not round-trip");
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut text = encode(&sample());
        text = text.replace("v1", "v0");
        assert!(matches!(decode(&text), Err(SnapshotError::Version { .. })));
    }

    #[test]
    fn truncated_and_trailing_snapshots_are_rejected() {
        let text = encode(&sample());
        let truncated = text.trim_end_matches("end\n");
        assert!(matches!(
            decode(truncated),
            Err(SnapshotError::Inconsistent { .. })
        ));
        let trailing = format!("{text}junk\n");
        assert!(matches!(
            decode(&trailing),
            Err(SnapshotError::Format { .. })
        ));
    }

    #[test]
    fn absurd_shard_counts_are_rejected_not_allocated() {
        let text = encode(&sample()).replace("shards=4", "shards=9000000000000000");
        match decode(&text) {
            Err(SnapshotError::Inconsistent { message }) => {
                assert!(message.contains("shard count"), "{message}");
            }
            other => panic!("expected an inconsistency error, got {other:?}"),
        }
        let mut snap = sample();
        snap.shards = MAX_SHARDS + 1;
        assert!(crate::SharedSignatureRepository::from_snapshot(&snap).is_err());
    }

    #[test]
    fn missing_shard_records_are_rejected() {
        let text: String = encode(&sample())
            .lines()
            .filter(|l| !l.starts_with("shard 2 "))
            .map(|l| format!("{l}\n"))
            .collect();
        match decode(&text) {
            Err(SnapshotError::Inconsistent { message }) => {
                assert!(message.contains("missing shard record 2"), "{message}");
            }
            other => panic!("expected an inconsistency error, got {other:?}"),
        }
    }

    #[test]
    fn garbled_lines_report_their_line_number() {
        let text = encode(&sample()).replace("entry 0 2 X 3", "entry 0 2 Q 3");
        match decode(&text) {
            Err(SnapshotError::Format { line, message }) => {
                assert!(line > 2, "line {line}");
                assert!(message.contains("instance type"), "{message}");
            }
            other => panic!("expected a format error, got {other:?}"),
        }
    }

    /// A delta for `sample()`'s namespace 42, on the shard that namespace
    /// actually routes to under 4 shards.
    fn sample_delta(epoch: usize) -> DeltaSnapshot {
        let shard = crate::shared_repo::shard_of_namespace(42, 4);
        DeltaSnapshot {
            shard,
            epoch,
            clock_secs: 9_000.0,
            namespaces: vec![NamespaceSnapshot {
                id: 42,
                anchors: vec![AnchorSnapshot {
                    id: 0,
                    values: vec![10.0, -0.5, 0.0],
                }],
                entries: vec![EntrySnapshot {
                    anchor: 0,
                    bucket: 2,
                    allocation: ResourceAllocation::large(5),
                    tuned_at_secs: 8_000.0,
                    owner: 3,
                    hits: 20,
                    cross_tenant_hits: 6,
                }],
            }],
            shard_stats: ShardStats {
                hits: 20,
                misses: 1,
                insertions: 2,
                evictions: 1,
                cross_tenant_hits: 6,
                anchors_created: 1,
            },
        }
    }

    #[test]
    fn delta_encode_decode_round_trips_and_is_deterministic() {
        let delta = sample_delta(7);
        let text = encode_delta(&delta);
        assert_eq!(text, encode_delta(&delta), "encoding must be deterministic");
        assert!(text.starts_with(DELTA_SNAPSHOT_VERSION));
        let back = decode_delta(&text).expect("decodes");
        assert_eq!(back, delta);
        assert_eq!(encode_delta(&back), text, "re-encoding is byte-identical");
    }

    #[test]
    fn full_and_delta_formats_reject_each_other() {
        // A v1 full snapshot is not a delta…
        match decode_delta(&encode(&sample())) {
            Err(SnapshotError::Version { found }) => {
                assert_eq!(found, SNAPSHOT_VERSION);
            }
            other => panic!("expected a version error, got {other:?}"),
        }
        // …and a v1.1 delta is not a full snapshot.
        match decode(&encode_delta(&sample_delta(0))) {
            Err(SnapshotError::Version { found }) => {
                assert_eq!(found, DELTA_SNAPSHOT_VERSION);
            }
            other => panic!("expected a version error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_deltas_are_rejected() {
        let text = encode_delta(&sample_delta(3));
        let truncated = text.trim_end_matches("end\n");
        match decode_delta(truncated) {
            Err(SnapshotError::Inconsistent { message }) => {
                assert!(message.contains("truncated"), "{message}");
            }
            other => panic!("expected an inconsistency error, got {other:?}"),
        }
        // Dropping the stats record truncates the chain's counter state even
        // when `end` survives.
        let no_stats: String = text
            .lines()
            .filter(|l| !l.starts_with("stats "))
            .map(|l| format!("{l}\n"))
            .collect();
        match decode_delta(&no_stats) {
            Err(SnapshotError::Inconsistent { message }) => {
                assert!(message.contains("stats"), "{message}");
            }
            other => panic!("expected an inconsistency error, got {other:?}"),
        }
    }

    #[test]
    fn chains_without_a_base_are_rejected() {
        assert!(matches!(
            apply_chain(None, &[sample_delta(0)]),
            Err(SnapshotError::MissingBase)
        ));
    }

    #[test]
    fn out_of_order_deltas_are_rejected() {
        let base = sample();
        // Skipping an epoch…
        match apply_chain(Some(base.clone()), &[sample_delta(3), sample_delta(5)]) {
            Err(SnapshotError::DeltaOrder {
                expected_epoch,
                found_epoch,
                ..
            }) => {
                assert_eq!((expected_epoch, found_epoch), (4, 5));
            }
            other => panic!("expected a delta-order error, got {other:?}"),
        }
        // …and replaying backwards are both order violations.
        match apply_chain(Some(base), &[sample_delta(3), sample_delta(2)]) {
            Err(SnapshotError::DeltaOrder {
                expected_epoch,
                found_epoch,
                ..
            }) => {
                assert_eq!((expected_epoch, found_epoch), (4, 2));
            }
            other => panic!("expected a delta-order error, got {other:?}"),
        }
    }

    #[test]
    fn deltas_from_a_different_shard_layout_are_rejected() {
        // Out-of-range shard index.
        let mut wild = sample_delta(0);
        wild.shard = 99;
        match apply_chain(Some(sample()), &[wild]) {
            Err(SnapshotError::BaseMismatch { message }) => {
                assert!(message.contains("out of range"), "{message}");
            }
            other => panic!("expected a base-mismatch error, got {other:?}"),
        }
        // Right range, wrong routing: the namespace does not live on the
        // declared shard under the base's shard count.
        let mut misrouted = sample_delta(0);
        misrouted.shard = (misrouted.shard + 1) % 4;
        match apply_chain(Some(sample()), &[misrouted]) {
            Err(SnapshotError::BaseMismatch { message }) => {
                assert!(message.contains("routes to shard"), "{message}");
            }
            other => panic!("expected a base-mismatch error, got {other:?}"),
        }
    }

    #[test]
    fn applying_a_chain_replaces_namespaces_and_advances_the_clock() {
        let base = sample();
        let delta = sample_delta(0);
        let out = apply_chain(Some(base.clone()), std::slice::from_ref(&delta)).expect("applies");
        assert_eq!(out.namespaces.len(), 1, "replacement, not duplication");
        assert_eq!(out.namespaces[0], delta.namespaces[0]);
        assert_eq!(out.shard_stats[delta.shard], delta.shard_stats);
        assert_eq!(out.clock_secs, 9_000.0, "clock advanced to the delta's");
        // A second namespace unknown to the base is inserted, keeping the
        // encoder's (shard, id) order — materialized and live snapshots stay
        // byte-comparable.
        let mut insert = sample_delta(1);
        let new_id = (0..u64::MAX)
            .find(|&id| id != 42 && crate::shared_repo::shard_of_namespace(id, 4) == insert.shard)
            .expect("some id routes to the same shard");
        insert.namespaces[0].id = new_id;
        let grown = apply_chain(Some(out), &[insert]).expect("applies");
        assert_eq!(grown.namespaces.len(), 2);
        assert_eq!(encode(&grown), encode(&decode(&encode(&grown)).unwrap()));
    }

    /// A delta for `sample()`'s shard carrying a per-epoch distinguishable
    /// entry, so materializations at different frontiers differ.
    fn chain_delta(epoch: usize) -> DeltaSnapshot {
        let mut delta = sample_delta(epoch);
        delta.namespaces[0].entries[0].hits = 100 + epoch as u64;
        delta.clock_secs = 9_000.0 + epoch as f64;
        delta
    }

    #[test]
    fn checkpoint_store_materializes_every_retained_frontier() {
        let base = sample();
        let shard = chain_delta(0).shard;
        let mut store = CheckpointStore::new(base.clone(), 0);
        for epoch in 0..4 {
            store.record(chain_delta(epoch)).expect("records");
        }
        assert_eq!(store.checkpoints(), 4);
        assert_eq!(store.compactions(), 0, "cadence 0 never compacts");
        // Frontier 0 is the untouched base; frontier e reflects delta e-1.
        assert_eq!(encode(&store.materialize(shard, 0).unwrap()), encode(&base));
        for upto in 1..=4 {
            let image = store.materialize(shard, upto).expect("materializes");
            assert_eq!(image.namespaces[0].entries[0].hits, 100 + upto as u64 - 1);
            let by_chain = apply_chain(
                Some(base.clone()),
                &(0..upto).map(chain_delta).collect::<Vec<_>>(),
            )
            .expect("chain applies");
            assert_eq!(encode(&image), encode(&by_chain));
        }
        // Individual deltas stay retrievable for epoch-by-epoch replay.
        assert_eq!(store.delta(shard, 2).unwrap(), chain_delta(2));
    }

    #[test]
    fn checkpoint_store_compaction_folds_but_preserves_materializations() {
        let shard = chain_delta(0).shard;
        let mut uncompacted = CheckpointStore::new(sample(), 0);
        let mut compacted = CheckpointStore::new(sample(), 2);
        for epoch in 0..7 {
            uncompacted.record(chain_delta(epoch)).expect("records");
            compacted.record(chain_delta(epoch)).expect("records");
        }
        assert!(compacted.compactions() > 0, "cadence 2 folds");
        assert!(compacted.chain_len(shard) < uncompacted.chain_len(shard));
        // The visible frontier is identical wherever both still retain it.
        let image = compacted.materialize(shard, 7).expect("materializes");
        assert_eq!(
            encode(&image),
            encode(&uncompacted.materialize(shard, 7).unwrap())
        );
        // Folded-away frontiers are a typed error, not silent corruption.
        match compacted.materialize(shard, 0) {
            Err(SnapshotError::Inconsistent { message }) => {
                assert!(message.contains("compacted away"), "{message}");
            }
            other => panic!("expected an inconsistent error, got {other:?}"),
        }
        match compacted.delta(shard, 0) {
            Err(SnapshotError::Inconsistent { message }) => {
                assert!(message.contains("compacted away"), "{message}");
            }
            other => panic!("expected an inconsistent error, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_store_floors_pin_replayable_epochs() {
        let shard = chain_delta(0).shard;
        let mut store = CheckpointStore::new(sample(), 2);
        store.set_floor(shard, 1);
        for epoch in 0..6 {
            store.record(chain_delta(epoch)).expect("records");
        }
        // Only epoch 0 may fold; everything from the floor up stays
        // individually replayable.
        for epoch in 1..6 {
            assert_eq!(store.delta(shard, epoch).unwrap(), chain_delta(epoch));
            store.materialize(shard, epoch).expect("materializes");
        }
        // Raising the floor re-enables compaction of the backlog.
        store.set_floor(shard, usize::MAX);
        store.record(chain_delta(6)).expect("records");
        assert!(store.chain_len(shard) < 6);
        store.materialize(shard, 7).expect("tip still materializes");
    }

    #[test]
    fn set_floor_clamps_below_the_folded_chain_head() {
        let shard = chain_delta(0).shard;
        let mut store = CheckpointStore::new(sample(), 2);
        for epoch in 0..6 {
            store.record(chain_delta(epoch)).expect("records");
        }
        assert!(store.compactions() > 0, "cadence 2 folds the prefix");
        let head = store.chain_end(shard) - store.chain_len(shard);
        assert!(head > 0, "some epochs folded away");
        // Lowering the floor below the folded head cannot resurrect folded
        // epochs: the request clamps to the head and reports the adjustment.
        let effective = store.set_floor(shard, 0);
        assert_eq!(effective, head, "floor clamped to the folded chain head");
        assert_eq!(store.floor(shard), head);
        // The lower-then-recover sequence: a recovery planned against the
        // *effective* floor materializes; the folded epochs it can no longer
        // reach stay a typed error rather than a stale-floor panic path.
        store
            .materialize(shard, effective)
            .expect("head materializes");
        for epoch in effective..6 {
            assert_eq!(store.delta(shard, epoch).unwrap(), chain_delta(epoch));
        }
        match store.materialize(shard, effective - 1) {
            Err(SnapshotError::Inconsistent { message }) => {
                assert!(message.contains("compacted away"), "{message}");
            }
            other => panic!("expected an inconsistent error, got {other:?}"),
        }
        // Floors at or above the head pass through unadjusted.
        assert_eq!(store.set_floor(shard, head + 1), head + 1);
    }

    #[test]
    fn checkpoint_store_rejects_gaps_and_unknown_shards() {
        let mut store = CheckpointStore::new(sample(), 0);
        store.record(chain_delta(0)).expect("records");
        match store.record(chain_delta(2)) {
            Err(SnapshotError::DeltaOrder {
                expected_epoch,
                found_epoch,
                ..
            }) => assert_eq!((expected_epoch, found_epoch), (1, 2)),
            other => panic!("expected a delta-order error, got {other:?}"),
        }
        let mut wild = chain_delta(1);
        wild.shard = 99;
        match store.record(wild) {
            Err(SnapshotError::BaseMismatch { message }) => {
                assert!(message.contains("out of range"), "{message}");
            }
            other => panic!("expected a base-mismatch error, got {other:?}"),
        }
        match store.materialize(0, 5) {
            Err(SnapshotError::Inconsistent { message }) => {
                assert!(message.contains("chain ends"), "{message}");
            }
            other => panic!("expected an inconsistent error, got {other:?}"),
        }
    }
}
