//! Figure-accuracy regression tests: pin the reproduced figs 6–11 numbers
//! against the paper's reported savings and adaptation times, so a perf PR
//! that accidentally changes floating-point behavior, clustering, or the
//! controller's decision sequence cannot silently drift the science.
//!
//! Every experiment is fully deterministic at a fixed seed, so the bands
//! below can be tight. Two kinds of bound appear:
//!
//! * **Paper bands** — where the paper reports a number (≈55% scale-out /
//!   ≈35% scale-up savings, ~10 s DejaVu decision time, an order of magnitude
//!   vs RightScale, >$250k/year per 100 instances at 2011 prices), the test
//!   asserts the reproduction lands in a tolerance band around it. Our
//!   conservative class merging over-provisions night hours, so the savings
//!   floor sits below the paper's point estimate (see EXPERIMENTS.md).
//! * **Pinned values** — the exact seed-1 numbers of this reproduction,
//!   asserted with a ±15% relative band. These catch silent drift: anyone
//!   changing them must re-validate against the paper and update the pins
//!   deliberately.

use dejavu_experiments::{fig10, fig11, fig6, fig7, fig8, fig9, savings};

const SEED: u64 = 1;

/// `value` within ±`tol` (relative) of `pin`.
fn near(value: f64, pin: f64, tol: f64) -> bool {
    (value - pin).abs() <= pin.abs() * tol
}

#[test]
fn fig6_messenger_scale_out_savings_hold() {
    let fig = fig6::run(SEED);
    // Paper band: meaningful savings with a handful of classes and an
    // almost-always-met SLO.
    assert!(
        (2..=5).contains(&fig.num_classes),
        "classes {}",
        fig.num_classes
    );
    assert!(fig.hit_rate >= 0.85, "hit rate {}", fig.hit_rate);
    assert!(
        fig.dejavu_savings > 0.20 && fig.dejavu_savings < 0.70,
        "savings {} outside the paper band",
        fig.dejavu_savings
    );
    assert!(
        fig.dejavu.slo_violation_fraction < 0.10,
        "violations {}",
        fig.dejavu.slo_violation_fraction
    );
    // Pinned seed-1 values of this reproduction.
    assert!(
        near(fig.dejavu_savings, 0.314, 0.15),
        "savings {}",
        fig.dejavu_savings
    );
    assert!(
        near(fig.dejavu.slo_violation_fraction, 0.028, 0.15),
        "violations {}",
        fig.dejavu.slo_violation_fraction
    );
}

#[test]
fn fig7_hotmail_scale_out_savings_hold() {
    let fig = fig7::run(SEED);
    assert!(
        fig.dejavu_savings > 0.20 && fig.dejavu_savings < 0.70,
        "savings {} outside the paper band",
        fig.dejavu_savings
    );
    assert!(
        fig.dejavu.slo_violation_fraction < 0.10,
        "violations {}",
        fig.dejavu.slo_violation_fraction
    );
    assert!(
        near(fig.dejavu_savings, 0.473, 0.15),
        "savings {}",
        fig.dejavu_savings
    );
    assert!(near(fig.hit_rate, 0.885, 0.15), "hit rate {}", fig.hit_rate);
}

#[test]
fn fig8_adaptation_time_stays_an_order_of_magnitude_ahead() {
    let fig = fig8::run(SEED);
    for trace in ["messenger", "hotmail"] {
        let dejavu = fig.bar(trace, "dejavu").expect("dejavu bar");
        let rs3 = fig.bar(trace, "rightscale-3min").expect("rs3 bar");
        let rs15 = fig.bar(trace, "rightscale-15min").expect("rs15 bar");
        // Paper: DejaVu decides in ~10 s (the signature-collection window).
        assert!(
            near(dejavu.mean_secs, 10.0, 0.2),
            "{trace}: dejavu decision time {} s drifted from ~10 s",
            dejavu.mean_secs
        );
        // Paper: RightScale needs minutes — more than an order of magnitude.
        assert!(
            rs3.mean_secs > dejavu.mean_secs * 10.0,
            "{trace}: rs3 {} vs dejavu {}",
            rs3.mean_secs,
            dejavu.mean_secs
        );
        assert!(
            rs15.mean_secs > rs3.mean_secs,
            "{trace}: longer calm time must adapt slower ({} vs {})",
            rs15.mean_secs,
            rs3.mean_secs
        );
    }
    // Pinned seed-1 values.
    assert!(near(
        fig.bar("messenger", "rightscale-3min").unwrap().mean_secs,
        320.0,
        0.15
    ));
    assert!(near(
        fig.bar("hotmail", "rightscale-15min").unwrap().mean_secs,
        749.0,
        0.15
    ));
}

#[test]
fn fig9_and_fig10_scale_up_savings_hold() {
    let hotmail = fig9::run(SEED);
    let messenger = fig10::run(SEED);
    for (name, fig, pin) in [("fig9", &hotmail, 0.463), ("fig10", &messenger, 0.389)] {
        // Paper band: ≈35% scale-up savings with QoS ≥ 95% nearly always.
        assert!(
            fig.savings > 0.20 && fig.savings < 0.60,
            "{name}: savings {} outside the paper band",
            fig.savings
        );
        assert!(
            fig.qos_compliance > 0.85,
            "{name}: QoS compliance {}",
            fig.qos_compliance
        );
        assert!(
            fig.xl_fraction < 0.35,
            "{name}: extra-large fraction {}",
            fig.xl_fraction
        );
        assert!(
            near(fig.savings, pin, 0.15),
            "{name}: savings {}",
            fig.savings
        );
    }
}

#[test]
fn fig11_interference_detection_keeps_compensating() {
    let fig = fig11::run(SEED);
    assert!(fig.compensations > 0, "no compensations");
    assert!(
        fig.mean_instances_with > fig.mean_instances_without,
        "detection must provision extra capacity ({} vs {})",
        fig.mean_instances_with,
        fig.mean_instances_without
    );
    assert!(
        fig.with_detection.slo_violation_fraction < fig.without_detection.slo_violation_fraction,
        "detection must reduce violations ({} vs {})",
        fig.with_detection.slo_violation_fraction,
        fig.without_detection.slo_violation_fraction
    );
    // Pinned seed-1 values.
    assert!(
        near(fig.compensations as f64, 87.0, 0.15),
        "{}",
        fig.compensations
    );
    assert!(
        near(fig.with_detection.slo_violation_fraction, 0.294, 0.15),
        "{}",
        fig.with_detection.slo_violation_fraction
    );
}

#[test]
fn savings_summary_matches_the_paper_projection() {
    let s = savings::run(SEED);
    // Paper: >$250k/year for 100 large instances at ~55% savings; our
    // reproduction saves ≈41% on average, so the floor sits proportionally
    // lower while remaining six figures.
    assert!(
        s.mean_savings() > 0.30 && s.mean_savings() < 0.60,
        "mean savings {}",
        s.mean_savings()
    );
    assert!(
        s.yearly_savings_usd(100) > 100_000.0,
        "yearly savings {}",
        s.yearly_savings_usd(100)
    );
    // Pinned seed-1 value: $122k/year per 100 instances.
    assert!(
        near(s.yearly_savings_usd(100), 122_012.0, 0.15),
        "yearly savings {}",
        s.yearly_savings_usd(100)
    );
}
