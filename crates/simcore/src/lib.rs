//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the substrate on which the DejaVu reproduction runs its
//! experiments: a simulated clock ([`SimTime`]/[`SimDuration`]), an event queue
//! ([`event::EventQueue`]), a seeded random-number facade ([`rng::SimRng`]) and
//! online statistics ([`stats`]).
//!
//! Everything is deterministic given a seed, which is what makes every figure of
//! the paper exactly reproducible.
//!
//! # Example
//!
//! ```
//! use dejavu_simcore::{SimTime, SimDuration, event::EventQueue};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(SimTime::from_secs(10.0), "later");
//! queue.schedule(SimTime::from_secs(1.0), "sooner");
//! let (t, ev) = queue.pop().expect("two events scheduled");
//! assert_eq!(ev, "sooner");
//! assert_eq!(t, SimTime::from_secs(1.0));
//! ```

pub mod event;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::{Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
