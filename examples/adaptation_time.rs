//! Adaptation-time comparison (the paper's Figure 8): how quickly DejaVu
//! settles on an adequate allocation after a workload change, compared with a
//! RightScale-style threshold autoscaler using 3- and 15-minute resize calm
//! times.
//!
//! ```text
//! cargo run --release --example adaptation_time
//! ```

use dejavu::experiments::fig8;

fn main() {
    let figure = fig8::run(8);
    print!("{}", figure.report());
    for trace in ["messenger", "hotmail"] {
        let dejavu = figure.bar(trace, "dejavu").expect("dejavu bar");
        let rs = figure
            .bar(trace, "rightscale-15min")
            .expect("rightscale bar");
        println!(
            "{trace}: DejaVu settles in {:.0} s on average; RightScale (15 min calm time) needs {:.0} s — {:.0}x slower.",
            dejavu.mean_secs,
            rs.mean_secs,
            rs.mean_secs / dejavu.mean_secs.max(1.0)
        );
    }
}
