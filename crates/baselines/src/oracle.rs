//! An offline oracle: instantly deploys the minimal SLO-meeting allocation for
//! the current workload. Not a paper baseline — a lower bound used for
//! calibration and ablations.

use dejavu_cloud::{
    AllocationSpace, ControllerDecision, DecisionReason, Observation, ProvisioningController,
};
use dejavu_services::ServiceModel;
use dejavu_simcore::SimDuration;

/// The oracle controller.
pub struct Oracle {
    service: Box<dyn ServiceModel>,
    space: AllocationSpace,
}

impl Oracle {
    /// Creates the oracle for a service deployed over `space`.
    pub fn new(service: Box<dyn ServiceModel>, space: AllocationSpace) -> Self {
        Oracle { service, space }
    }
}

impl std::fmt::Debug for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oracle").finish()
    }
}

impl ProvisioningController for Oracle {
    fn name(&self) -> &str {
        "oracle"
    }

    fn decide(&mut self, observation: &Observation) -> ControllerDecision {
        let needed = self
            .service
            .required_capacity(observation.workload.intensity.value());
        let target = self.space.cheapest_with_capacity(needed);
        if target == observation.current_allocation {
            ControllerDecision::keep()
        } else {
            ControllerDecision::deploy(target, SimDuration::ZERO, DecisionReason::Schedule)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_cloud::ResourceAllocation;
    use dejavu_services::CassandraService;
    use dejavu_simcore::SimTime;
    use dejavu_traces::{RequestMix, ServiceKind, Workload};

    #[test]
    fn deploys_minimal_adequate_allocation_instantly() {
        let mut oracle = Oracle::new(
            Box::new(CassandraService::update_heavy()),
            AllocationSpace::scale_out(1, 10).unwrap(),
        );
        let obs = Observation {
            time: SimTime::from_hours(1.0),
            workload: Workload::with_intensity(
                ServiceKind::Cassandra,
                0.5,
                RequestMix::update_heavy(),
            ),
            latency_ms: Some(40.0),
            qos_percent: None,
            utilization: 0.5,
            slo_violated: false,
            current_allocation: ResourceAllocation::large(10),
        };
        let d = oracle.decide(&obs);
        assert_eq!(d.decision_latency, SimDuration::ZERO);
        let target = d.target.unwrap();
        assert!(target.count() >= 5 && target.count() <= 6);
        assert_eq!(oracle.name(), "oracle");
        assert!(!format!("{oracle:?}").is_empty());
    }
}
