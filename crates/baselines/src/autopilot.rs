//! Autopilot: the time-based controller of §4.1 that repeats the hourly
//! allocations learned during the first day of the trace.

use dejavu_cloud::{
    AllocationSpace, ControllerDecision, DecisionReason, Observation, ProvisioningController,
    ResourceAllocation,
};
use dejavu_services::ServiceModel;
use dejavu_simcore::SimDuration;
use dejavu_traces::LoadTrace;

/// The Autopilot controller.
///
/// Its per-hour schedule is built by tuning the first day of the trace
/// offline (the same minimal-allocation criterion DejaVu's Tuner uses), and is
/// then applied by hour of day for the rest of the run — which is exactly
/// what makes it fragile when later days deviate from day one.
#[derive(Debug, Clone)]
pub struct Autopilot {
    schedule: Vec<ResourceAllocation>,
}

impl Autopilot {
    /// Builds the schedule from the first day of `trace` for `service`
    /// deployed over `space`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is shorter than one day.
    pub fn learn_from_first_day(
        trace: &LoadTrace,
        service: &dyn ServiceModel,
        space: &AllocationSpace,
    ) -> Self {
        assert!(
            trace.num_days() >= 1,
            "Autopilot needs at least one day of trace"
        );
        let day1 = trace.days(0, 1);
        let schedule = day1
            .levels()
            .iter()
            .map(|&level| space.cheapest_with_capacity(service.required_capacity(level)))
            .collect();
        Autopilot { schedule }
    }

    /// The learned per-hour schedule (one entry per hour of day one).
    pub fn schedule(&self) -> &[ResourceAllocation] {
        &self.schedule
    }

    fn planned_for(&self, hour_of_day: u64) -> ResourceAllocation {
        self.schedule[hour_of_day as usize % self.schedule.len()]
    }
}

impl ProvisioningController for Autopilot {
    fn name(&self) -> &str {
        "autopilot"
    }

    fn decide(&mut self, observation: &Observation) -> ControllerDecision {
        let planned = self.planned_for(observation.time.hour_of_day());
        if planned == observation.current_allocation {
            ControllerDecision::keep()
        } else {
            ControllerDecision::deploy(planned, SimDuration::ZERO, DecisionReason::Schedule)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_services::CassandraService;
    use dejavu_simcore::SimTime;
    use dejavu_traces::{hotmail_week, RequestMix, ServiceKind, Workload};

    fn obs(hour: f64, current: ResourceAllocation) -> Observation {
        Observation {
            time: SimTime::from_hours(hour),
            workload: Workload::with_intensity(
                ServiceKind::Cassandra,
                0.5,
                RequestMix::update_heavy(),
            ),
            latency_ms: Some(40.0),
            qos_percent: None,
            utilization: 0.5,
            slo_violated: false,
            current_allocation: current,
        }
    }

    #[test]
    fn schedule_follows_day_one_load_shape() {
        let trace = hotmail_week(1);
        let svc = CassandraService::update_heavy();
        let space = AllocationSpace::scale_out(1, 10).unwrap();
        let ap = Autopilot::learn_from_first_day(&trace, &svc, &space);
        assert_eq!(ap.schedule().len(), 24);
        // Night hours need far fewer instances than the peak hour.
        assert!(ap.schedule()[3].count() < ap.schedule()[14].count());
    }

    #[test]
    fn repeats_the_same_hour_every_day() {
        let trace = hotmail_week(2);
        let svc = CassandraService::update_heavy();
        let space = AllocationSpace::scale_out(1, 10).unwrap();
        let mut ap = Autopilot::learn_from_first_day(&trace, &svc, &space);
        let d_day2 = ap.decide(&obs(24.0 + 14.0, ResourceAllocation::large(1)));
        let d_day5 = ap.decide(&obs(96.0 + 14.0, ResourceAllocation::large(1)));
        assert_eq!(d_day2.target, d_day5.target);
        assert_eq!(d_day2.reason, DecisionReason::Schedule);
        assert_eq!(ap.name(), "autopilot");
    }

    #[test]
    fn keeps_allocation_when_already_on_schedule() {
        let trace = hotmail_week(3);
        let svc = CassandraService::update_heavy();
        let space = AllocationSpace::scale_out(1, 10).unwrap();
        let mut ap = Autopilot::learn_from_first_day(&trace, &svc, &space);
        let planned = ap.schedule()[2];
        let d = ap.decide(&obs(26.0, planned));
        assert!(d.target.is_none());
    }
}
