//! Figure 11 — addressing interference: with co-located tenants stealing 10%
//! or 20% of each VM's capacity, DejaVu detects the interference through its
//! interference index and compensates with extra instances, while a variant
//! with interference detection disabled keeps violating the SLO.

use crate::engine::{RunConfig, RunResult, SimulationEngine};
use crate::report::{pct, Report};
use dejavu_cloud::InterferenceSchedule;
use dejavu_core::{DejaVuConfig, DejaVuController};
use dejavu_services::CassandraService;
use dejavu_traces::{messenger_week, RequestMix};

/// The Figure-11 result.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// DejaVu with interference detection enabled.
    pub with_detection: RunResult,
    /// DejaVu with interference detection disabled.
    pub without_detection: RunResult,
    /// Interference compensations DejaVu applied.
    pub compensations: u64,
    /// Mean instance count with detection enabled.
    pub mean_instances_with: f64,
    /// Mean instance count with detection disabled.
    pub mean_instances_without: f64,
}

impl Fig11Result {
    /// Renders the figure.
    pub fn report(&self) -> Report {
        let mut r = Report::new("Figure 11: detecting and compensating for interference");
        r.kv(
            "SLO violations (detection enabled)",
            pct(self.with_detection.slo_violation_fraction),
        );
        r.kv(
            "SLO violations (detection disabled)",
            pct(self.without_detection.slo_violation_fraction),
        );
        r.kv("interference compensations", self.compensations);
        r.kv(
            "mean instances (enabled)",
            format!("{:.1}", self.mean_instances_with),
        );
        r.kv(
            "mean instances (disabled)",
            format!("{:.1}", self.mean_instances_without),
        );
        r
    }
}

/// Runs the Figure-11 experiment.
pub fn run(seed: u64) -> Fig11Result {
    let service = CassandraService::update_heavy();
    let trace = messenger_week(seed);
    let cfg = RunConfig::scale_out("fig11", trace, RequestMix::update_heavy(), seed)
        .with_interference(InterferenceSchedule::paper_scenario());
    let engine = SimulationEngine::new(cfg);
    let space = engine.config().space.clone();

    let mut with = DejaVuController::new(
        DejaVuConfig::builder()
            .seed(seed)
            .interference_detection(true)
            .build(),
        Box::new(service),
        space.clone(),
    );
    let with_run = engine.run(&service, &mut with);

    let mut without = DejaVuController::new(
        DejaVuConfig::builder()
            .seed(seed)
            .interference_detection(false)
            .build(),
        Box::new(service),
        space.clone(),
    )
    .with_name("dejavu-no-interference");
    let without_run = engine.run(&service, &mut without);

    Fig11Result {
        compensations: with.stats().interference_compensations,
        mean_instances_with: with_run.instance_count.mean(),
        mean_instances_without: without_run.instance_count.mean(),
        with_detection: with_run,
        without_detection: without_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_compensates_and_reduces_violations() {
        let fig = run(1);
        assert!(fig.compensations > 0, "no compensations applied");
        assert!(
            fig.mean_instances_with > fig.mean_instances_without,
            "with {} vs without {}",
            fig.mean_instances_with,
            fig.mean_instances_without
        );
        assert!(
            fig.with_detection.slo_violation_fraction
                < fig.without_detection.slo_violation_fraction,
            "with {} vs without {}",
            fig.with_detection.slo_violation_fraction,
            fig.without_detection.slo_violation_fraction
        );
        assert!(fig.report().to_string().contains("interference"));
    }
}
