//! Simulated time: instants ([`SimTime`]) and durations ([`SimDuration`]).
//!
//! Simulated time is measured in seconds since the beginning of the experiment
//! and stored as `f64`. Newtypes keep instants and durations from being mixed
//! up and provide the handful of conversions the experiments need (hours for
//! trace epochs, minutes for controller calm times).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of seconds in one simulated hour.
pub const SECS_PER_HOUR: f64 = 3_600.0;
/// Number of seconds in one simulated day.
pub const SECS_PER_DAY: f64 = 86_400.0;

/// An instant in simulated time, in seconds since the start of the experiment.
///
/// # Example
///
/// ```
/// use dejavu_simcore::{SimTime, SimDuration};
/// let t = SimTime::from_hours(2.0) + SimDuration::from_secs(30.0);
/// assert_eq!(t.as_secs(), 7_230.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds.
///
/// # Example
///
/// ```
/// use dejavu_simcore::SimDuration;
/// let d = SimDuration::from_mins(3.0);
/// assert_eq!(d.as_secs(), 180.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant `secs` seconds after the start of the experiment.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative"
        );
        SimTime(secs)
    }

    /// Creates an instant `hours` hours after the start of the experiment.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * SECS_PER_HOUR)
    }

    /// Creates an instant `days` days after the start of the experiment.
    pub fn from_days(days: f64) -> Self {
        Self::from_secs(days * SECS_PER_DAY)
    }

    /// Returns the instant as seconds since the start of the experiment.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the instant as fractional hours since the start of the experiment.
    pub fn as_hours(self) -> f64 {
        self.0 / SECS_PER_HOUR
    }

    /// Returns the instant as fractional days since the start of the experiment.
    pub fn as_days(self) -> f64 {
        self.0 / SECS_PER_DAY
    }

    /// Returns the whole hour index this instant falls in (hour 0 is the first hour).
    pub fn hour_index(self) -> u64 {
        (self.0 / SECS_PER_HOUR).floor() as u64
    }

    /// Returns the whole day index this instant falls in (day 0 is the first day).
    pub fn day_index(self) -> u64 {
        (self.0 / SECS_PER_DAY).floor() as u64
    }

    /// Returns the hour of the day (0..24) this instant falls in.
    pub fn hour_of_day(self) -> u64 {
        self.hour_index() % 24
    }

    /// Returns the duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        if self.0 >= earlier.0 {
            SimDuration(self.0 - earlier.0)
        } else {
            SimDuration::ZERO
        }
    }

    /// Returns the later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of `self` and `other`.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be finite and non-negative"
        );
        SimDuration(secs)
    }

    /// Creates a duration of `mins` minutes.
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a duration of `hours` hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * SECS_PER_HOUR)
    }

    /// Creates a duration of `days` days.
    pub fn from_days(days: f64) -> Self {
        Self::from_secs(days * SECS_PER_DAY)
    }

    /// Returns the duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the duration in minutes.
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// Returns the duration in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / SECS_PER_HOUR
    }

    /// Returns true if the duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns the larger of `self` and `other`.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of `self` and `other`.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = (self.0 - rhs.0).max(0.0);
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day_index();
        let hour = self.hour_of_day();
        let rem = self.0 - (day as f64) * SECS_PER_DAY - (hour as f64) * SECS_PER_HOUR;
        let min = (rem / 60.0).floor();
        let sec = rem - min * 60.0;
        write!(f, "d{day}+{hour:02}:{min:02.0}:{sec:04.1}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SECS_PER_HOUR {
            write!(f, "{:.2}h", self.as_hours())
        } else if self.0 >= 60.0 {
            write!(f, "{:.1}min", self.as_mins())
        } else {
            write!(f, "{:.1}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(SimTime::from_hours(1.0).as_secs(), 3_600.0);
        assert_eq!(SimTime::from_days(1.0).as_hours(), 24.0);
        assert_eq!(SimDuration::from_mins(2.0).as_secs(), 120.0);
        assert_eq!(SimDuration::from_days(0.5).as_hours(), 12.0);
    }

    #[test]
    fn hour_and_day_indices() {
        let t = SimTime::from_hours(49.5);
        assert_eq!(t.hour_index(), 49);
        assert_eq!(t.day_index(), 2);
        assert_eq!(t.hour_of_day(), 1);
    }

    #[test]
    fn arithmetic_is_saturating_for_subtraction() {
        let a = SimTime::from_secs(10.0);
        let b = SimTime::from_secs(30.0);
        assert_eq!((a - b).as_secs(), 0.0);
        assert_eq!((b - a).as_secs(), 20.0);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_secs(), 20.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10.0);
        assert_eq!((d * 3.0).as_secs(), 30.0);
        assert_eq!((d / 2.0).as_secs(), 5.0);
    }

    #[test]
    fn display_is_not_empty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{}", SimDuration::from_secs(90.0)).is_empty());
        assert!(!format!("{}", SimDuration::from_hours(2.0)).is_empty());
    }

    #[test]
    #[should_panic]
    fn negative_time_panics() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let d1 = SimDuration::from_secs(1.0);
        let d2 = SimDuration::from_secs(2.0);
        assert_eq!(d1.max(d2), d2);
        assert_eq!(d1.min(d2), d1);
    }
}
