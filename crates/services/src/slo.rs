//! Service-level objectives and their evaluation.

use crate::perf::PerfSample;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A service-level objective.
///
/// The paper's Cassandra experiments use a 60 ms latency SLO; the SPECweb
/// experiments use the benchmark's QoS criterion (≥ 95% of downloads meeting
/// a 0.99 Mbps rate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Slo {
    /// Mean response latency must stay at or below this many milliseconds.
    LatencyMs(f64),
    /// QoS percentage must stay at or above this value.
    QosPercent(f64),
}

/// The outcome of checking a performance sample against an SLO.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloOutcome {
    /// Whether the SLO was met.
    pub met: bool,
    /// How far the measured value is from the objective, normalized so that
    /// 0.0 means exactly at the objective and positive values mean violation
    /// severity (e.g. 0.5 = 50% worse than the objective).
    pub violation_ratio: f64,
}

impl Slo {
    /// Evaluates the SLO against a performance sample.
    pub fn check(&self, sample: &PerfSample) -> SloOutcome {
        match *self {
            Slo::LatencyMs(bound) => {
                let ratio = (sample.latency_ms - bound) / bound.max(f64::MIN_POSITIVE);
                SloOutcome {
                    met: sample.latency_ms <= bound,
                    violation_ratio: ratio.max(0.0),
                }
            }
            Slo::QosPercent(bound) => {
                let ratio = (bound - sample.qos_percent) / bound.max(f64::MIN_POSITIVE);
                SloOutcome {
                    met: sample.qos_percent >= bound,
                    violation_ratio: ratio.max(0.0),
                }
            }
        }
    }

    /// Returns true if the sample meets the SLO.
    pub fn is_met(&self, sample: &PerfSample) -> bool {
        self.check(sample).met
    }

    /// The objective value (milliseconds or percent).
    pub fn target(&self) -> f64 {
        match *self {
            Slo::LatencyMs(v) | Slo::QosPercent(v) => v,
        }
    }
}

impl fmt::Display for Slo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slo::LatencyMs(v) => write!(f, "latency <= {v} ms"),
            Slo::QosPercent(v) => write!(f, "QoS >= {v}%"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(latency: f64, qos: f64) -> PerfSample {
        PerfSample {
            latency_ms: latency,
            qos_percent: qos,
            throughput_rps: 1000.0,
            utilization: 0.5,
        }
    }

    #[test]
    fn latency_slo() {
        let slo = Slo::LatencyMs(60.0);
        assert!(slo.is_met(&sample(59.9, 100.0)));
        assert!(!slo.is_met(&sample(90.0, 100.0)));
        let out = slo.check(&sample(90.0, 100.0));
        assert!((out.violation_ratio - 0.5).abs() < 1e-12);
        assert_eq!(slo.target(), 60.0);
    }

    #[test]
    fn qos_slo() {
        let slo = Slo::QosPercent(95.0);
        assert!(slo.is_met(&sample(10.0, 96.0)));
        assert!(!slo.is_met(&sample(10.0, 90.0)));
        let out = slo.check(&sample(10.0, 85.5));
        assert!(out.violation_ratio > 0.09 && out.violation_ratio < 0.11);
    }

    #[test]
    fn met_slo_has_zero_violation() {
        let slo = Slo::LatencyMs(60.0);
        assert_eq!(slo.check(&sample(30.0, 100.0)).violation_ratio, 0.0);
    }

    #[test]
    fn display() {
        assert!(Slo::LatencyMs(60.0).to_string().contains("60"));
        assert!(Slo::QosPercent(95.0).to_string().contains("95"));
    }
}
