//! The DejaVu proxy: duplicates a sampled subset of client requests to the
//! profiling environment, at client-session granularity, while adding only a
//! small latency overhead to the production path.

use serde::{Deserialize, Serialize};

/// Proxy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProxyConfig {
    /// Fraction of client sessions whose requests are duplicated to the
    /// profiler (the paper duplicates the traffic of one service instance,
    /// i.e. roughly `1/n` of the sessions for an `n`-instance service).
    pub session_sample_fraction: f64,
    /// Latency added to every production request that traverses the proxy,
    /// in milliseconds (§4.4 measures ≈ 3 ms).
    pub added_latency_ms: f64,
    /// Whether duplication is currently enabled (profiling can be periodic or
    /// on-demand).
    pub enabled: bool,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            session_sample_fraction: 0.1,
            added_latency_ms: 3.0,
            enabled: true,
        }
    }
}

/// Statistics accumulated by the proxy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DuplicatorStats {
    /// Requests forwarded to production.
    pub total_requests: u64,
    /// Requests additionally duplicated to the profiler.
    pub duplicated_requests: u64,
    /// Distinct sessions observed.
    pub sessions_seen: u64,
    /// Distinct sessions selected for duplication.
    pub sessions_sampled: u64,
}

impl DuplicatorStats {
    /// Fraction of requests that were duplicated.
    pub fn duplication_fraction(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.duplicated_requests as f64 / self.total_requests as f64
        }
    }
}

/// The request duplicator.
///
/// Sampling is decided per *session* (a deterministic hash of the session id),
/// never per request, so that a sampled session's cookies and state stay
/// consistent on the clone — the pitfall §3.2.1 calls out.
///
/// # Example
///
/// ```
/// use dejavu_proxy::{ProxyConfig, RequestDuplicator};
///
/// let mut proxy = RequestDuplicator::new(ProxyConfig { session_sample_fraction: 0.5, ..Default::default() });
/// let duplicated = proxy.forward(42, 10);
/// // Either the whole session is duplicated or none of it.
/// assert!(duplicated == 0 || duplicated == 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestDuplicator {
    config: ProxyConfig,
    stats: DuplicatorStats,
    seen_sessions: std::collections::BTreeSet<u64>,
}

impl RequestDuplicator {
    /// Creates a duplicator.
    ///
    /// # Panics
    ///
    /// Panics if the sample fraction is outside `[0, 1]` or the added latency
    /// is negative.
    pub fn new(config: ProxyConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.session_sample_fraction),
            "sample fraction must be in [0, 1]"
        );
        assert!(
            config.added_latency_ms >= 0.0,
            "latency overhead must be non-negative"
        );
        RequestDuplicator {
            config,
            stats: DuplicatorStats::default(),
            seen_sessions: std::collections::BTreeSet::new(),
        }
    }

    /// The proxy configuration.
    pub fn config(&self) -> &ProxyConfig {
        &self.config
    }

    /// Enables or disables duplication (production forwarding is unaffected).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.config.enabled = enabled;
    }

    /// Whether requests from `session_id` are duplicated.
    pub fn samples_session(&self, session_id: u64) -> bool {
        if !self.config.enabled || self.config.session_sample_fraction <= 0.0 {
            return false;
        }
        // Deterministic per-session hash mapped to [0, 1).
        let mut h = session_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 32;
        (h as f64 / u64::MAX as f64) < self.config.session_sample_fraction
    }

    /// Forwards `requests` requests of one session to production and, if the
    /// session is sampled, duplicates them to the profiler. Returns the number
    /// of duplicated requests.
    pub fn forward(&mut self, session_id: u64, requests: u64) -> u64 {
        self.stats.total_requests += requests;
        if self.seen_sessions.insert(session_id) {
            self.stats.sessions_seen += 1;
        }
        if self.samples_session(session_id) {
            if self.seen_sessions.contains(&session_id)
                && self.stats.sessions_sampled < self.stats.sessions_seen
            {
                self.stats.sessions_sampled += 1;
            }
            self.stats.duplicated_requests += requests;
            requests
        } else {
            0
        }
    }

    /// Latency added to production requests by the proxy, in milliseconds.
    pub fn production_overhead_ms(&self) -> f64 {
        self.config.added_latency_ms
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DuplicatorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_per_session_and_deterministic() {
        let proxy = RequestDuplicator::new(ProxyConfig {
            session_sample_fraction: 0.3,
            ..Default::default()
        });
        for s in 0..100u64 {
            assert_eq!(proxy.samples_session(s), proxy.samples_session(s));
        }
    }

    #[test]
    fn sampled_fraction_roughly_matches_config() {
        let proxy = RequestDuplicator::new(ProxyConfig {
            session_sample_fraction: 0.2,
            ..Default::default()
        });
        let sampled = (0..10_000u64).filter(|&s| proxy.samples_session(s)).count();
        let frac = sampled as f64 / 10_000.0;
        assert!((frac - 0.2).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn forward_tracks_stats() {
        let mut proxy = RequestDuplicator::new(ProxyConfig {
            session_sample_fraction: 1.0,
            ..Default::default()
        });
        proxy.forward(1, 5);
        proxy.forward(2, 5);
        let stats = proxy.stats();
        assert_eq!(stats.total_requests, 10);
        assert_eq!(stats.duplicated_requests, 10);
        assert_eq!(stats.sessions_seen, 2);
        assert!((stats.duplication_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_proxy_duplicates_nothing() {
        let mut proxy = RequestDuplicator::new(ProxyConfig {
            session_sample_fraction: 1.0,
            enabled: false,
            ..Default::default()
        });
        assert_eq!(proxy.forward(7, 100), 0);
        assert_eq!(proxy.stats().duplicated_requests, 0);
        assert_eq!(proxy.stats().total_requests, 100);
        proxy.set_enabled(true);
        assert_eq!(proxy.forward(7, 100), 100);
    }

    #[test]
    fn overhead_defaults_to_three_ms() {
        let proxy = RequestDuplicator::new(ProxyConfig::default());
        assert!((proxy.production_overhead_ms() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_fraction_rejected() {
        let _ = RequestDuplicator::new(ProxyConfig {
            session_sample_fraction: 1.2,
            ..Default::default()
        });
    }
}
