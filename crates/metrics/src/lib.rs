//! Low-level metric modelling for the DejaVu reproduction.
//!
//! The paper builds workload signatures out of hardware performance counters
//! (HPCs, collected via Xenoprof-style passive sampling) and `xentop`-reported
//! VM resource metrics. This crate provides:
//!
//! * [`counter`] — the catalogue of counters and VM metrics, including the
//!   eight HPC events of the paper's Table 1.
//! * [`model`] — a generative model that maps a workload (service kind, type
//!   mix, intensity) to counter values; counter values are smooth functions of
//!   the workload plus trial noise, which is exactly the empirical property
//!   Figure 4 of the paper demonstrates and the only property DejaVu relies on.
//! * [`sampler`] — sampling of the model over a duration, with optional
//!   time-division multiplexing accuracy loss and interference perturbation.
//! * [`signature`] — the workload signature: an ordered tuple of named metric
//!   values normalized by sampling duration (§3.3, equation (1)).

pub mod counter;
pub mod model;
pub mod sampler;
pub mod signature;

pub use counter::{MetricCatalog, MetricId, MetricKind};
pub use model::{MetricModel, WorkloadPoint};
pub use sampler::{MetricSampler, SamplerConfig};
pub use signature::WorkloadSignature;
