//! Load traces: sequences of normalized load levels at a fixed sampling step.

use dejavu_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors raised when constructing or manipulating traces.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The trace has no samples.
    Empty,
    /// A load level was outside `[0, 1.5]` or not finite.
    InvalidLevel {
        /// Index of the offending sample.
        index: usize,
    },
    /// The sampling step was zero or negative.
    InvalidStep,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace has no samples"),
            TraceError::InvalidLevel { index } => {
                write!(f, "load level at index {index} is invalid")
            }
            TraceError::InvalidStep => write!(f, "trace step must be positive"),
        }
    }
}

impl Error for TraceError {}

/// A load trace: normalized load levels (fraction of the peak the service can
/// sustain at full capacity, usually in `[0, 1]`) sampled at a fixed step.
///
/// The paper's HotMail/Messenger traces are hourly over one week; the Figure-1
/// sine wave changes every 10 minutes. Both are [`LoadTrace`]s with different
/// steps.
///
/// # Example
///
/// ```
/// use dejavu_traces::LoadTrace;
/// use dejavu_simcore::{SimDuration, SimTime};
///
/// let t = LoadTrace::hourly("demo", vec![0.2, 0.8, 0.5])?;
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.level_at(SimTime::from_hours(1.5)), 0.8);
/// assert_eq!(t.duration(), SimDuration::from_hours(3.0));
/// # Ok::<(), dejavu_traces::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTrace {
    name: String,
    step_secs: f64,
    levels: Vec<f64>,
}

impl LoadTrace {
    /// Creates a trace with an arbitrary sampling step.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] if `levels` is empty,
    /// [`TraceError::InvalidStep`] if `step` is zero and
    /// [`TraceError::InvalidLevel`] if any level is negative, above 1.5 or not
    /// finite.
    pub fn new(
        name: impl Into<String>,
        step: SimDuration,
        levels: Vec<f64>,
    ) -> Result<Self, TraceError> {
        if levels.is_empty() {
            return Err(TraceError::Empty);
        }
        if step.is_zero() {
            return Err(TraceError::InvalidStep);
        }
        for (i, &l) in levels.iter().enumerate() {
            if !l.is_finite() || !(0.0..=1.5).contains(&l) {
                return Err(TraceError::InvalidLevel { index: i });
            }
        }
        Ok(LoadTrace {
            name: name.into(),
            step_secs: step.as_secs(),
            levels,
        })
    }

    /// Creates an hourly trace (the granularity of the paper's data-center traces).
    ///
    /// # Errors
    ///
    /// Same as [`LoadTrace::new`].
    pub fn hourly(name: impl Into<String>, levels: Vec<f64>) -> Result<Self, TraceError> {
        LoadTrace::new(name, SimDuration::from_hours(1.0), levels)
    }

    /// The trace name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Returns true if the trace has no samples (never true for a constructed trace).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The sampling step.
    pub fn step(&self) -> SimDuration {
        SimDuration::from_secs(self.step_secs)
    }

    /// Total trace duration.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs(self.step_secs * self.levels.len() as f64)
    }

    /// The raw normalized levels.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// The level in effect at `time`. Times beyond the end of the trace hold
    /// the last level (the simulation engine never queries past the end).
    pub fn level_at(&self, time: SimTime) -> f64 {
        let idx = (time.as_secs() / self.step_secs) as usize;
        self.levels[idx.min(self.levels.len() - 1)]
    }

    /// Iterates over `(start_time, level)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.levels
            .iter()
            .enumerate()
            .map(|(i, &l)| (SimTime::from_secs(self.step_secs * i as f64), l))
    }

    /// Maximum level in the trace.
    pub fn peak(&self) -> f64 {
        self.levels.iter().copied().fold(0.0, f64::max)
    }

    /// Minimum level in the trace.
    pub fn trough(&self) -> f64 {
        self.levels.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean level.
    pub fn mean(&self) -> f64 {
        self.levels.iter().sum::<f64>() / self.levels.len() as f64
    }

    /// Returns a copy scaled so that the trace peak maps to `new_peak`
    /// (the paper scales traces so the peak matches what 10 instances can serve).
    ///
    /// # Panics
    ///
    /// Panics if `new_peak` is negative, above 1.5 or not finite.
    pub fn rescaled_to_peak(&self, new_peak: f64) -> LoadTrace {
        assert!(
            new_peak.is_finite() && (0.0..=1.5).contains(&new_peak),
            "peak must be within [0, 1.5]"
        );
        let peak = self.peak().max(f64::MIN_POSITIVE);
        LoadTrace {
            name: self.name.clone(),
            step_secs: self.step_secs,
            levels: self.levels.iter().map(|l| l / peak * new_peak).collect(),
        }
    }

    /// Returns the sub-trace covering days `[start_day, end_day)` for traces
    /// whose step divides a day. Used to separate the learning day from the
    /// reuse days.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or extends beyond the trace.
    pub fn days(&self, start_day: usize, end_day: usize) -> LoadTrace {
        assert!(start_day < end_day, "day range must be non-empty");
        let per_day = (86_400.0 / self.step_secs).round() as usize;
        let start = start_day * per_day;
        let end = end_day * per_day;
        assert!(end <= self.levels.len(), "day range exceeds trace length");
        LoadTrace {
            name: format!("{}[d{start_day}..d{end_day}]", self.name),
            step_secs: self.step_secs,
            levels: self.levels[start..end].to_vec(),
        }
    }

    /// Number of whole days covered by the trace.
    pub fn num_days(&self) -> usize {
        (self.duration().as_secs() / 86_400.0).round() as usize
    }

    /// Converts levels to absolute client counts given the peak client count.
    pub fn to_clients(&self, peak_clients: u32) -> Vec<u32> {
        self.levels
            .iter()
            .map(|l| (l * peak_clients as f64).round() as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_input() {
        assert_eq!(LoadTrace::hourly("x", vec![]), Err(TraceError::Empty));
        assert_eq!(
            LoadTrace::hourly("x", vec![0.5, 2.0]),
            Err(TraceError::InvalidLevel { index: 1 })
        );
        assert_eq!(
            LoadTrace::new("x", SimDuration::ZERO, vec![0.5]),
            Err(TraceError::InvalidStep)
        );
        assert!(LoadTrace::hourly("x", vec![0.0, 1.0, 1.5]).is_ok());
    }

    #[test]
    fn level_lookup_and_saturation() {
        let t = LoadTrace::hourly("t", vec![0.1, 0.2, 0.3]).unwrap();
        assert_eq!(t.level_at(SimTime::ZERO), 0.1);
        assert_eq!(t.level_at(SimTime::from_hours(2.9)), 0.3);
        assert_eq!(t.level_at(SimTime::from_hours(99.0)), 0.3);
    }

    #[test]
    fn statistics() {
        let t = LoadTrace::hourly("t", vec![0.2, 0.4, 0.6]).unwrap();
        assert_eq!(t.peak(), 0.6);
        assert_eq!(t.trough(), 0.2);
        assert!((t.mean() - 0.4).abs() < 1e-12);
        assert_eq!(t.num_days(), 0);
        assert_eq!(t.duration(), SimDuration::from_hours(3.0));
    }

    #[test]
    fn rescale_to_peak() {
        let t = LoadTrace::hourly("t", vec![0.2, 0.5]).unwrap();
        let r = t.rescaled_to_peak(1.0);
        assert!((r.peak() - 1.0).abs() < 1e-12);
        assert!((r.levels()[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn day_slicing() {
        let levels: Vec<f64> = (0..48).map(|h| (h / 24) as f64 * 0.5 + 0.1).collect();
        let t = LoadTrace::hourly("two-days", levels).unwrap();
        assert_eq!(t.num_days(), 2);
        let d0 = t.days(0, 1);
        let d1 = t.days(1, 2);
        assert_eq!(d0.len(), 24);
        assert_eq!(d1.len(), 24);
        assert!((d0.levels()[0] - 0.1).abs() < 1e-12);
        assert!((d1.levels()[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn day_slicing_out_of_range_panics() {
        let t = LoadTrace::hourly("short", vec![0.1; 24]).unwrap();
        let _ = t.days(0, 2);
    }

    #[test]
    fn client_conversion() {
        let t = LoadTrace::hourly("t", vec![0.5, 1.0]).unwrap();
        assert_eq!(t.to_clients(400), vec![200, 400]);
    }

    #[test]
    fn iter_yields_times_in_order() {
        let t = LoadTrace::hourly("t", vec![0.1, 0.2]).unwrap();
        let pts: Vec<_> = t.iter().collect();
        assert_eq!(pts[0].0, SimTime::ZERO);
        assert_eq!(pts[1].0, SimTime::from_hours(1.0));
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!TraceError::Empty.to_string().is_empty());
        assert!(!TraceError::InvalidStep.to_string().is_empty());
    }
}
