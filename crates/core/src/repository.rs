//! The signature repository: DejaVu's cache of resource-allocation decisions.
//!
//! The repository maps a workload class (and, when interference has been
//! detected, an interference-index bucket) to the preferred resource
//! allocation determined by the Tuner. At runtime a cache hit lets DejaVu jump
//! straight to the right allocation; misses fall back to tuning or to full
//! capacity.

use crate::flatmap::FlatMap;
use dejavu_cloud::ResourceAllocation;
use dejavu_metrics::WorkloadSignature;
use dejavu_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// Repository key: workload class × interference bucket.
///
/// Bucket 0 means "no interference beyond what tuning saw".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RepositoryKey {
    /// Workload class (cluster id).
    pub class: usize,
    /// Interference-index bucket.
    pub interference_bucket: u32,
}

impl RepositoryKey {
    /// Key for a workload class with no interference.
    pub fn baseline(class: usize) -> Self {
        RepositoryKey {
            class,
            interference_bucket: 0,
        }
    }

    /// Sentinel key used before any workload class exists (e.g. learning-phase
    /// lookups that match purely by signature in fleet-shared stores). A plain
    /// [`SignatureRepository`] never stores anything under this key, so such
    /// lookups always miss locally.
    pub fn unclassified() -> Self {
        RepositoryKey::baseline(usize::MAX)
    }
}

/// One cached allocation decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepositoryEntry {
    /// The preferred allocation for this key.
    pub allocation: ResourceAllocation,
    /// When the Tuner produced this entry.
    pub tuned_at: SimTime,
    /// How often the entry has been reused.
    pub hits: u64,
}

/// Hit/miss statistics of the repository.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepositoryStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (including overwrites).
    pub insertions: u64,
}

impl RepositoryStats {
    /// Cache hit rate over all lookups (0.0 if there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Identifies an entry for an [`AllocationStore`].
///
/// The `key` is always meaningful to the tenant that issued the operation;
/// `class_signature` optionally carries the full-catalogue workload signature
/// characterizing the class (the class medoid, or the raw profiled signature
/// during learning). Local stores ignore it; fleet-shared stores use it to
/// match equivalent workload classes across tenants whose locally assigned
/// class ids differ.
#[derive(Debug, Clone, Copy)]
pub struct StoreContext<'a> {
    /// The tenant-local repository key.
    pub key: RepositoryKey,
    /// Cross-tenant identity of the workload class, when known.
    pub class_signature: Option<&'a WorkloadSignature>,
    /// Simulated time of the operation; stores with staleness policies (TTL
    /// eviction in fleet-shared stores) compare entry age against it. Local
    /// stores ignore it.
    pub now: SimTime,
}

impl<'a> StoreContext<'a> {
    /// A context identified by key alone.
    pub fn keyed(key: RepositoryKey) -> Self {
        StoreContext {
            key,
            class_signature: None,
            now: SimTime::ZERO,
        }
    }

    /// A context identified by key and class signature.
    pub fn with_signature(key: RepositoryKey, signature: &'a WorkloadSignature) -> Self {
        StoreContext {
            key,
            class_signature: Some(signature),
            now: SimTime::ZERO,
        }
    }

    /// Attaches the operation's simulated time.
    pub fn at(mut self, now: SimTime) -> Self {
        self.now = now;
        self
    }
}

/// The storage interface behind [`crate::controller::DejaVuController`].
///
/// The classic single-tenant cache ([`SignatureRepository`]) implements this
/// directly; `dejavu-fleet` provides tenant views over a shared, sharded
/// repository so that one tenant's tuning pays off for every recurring
/// workload in the fleet. Method semantics mirror the inherent
/// `SignatureRepository` API.
pub trait AllocationStore: Send {
    /// Inserts (or replaces) the preferred allocation for `ctx`.
    fn put(&mut self, ctx: StoreContext<'_>, allocation: ResourceAllocation, tuned_at: SimTime);

    /// Looks up the preferred allocation for `ctx`, counting a hit or miss.
    fn get(&mut self, ctx: StoreContext<'_>) -> Option<RepositoryEntry>;

    /// Invalidates every entry this tenant can see as its own (used when
    /// DejaVu re-clusters). Shared stores drop only the tenant's local view,
    /// never other tenants' contributions.
    fn clear(&mut self);

    /// Number of entries visible to this tenant.
    fn len(&self) -> usize;

    /// Returns true if no entries are visible.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accumulated hit/miss statistics from this tenant's perspective.
    fn stats(&self) -> RepositoryStats;

    /// Snapshot of the visible `(key, entry)` pairs, in key order.
    fn entries(&self) -> Vec<(RepositoryKey, RepositoryEntry)>;

    /// Opt-in downcast hook for store implementations that expose extra,
    /// implementation-specific surface (e.g. fleet recovery re-pointing a
    /// tenant view at a different shared repository). Stores with nothing to
    /// expose keep the default `None`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

impl AllocationStore for SignatureRepository {
    fn put(&mut self, ctx: StoreContext<'_>, allocation: ResourceAllocation, tuned_at: SimTime) {
        // Signature-only publications (the unclassified sentinel) have no
        // meaningful local key: storing them would alias every learning-phase
        // workload under one entry. They only exist for signature-matching
        // stores; a local repository drops them.
        if ctx.key == RepositoryKey::unclassified() {
            return;
        }
        self.insert(ctx.key, allocation, tuned_at);
    }

    fn get(&mut self, ctx: StoreContext<'_>) -> Option<RepositoryEntry> {
        self.lookup(ctx.key)
    }

    fn clear(&mut self) {
        SignatureRepository::clear(self);
    }

    fn len(&self) -> usize {
        SignatureRepository::len(self)
    }

    fn is_empty(&self) -> bool {
        SignatureRepository::is_empty(self)
    }

    fn stats(&self) -> RepositoryStats {
        SignatureRepository::stats(self)
    }

    fn entries(&self) -> Vec<(RepositoryKey, RepositoryEntry)> {
        self.iter().map(|(k, e)| (*k, *e)).collect()
    }
}

/// The DejaVu cache.
///
/// # Example
///
/// ```
/// use dejavu_core::{RepositoryKey, SignatureRepository};
/// use dejavu_cloud::ResourceAllocation;
/// use dejavu_simcore::SimTime;
///
/// let mut repo = SignatureRepository::new();
/// repo.insert(RepositoryKey::baseline(0), ResourceAllocation::large(4), SimTime::ZERO);
/// assert!(repo.lookup(RepositoryKey::baseline(0)).is_some());
/// assert!(repo.lookup(RepositoryKey::baseline(1)).is_none());
/// assert_eq!(repo.stats().hits, 1);
/// assert_eq!(repo.stats().misses, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SignatureRepository {
    entries: FlatMap<RepositoryKey, RepositoryEntry>,
    stats: RepositoryStats,
}

impl SignatureRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        SignatureRepository::default()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts (or replaces) the preferred allocation for `key`.
    pub fn insert(
        &mut self,
        key: RepositoryKey,
        allocation: ResourceAllocation,
        tuned_at: SimTime,
    ) {
        self.stats.insertions += 1;
        self.entries.insert(
            key,
            RepositoryEntry {
                allocation,
                tuned_at,
                hits: 0,
            },
        );
    }

    /// Looks up the preferred allocation for `key`, counting a hit or miss and
    /// bumping the entry's reuse counter on a hit.
    pub fn lookup(&mut self, key: RepositoryKey) -> Option<RepositoryEntry> {
        match self.entries.get_mut(&key) {
            Some(entry) => Some(*Self::record_hit(entry, &mut self.stats)),
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// The single code path that counts a cache hit: the per-entry reuse
    /// counter and the aggregate [`RepositoryStats`] advance together, so the
    /// two can only diverge through entry overwrites or [`clear`](Self::clear)
    /// (which reset entry counters but deliberately keep lifetime stats).
    fn record_hit<'a>(
        entry: &'a mut RepositoryEntry,
        stats: &mut RepositoryStats,
    ) -> &'a RepositoryEntry {
        entry.hits += 1;
        stats.hits += 1;
        entry
    }

    /// Sum of the per-entry reuse counters of the currently cached entries.
    ///
    /// Equals `stats().hits` as long as no entry has been overwritten or
    /// cleared since the last reset.
    pub fn total_entry_hits(&self) -> u64 {
        self.entries.values().map(|e| e.hits).sum()
    }

    /// Reads an entry without affecting statistics.
    pub fn peek(&self, key: RepositoryKey) -> Option<&RepositoryEntry> {
        self.entries.get(&key)
    }

    /// Removes every cached entry (used when DejaVu re-clusters).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over all `(key, entry)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&RepositoryKey, &RepositoryEntry)> {
        self.entries.iter()
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> RepositoryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_roundtrip() {
        let mut repo = SignatureRepository::new();
        let key = RepositoryKey::baseline(2);
        repo.insert(key, ResourceAllocation::large(6), SimTime::from_hours(1.0));
        let entry = repo.lookup(key).expect("present");
        assert_eq!(entry.allocation, ResourceAllocation::large(6));
        assert_eq!(entry.tuned_at, SimTime::from_hours(1.0));
        assert_eq!(repo.len(), 1);
        assert!(!repo.is_empty());
    }

    #[test]
    fn hit_counters_and_rates() {
        let mut repo = SignatureRepository::new();
        repo.insert(
            RepositoryKey::baseline(0),
            ResourceAllocation::large(2),
            SimTime::ZERO,
        );
        let _ = repo.lookup(RepositoryKey::baseline(0));
        let _ = repo.lookup(RepositoryKey::baseline(0));
        let _ = repo.lookup(RepositoryKey::baseline(5));
        let stats = repo.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(repo.peek(RepositoryKey::baseline(0)).unwrap().hits, 2);
    }

    #[test]
    fn interference_buckets_are_separate_entries() {
        let mut repo = SignatureRepository::new();
        let base = RepositoryKey::baseline(1);
        let interfered = RepositoryKey {
            class: 1,
            interference_bucket: 2,
        };
        repo.insert(base, ResourceAllocation::large(4), SimTime::ZERO);
        repo.insert(interfered, ResourceAllocation::large(6), SimTime::ZERO);
        assert_eq!(repo.lookup(base).unwrap().allocation.count(), 4);
        assert_eq!(repo.lookup(interfered).unwrap().allocation.count(), 6);
        assert_eq!(repo.len(), 2);
    }

    #[test]
    fn overwrite_replaces_allocation() {
        let mut repo = SignatureRepository::new();
        let key = RepositoryKey::baseline(0);
        repo.insert(key, ResourceAllocation::large(2), SimTime::ZERO);
        repo.insert(key, ResourceAllocation::large(8), SimTime::from_hours(2.0));
        assert_eq!(repo.lookup(key).unwrap().allocation.count(), 8);
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.stats().insertions, 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut repo = SignatureRepository::new();
        repo.insert(
            RepositoryKey::baseline(0),
            ResourceAllocation::large(2),
            SimTime::ZERO,
        );
        repo.clear();
        assert!(repo.is_empty());
        assert!(repo.lookup(RepositoryKey::baseline(0)).is_none());
        assert_eq!(repo.iter().count(), 0);
    }

    #[test]
    fn empty_stats_hit_rate_is_zero() {
        assert_eq!(RepositoryStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn entry_hits_and_aggregate_hits_advance_together() {
        let mut repo = SignatureRepository::new();
        repo.insert(
            RepositoryKey::baseline(0),
            ResourceAllocation::large(2),
            SimTime::ZERO,
        );
        repo.insert(
            RepositoryKey::baseline(1),
            ResourceAllocation::large(4),
            SimTime::ZERO,
        );
        for _ in 0..5 {
            let _ = repo.lookup(RepositoryKey::baseline(0));
        }
        for _ in 0..3 {
            let _ = repo.lookup(RepositoryKey::baseline(1));
        }
        let _ = repo.lookup(RepositoryKey::baseline(9));
        assert_eq!(repo.stats().hits, 8);
        assert_eq!(repo.total_entry_hits(), repo.stats().hits);
    }

    #[test]
    fn allocation_store_impl_matches_inherent_api() {
        let mut repo = SignatureRepository::new();
        let store: &mut dyn AllocationStore = &mut repo;
        let key = RepositoryKey::baseline(3);
        store.put(
            StoreContext::keyed(key),
            ResourceAllocation::large(5),
            SimTime::ZERO,
        );
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
        let entry = store.get(StoreContext::keyed(key)).expect("present");
        assert_eq!(entry.allocation, ResourceAllocation::large(5));
        assert!(store
            .get(StoreContext::keyed(RepositoryKey::unclassified()))
            .is_none());
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.stats().misses, 1);
        assert_eq!(store.entries().len(), 1);
        store.clear();
        assert!(store.is_empty());
    }
}
