//! Bump-arena slabs for signature payloads.
//!
//! The shared repository's hot structures hold many small `f64` vectors of
//! identical length (workload signatures: one value per selected metric).
//! Storing each as its own `Vec<f64>` costs one heap allocation per payload
//! and scatters them across the heap; the resolve and memo paths that scan
//! them then chase a pointer per signature. A [`SignatureArena`] packs the
//! payloads into **one contiguous dim-major slab** and hands out plain
//! `(offset, len)` handles ([`SigRef`]) instead:
//!
//! * allocation is a bump of the slab's tail — no allocator round-trip once
//!   the slab has grown to its steady-state size;
//! * [`clear`](SignatureArena::clear) retains capacity, so a structure that
//!   refills every epoch (a commit batch, a rebound memo) stops touching the
//!   allocator entirely after its first fill;
//! * fixed-size payloads can be **overwritten in place**
//!   ([`overwrite`](SignatureArena::overwrite)), which is what keeps the
//!   bounded resolve memo allocation-free in steady state.
//!
//! The arena counts every byte it serves from retained capacity
//! ([`take_bytes_saved`](SignatureArena::take_bytes_saved)); the fleet's
//! flight recorder surfaces the tally as the `scratch_bytes_saved` counter.

/// Handle to one payload inside a [`SignatureArena`]: a `(start, len)` pair
/// into the arena's slab. Plain `Copy` data — cloning a structure that holds
/// refs clones only the handles; the owning arena must be cloned alongside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigRef {
    start: u32,
    len: u32,
}

impl SigRef {
    /// Number of `f64` values the handle covers.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the handle covers an empty payload.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A bump arena of `f64` payloads: one contiguous slab, `(offset, len)`
/// handles, capacity-retaining reset. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct SignatureArena {
    data: Vec<f64>,
    /// Slab capacity at the last [`clear`](Self::clear): bump allocations
    /// below this high-water mark are served from retained memory and count
    /// toward [`take_bytes_saved`](Self::take_bytes_saved).
    retained: usize,
    /// Bytes served without a fresh heap allocation since the last take.
    bytes_saved: u64,
}

impl SignatureArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `values` into the slab and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX` values (signatures are a
    /// few dozen dimensions; a slab that large is a logic error).
    pub fn alloc(&mut self, values: &[f64]) -> SigRef {
        let start = self.data.len();
        let end = start + values.len();
        assert!(end <= u32::MAX as usize, "signature arena overflow");
        if end <= self.retained {
            self.bytes_saved += std::mem::size_of_val(values) as u64;
        }
        self.data.extend_from_slice(values);
        SigRef {
            start: start as u32,
            len: values.len() as u32,
        }
    }

    /// Replaces the payload at `r` with `values` **in place** when the
    /// lengths match (the steady state of fixed-dimension signatures —
    /// no allocation, no slab growth); falls back to a fresh
    /// [`alloc`](Self::alloc) otherwise, abandoning the old slot until the
    /// next [`clear`](Self::clear). Returns the handle to use from now on.
    pub fn overwrite(&mut self, r: SigRef, values: &[f64]) -> SigRef {
        if r.len as usize == values.len() {
            let start = r.start as usize;
            self.data[start..start + values.len()].copy_from_slice(values);
            self.bytes_saved += std::mem::size_of_val(values) as u64;
            r
        } else {
            self.alloc(values)
        }
    }

    /// The payload behind `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not come from this arena (out of bounds).
    pub fn get(&self, r: SigRef) -> &[f64] {
        &self.data[r.start as usize..(r.start + r.len) as usize]
    }

    /// Drops every payload but keeps the slab's capacity, so the next fill
    /// cycle allocates nothing until it outgrows this one.
    pub fn clear(&mut self) {
        self.retained = self.data.capacity();
        self.data.clear();
    }

    /// Total `f64` values currently stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the arena holds no payloads.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drains the bytes-served-from-retained-memory tally (for the
    /// `scratch_bytes_saved` flight-recorder counter).
    pub fn take_bytes_saved(&mut self) -> u64 {
        std::mem::take(&mut self.bytes_saved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_get_round_trip() {
        let mut arena = SignatureArena::new();
        let a = arena.alloc(&[1.0, 2.0, 3.0]);
        let b = arena.alloc(&[4.0]);
        let empty = arena.alloc(&[]);
        assert_eq!(arena.get(a), &[1.0, 2.0, 3.0]);
        assert_eq!(arena.get(b), &[4.0]);
        assert!(arena.get(empty).is_empty());
        assert!(empty.is_empty());
        assert_eq!(a.len(), 3);
        assert_eq!(arena.len(), 4);
    }

    #[test]
    fn overwrite_in_place_keeps_the_handle_and_counts_saved_bytes() {
        let mut arena = SignatureArena::new();
        let a = arena.alloc(&[1.0, 2.0]);
        assert_eq!(arena.take_bytes_saved(), 0, "first fill is fresh memory");
        let same = arena.overwrite(a, &[7.0, 8.0]);
        assert_eq!(same, a);
        assert_eq!(arena.get(a), &[7.0, 8.0]);
        assert_eq!(arena.take_bytes_saved(), 16);
        // A length change falls back to a fresh slot.
        let grown = arena.overwrite(a, &[1.0, 2.0, 3.0]);
        assert_ne!(grown, a);
        assert_eq!(arena.get(grown), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn clear_retains_capacity_and_refills_count_as_saved() {
        let mut arena = SignatureArena::new();
        for i in 0..8 {
            arena.alloc(&[i as f64; 16]);
        }
        assert_eq!(arena.take_bytes_saved(), 0);
        arena.clear();
        assert!(arena.is_empty());
        let r = arena.alloc(&[9.0; 16]);
        assert_eq!(arena.get(r), &[9.0; 16]);
        assert_eq!(arena.take_bytes_saved(), 128, "served from retained slab");
    }
}
