//! The fleet engine: runs every tenant of a [`Scenario`] concurrently over
//! the shared simulated clock, with all DejaVu controllers reading and
//! writing one [`SharedSignatureRepository`].
//!
//! # Determinism
//!
//! Tenants advance in **epochs** (bulk-synchronous): within an epoch each
//! worker thread steps a disjoint chunk of tenants through their observation
//! ticks, reading the shared repository through read-only, epoch-frozen
//! snapshots ([`SharedSignatureRepository::peek`]) while buffering their own
//! writes in per-tenant outboxes. At the epoch barrier the engine drains the
//! outboxes **in tenant order** and applies them, then runs TTL eviction.
//! Mid-epoch the shared store never changes, and commits have a fixed order,
//! so the fleet result is a pure function of the scenario — it does not
//! depend on thread count or OS scheduling.

use crate::engine::{RunState, SimulationEngine};
use crate::report::{FleetReport, SharedRepoSnapshot, TenantOutcome};
use crate::scenario::Scenario;
use crate::shared_repo::{PendingOp, SharedRepoConfig, SharedSignatureRepository};
use crate::tenant_view::{Outbox, TenantRepoView};
use dejavu_baselines::{FixedMax, RightScale, RightScaleConfig};
use dejavu_core::{DejaVuConfig, DejaVuController};
use dejavu_services::ServiceModel;
use dejavu_simcore::SimTime;

/// Whether tenants share one repository or each keep their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingMode {
    /// All tenants read/write the fleet-shared repository.
    Shared,
    /// Every tenant keeps a private `SignatureRepository` (the ablation the
    /// fleet experiment compares against).
    Isolated,
}

/// Configuration of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Repository sharing mode.
    pub sharing: SharingMode,
    /// Worker threads; 0 means "one per available core".
    pub workers: usize,
    /// Shared-repository sharding/TTL configuration.
    pub repo: SharedRepoConfig,
    /// Learning-phase length handed to every tenant's DejaVu controller.
    pub learning_hours: u64,
    /// Also run the `FixedMax` and `RightScale` baselines for every tenant
    /// (for the fleet-wide cost comparison). Roughly triples the work.
    pub run_baselines: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            sharing: SharingMode::Shared,
            workers: 0,
            repo: SharedRepoConfig::default(),
            learning_hours: 24,
            run_baselines: false,
        }
    }
}

/// One tenant's complete in-flight simulation.
struct TenantRun {
    engine: SimulationEngine,
    service: Box<dyn ServiceModel>,
    controller: DejaVuController,
    state: RunState,
    fixed: Option<(FixedMax, RunState)>,
    rightscale: Option<(RightScale, RunState)>,
}

/// Steps one run up to (excluding) `epoch_end`.
fn step_until(
    engine: &SimulationEngine,
    service: &dyn ServiceModel,
    state: &mut RunState,
    controller: &mut dyn ProvisioningController,
    epoch_end: SimTime,
) {
    while let Some(t) = state.next_tick_time() {
        if t.as_secs() >= epoch_end.as_secs() {
            break;
        }
        engine.step(state, service, controller);
    }
}

impl TenantRun {
    /// Steps every in-flight run of this tenant up to (excluding) `epoch_end`.
    fn step_epoch(&mut self, epoch_end: SimTime) {
        let service = self.service.as_ref();
        step_until(
            &self.engine,
            service,
            &mut self.state,
            &mut self.controller,
            epoch_end,
        );
        if let Some((controller, state)) = &mut self.fixed {
            step_until(&self.engine, service, state, controller, epoch_end);
        }
        if let Some((controller, state)) = &mut self.rightscale {
            step_until(&self.engine, service, state, controller, epoch_end);
        }
    }
}

/// Runs a whole fleet deterministically.
#[derive(Debug)]
pub struct FleetEngine {
    scenario: Scenario,
    config: FleetConfig,
}

impl FleetEngine {
    /// Creates an engine for `scenario` under `config`.
    pub fn new(scenario: Scenario, config: FleetConfig) -> Self {
        FleetEngine { scenario, config }
    }

    /// The scenario being simulated.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    fn worker_count(&self, tenants: usize) -> usize {
        let configured = if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.workers
        };
        configured.clamp(1, tenants.max(1))
    }

    /// Runs the fleet to completion and aggregates the report.
    pub fn run(&self) -> FleetReport {
        let shared = std::sync::Arc::new(SharedSignatureRepository::new(self.config.repo.clone()));
        let mut runs: Vec<TenantRun> = Vec::with_capacity(self.scenario.tenants.len());
        let mut outboxes: Vec<Option<Outbox>> = Vec::with_capacity(self.scenario.tenants.len());

        for spec in &self.scenario.tenants {
            let engine = SimulationEngine::new(spec.run_config(self.scenario.tick));
            let space = engine.config().space.clone();
            let dv_config = DejaVuConfig::builder()
                .learning_hours(self.config.learning_hours)
                .seed(spec.seed)
                .build();
            let mut controller =
                DejaVuController::new(dv_config, spec.service.build(), space.clone())
                    .with_name(format!("dejavu-{}", spec.name));
            let outbox = match self.config.sharing {
                SharingMode::Shared => {
                    let (view, outbox) = TenantRepoView::new(
                        std::sync::Arc::clone(&shared),
                        spec.id,
                        spec.namespace(),
                    );
                    controller = controller.with_store(Box::new(view));
                    Some(outbox)
                }
                SharingMode::Isolated => None,
            };
            let state = engine.begin();
            let fixed = self
                .config
                .run_baselines
                .then(|| (FixedMax::new(&space), engine.begin()));
            let rightscale = self.config.run_baselines.then(|| {
                (
                    RightScale::new(space.clone(), RightScaleConfig::default()),
                    engine.begin(),
                )
            });
            runs.push(TenantRun {
                engine,
                service: spec.service.build(),
                controller,
                state,
                fixed,
                rightscale,
            });
            outboxes.push(outbox);
        }

        let epoch_secs = self.scenario.epoch.as_secs();
        let horizon = runs
            .iter()
            .map(|r| r.engine.config().trace.duration().as_secs())
            .fold(0.0f64, f64::max);
        let epochs = (horizon / epoch_secs).ceil() as usize;
        let workers = self.worker_count(runs.len());
        let mut cross_tenant_hits = vec![0u64; runs.len()];

        for epoch in 0..epochs {
            let epoch_end = SimTime::from_secs(epoch_secs * (epoch + 1) as f64);
            let chunk_size = runs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for chunk in runs.chunks_mut(chunk_size) {
                    scope.spawn(move || {
                        for run in chunk {
                            run.step_epoch(epoch_end);
                        }
                    });
                }
            });
            // Epoch barrier: publish buffered writes in tenant order, then age
            // out stale entries. This is the only place the shared store
            // changes, which is what keeps fleet runs deterministic. The whole
            // epoch's operations go through one batched commit — each shard's
            // write lock is taken once per barrier, not once per operation —
            // while the per-shard commit sequence stays in tenant order.
            let mut ops: Vec<PendingOp> = Vec::new();
            let mut op_tenants: Vec<usize> = Vec::new();
            for (tenant, outbox) in outboxes.iter().enumerate() {
                let Some(outbox) = outbox else { continue };
                let drained = std::mem::take(&mut *outbox.lock().expect("tenant outbox poisoned"));
                op_tenants.resize(op_tenants.len() + drained.len(), tenant);
                ops.extend(drained);
            }
            let applied = shared.apply_batch(&ops);
            for ((op, tenant), applied) in ops.iter().zip(&op_tenants).zip(applied) {
                // A hit only counts if the store still holds the entry at
                // commit time (an earlier publish in this barrier can have
                // re-anchored the namespace), keeping the engine-side and
                // store-side cross-tenant counters consistent.
                if applied && matches!(op, PendingOp::RecordHit { .. }) {
                    cross_tenant_hits[*tenant] += 1;
                }
            }
            shared.evict_stale(epoch_end);
        }

        let mut tenants = Vec::with_capacity(runs.len());
        for (i, run) in runs.into_iter().enumerate() {
            let TenantRun {
                engine,
                controller,
                state,
                fixed,
                rightscale,
                ..
            } = run;
            let name = controller.name().to_string();
            let dejavu = engine.finish(state, &name);
            let fixed_max = fixed.map(|(c, s)| {
                let n = c.name().to_string();
                engine.finish(s, &n)
            });
            let rightscale = rightscale.map(|(c, s)| {
                let n = c.name().to_string();
                engine.finish(s, &n)
            });
            let spec = &self.scenario.tenants[i];
            tenants.push(TenantOutcome {
                id: spec.id,
                name: spec.name.clone(),
                namespace: spec.namespace(),
                stats: controller.stats().clone(),
                cross_tenant_hits: cross_tenant_hits[i],
                dejavu,
                fixed_max,
                rightscale,
            });
        }

        let shared_repo =
            (self.config.sharing == SharingMode::Shared).then(|| SharedRepoSnapshot {
                entries: shared.len(),
                anchors: shared.anchor_count(),
                stats: shared.stats(),
                shard_stats: shared.shard_stats(),
            });

        FleetReport {
            scenario: self.scenario.name.clone(),
            sharing: self.config.sharing,
            epochs,
            tenants,
            shared_repo,
        }
    }
}

// `ProvisioningController::name` is on the trait; bring the concrete baseline
// types' trait methods into scope for the `finish` calls above.
use dejavu_cloud::ProvisioningController;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use dejavu_simcore::SimDuration;

    fn tiny_scenario(n: usize) -> Scenario {
        ScenarioBuilder::new("tiny", 11, 2)
            .tick(SimDuration::from_secs(600.0))
            .diurnal_fleet(n)
            .build()
    }

    #[test]
    fn fleet_runs_are_deterministic_across_worker_counts() {
        let mk = |workers| {
            FleetEngine::new(
                tiny_scenario(4),
                FleetConfig {
                    workers,
                    ..Default::default()
                },
            )
            .run()
        };
        let one = mk(1);
        let four = mk(4);
        for (a, b) in one.tenants.iter().zip(&four.tenants) {
            assert_eq!(
                a.dejavu.total_cost, b.dejavu.total_cost,
                "tenant {}",
                a.name
            );
            assert_eq!(
                a.dejavu.slo_violation_fraction,
                b.dejavu.slo_violation_fraction
            );
            assert_eq!(a.stats.tunings, b.stats.tunings);
            assert_eq!(a.cross_tenant_hits, b.cross_tenant_hits);
            assert_eq!(a.dejavu.latency_ms.values(), b.dejavu.latency_ms.values());
        }
    }

    #[test]
    fn sharing_reduces_cold_start_tunings_and_lifts_hit_rate() {
        let shared = FleetEngine::new(tiny_scenario(6), FleetConfig::default()).run();
        let isolated = FleetEngine::new(
            tiny_scenario(6),
            FleetConfig {
                sharing: SharingMode::Isolated,
                ..Default::default()
            },
        )
        .run();
        assert!(shared.total_fleet_reuses() > 0, "fleet reuse never fired");
        assert!(
            shared.total_tunings() < isolated.total_tunings(),
            "sharing did not avoid tunings: {} vs {}",
            shared.total_tunings(),
            isolated.total_tunings()
        );
        assert!(
            shared.fleet_hit_rate() > isolated.fleet_hit_rate(),
            "sharing did not lift hit rate: {} vs {}",
            shared.fleet_hit_rate(),
            isolated.fleet_hit_rate()
        );
        let snapshot = shared.shared_repo.as_ref().expect("shared snapshot");
        assert!(snapshot.entries > 0);
        assert!(snapshot.stats.cross_tenant_hits > 0);
        assert!(isolated.shared_repo.is_none());
    }

    #[test]
    fn baselines_ride_along_when_requested() {
        let report = FleetEngine::new(
            tiny_scenario(2),
            FleetConfig {
                run_baselines: true,
                ..Default::default()
            },
        )
        .run();
        for t in &report.tenants {
            let fixed = t.fixed_max.as_ref().expect("fixed baseline present");
            assert!(fixed.total_cost >= t.dejavu.total_cost * 0.5);
            assert!(t.rightscale.is_some());
        }
        assert!(report.total_fixed_max_cost().unwrap() > 0.0);
    }
}
