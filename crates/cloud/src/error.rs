//! Error type for the simulated cloud platform.

use std::error::Error;
use std::fmt;

/// Errors produced by the platform and allocation machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CloudError {
    /// The requested allocation is outside the platform's limits.
    InvalidAllocation {
        /// Human-readable reason.
        reason: String,
    },
    /// A configuration parameter was invalid.
    InvalidConfig(String),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::InvalidAllocation { reason } => {
                write!(f, "invalid resource allocation: {reason}")
            }
            CloudError::InvalidConfig(msg) => write!(f, "invalid platform configuration: {msg}"),
        }
    }
}

impl Error for CloudError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let e = CloudError::InvalidAllocation {
            reason: "zero instances".into(),
        };
        assert!(e.to_string().contains("zero instances"));
        assert!(!CloudError::InvalidConfig("x".into()).to_string().is_empty());
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error + Send + Sync>() {}
        check::<CloudError>();
    }
}
