//! EC2-style instance types and VM lifecycle.

use dejavu_simcore::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The instance types used in the paper's evaluation (July 2011 EC2 pricing).
///
/// Scale-out experiments vary the *number* of [`Large`](InstanceType::Large)
/// instances; scale-up experiments switch between
/// [`Large`](InstanceType::Large) and [`ExtraLarge`](InstanceType::ExtraLarge)
/// at a fixed instance count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InstanceType {
    /// EC2 m1.large-class instance.
    Large,
    /// EC2 m1.xlarge-class instance: twice the capacity and price of Large.
    ExtraLarge,
}

impl InstanceType {
    /// Normalized compute capacity (Large = 1.0).
    pub fn capacity_units(self) -> f64 {
        match self {
            InstanceType::Large => 1.0,
            InstanceType::ExtraLarge => 2.0,
        }
    }

    /// Memory in GiB (illustrative; used by reports only).
    pub fn memory_gb(self) -> f64 {
        match self {
            InstanceType::Large => 7.5,
            InstanceType::ExtraLarge => 15.0,
        }
    }

    /// On-demand hourly price in USD (July 2011, as cited in §4.5).
    pub fn hourly_price(self) -> f64 {
        match self {
            InstanceType::Large => 0.34,
            InstanceType::ExtraLarge => 0.68,
        }
    }

    /// Short label used in figures ("L" / "XL").
    pub fn label(self) -> &'static str {
        match self {
            InstanceType::Large => "L",
            InstanceType::ExtraLarge => "XL",
        }
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Lifecycle state of a VM instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VmState {
    /// Pre-created but not running (the paper pre-creates and stops instances).
    Stopped,
    /// Booting; becomes warm at the contained time.
    Booting {
        /// When the boot completes.
        ready_at: SimTime,
    },
    /// Running but still warming up (caches cold, state rebalancing).
    WarmingUp {
        /// When the warm-up completes.
        ready_at: SimTime,
    },
    /// Fully operational.
    Running,
}

/// A single VM instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmInstance {
    /// Identifier unique within the platform.
    pub id: u32,
    /// Instance type.
    pub instance_type: InstanceType,
    /// Lifecycle state.
    pub state: VmState,
}

impl VmInstance {
    /// Creates a stopped (pre-created) instance.
    pub fn stopped(id: u32, instance_type: InstanceType) -> Self {
        VmInstance {
            id,
            instance_type,
            state: VmState::Stopped,
        }
    }

    /// Returns true if the instance contributes full capacity at `now`.
    pub fn is_running(&self, now: SimTime) -> bool {
        match self.state {
            VmState::Running => true,
            VmState::WarmingUp { ready_at } | VmState::Booting { ready_at } => now >= ready_at,
            VmState::Stopped => false,
        }
    }

    /// Effective capacity contribution at `now`: full when running, half while
    /// warming up (cold caches), zero while booted or stopped.
    pub fn effective_capacity(&self, now: SimTime) -> f64 {
        match self.state {
            VmState::Running => self.instance_type.capacity_units(),
            VmState::Booting { ready_at } => {
                if now >= ready_at {
                    self.instance_type.capacity_units()
                } else {
                    0.0
                }
            }
            VmState::WarmingUp { ready_at } => {
                if now >= ready_at {
                    self.instance_type.capacity_units()
                } else {
                    self.instance_type.capacity_units() * 0.5
                }
            }
            VmState::Stopped => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pricing_and_capacity_ratio() {
        assert_eq!(InstanceType::Large.hourly_price(), 0.34);
        assert_eq!(InstanceType::ExtraLarge.hourly_price(), 0.68);
        assert_eq!(
            InstanceType::ExtraLarge.capacity_units(),
            2.0 * InstanceType::Large.capacity_units()
        );
        assert!(InstanceType::ExtraLarge.memory_gb() > InstanceType::Large.memory_gb());
    }

    #[test]
    fn labels() {
        assert_eq!(InstanceType::Large.to_string(), "L");
        assert_eq!(InstanceType::ExtraLarge.to_string(), "XL");
    }

    #[test]
    fn lifecycle_capacity() {
        let now = SimTime::from_secs(100.0);
        let later = SimTime::from_secs(200.0);
        let stopped = VmInstance::stopped(0, InstanceType::Large);
        assert_eq!(stopped.effective_capacity(now), 0.0);
        assert!(!stopped.is_running(now));

        let booting = VmInstance {
            id: 1,
            instance_type: InstanceType::Large,
            state: VmState::Booting { ready_at: later },
        };
        assert_eq!(booting.effective_capacity(now), 0.0);
        assert_eq!(booting.effective_capacity(later), 1.0);

        let warming = VmInstance {
            id: 2,
            instance_type: InstanceType::ExtraLarge,
            state: VmState::WarmingUp { ready_at: later },
        };
        assert_eq!(warming.effective_capacity(now), 1.0);
        assert_eq!(warming.effective_capacity(later), 2.0);
        assert!(warming.is_running(later));

        let running = VmInstance {
            id: 3,
            instance_type: InstanceType::Large,
            state: VmState::Running,
        };
        assert_eq!(running.effective_capacity(now), 1.0);
    }
}
