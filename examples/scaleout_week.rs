//! Scale-out scenario (the paper's Figure 6/7): a full week of the Messenger
//! or HotMail trace on a Cassandra-like store, comparing DejaVu against
//! Autopilot and fixed overprovisioning.
//!
//! ```text
//! cargo run --release --example scaleout_week -- hotmail
//! cargo run --release --example scaleout_week -- messenger
//! ```

use dejavu::experiments::fig6::scale_out_comparison;
use dejavu::traces::{hotmail_week, messenger_week};

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "messenger".to_string());
    let trace = match which.as_str() {
        "hotmail" => hotmail_week(7),
        _ => messenger_week(7),
    };
    let figure = scale_out_comparison(trace, 7);
    print!(
        "{}",
        figure.report(&format!("Scaling out Cassandra ({which} trace)"))
    );
    println!(
        "\nDejaVu reconfigured {} times; Autopilot {} times; the fixed baseline never.",
        figure.dejavu.adaptations.len(),
        figure.autopilot.adaptations.len()
    );
}
