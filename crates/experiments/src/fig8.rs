//! Figure 8 — adaptation (decision) time of DejaVu vs. the RightScale-style
//! autoscaler with 3-minute and 15-minute resize calm times, on both traces.

use crate::engine::{RunConfig, SimulationEngine};
use crate::report::Report;
use dejavu_baselines::RightScale;
use dejavu_core::{DejaVuConfig, DejaVuController};
use dejavu_services::CassandraService;
use dejavu_simcore::SimDuration;
use dejavu_traces::{hotmail_week, messenger_week, LoadTrace, RequestMix};

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct AdaptationBar {
    /// Trace name.
    pub trace: String,
    /// Controller name.
    pub controller: String,
    /// Mean adaptation time in seconds.
    pub mean_secs: f64,
    /// Standard error of the adaptation time.
    pub std_error_secs: f64,
}

/// The Figure-8 result.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// All bars (per trace: DejaVu, RightScale-3min, RightScale-15min).
    pub bars: Vec<AdaptationBar>,
}

impl Fig8Result {
    /// The bar for a given trace/controller pair.
    pub fn bar(&self, trace: &str, controller: &str) -> Option<&AdaptationBar> {
        self.bars
            .iter()
            .find(|b| b.trace == trace && b.controller == controller)
    }

    /// Renders the figure.
    pub fn report(&self) -> Report {
        let mut r =
            Report::new("Figure 8: adaptation time, DejaVu vs RightScale (log-scale in the paper)");
        for b in &self.bars {
            r.kv(
                &format!("{} / {}", b.trace, b.controller),
                format!("{:.0} s (± {:.0})", b.mean_secs, b.std_error_secs),
            );
        }
        r
    }
}

fn bars_for(trace: LoadTrace, seed: u64) -> Vec<AdaptationBar> {
    let service = CassandraService::update_heavy();
    let trace_name = trace.name().to_string();
    let cfg = RunConfig::scale_out(
        format!("fig8-{trace_name}"),
        trace,
        RequestMix::update_heavy(),
        seed,
    );
    let engine = SimulationEngine::new(cfg);
    let space = engine.config().space.clone();
    let mut out = Vec::new();

    let mut dejavu = DejaVuController::new(
        DejaVuConfig::builder().seed(seed).build(),
        Box::new(service),
        space.clone(),
    );
    let _ = engine.run(&service, &mut dejavu);
    // The paper's Figure 8 reports *decision* times: for DejaVu that is the
    // ~10 s the profiler needs to collect a signature before the cached
    // allocation can be deployed.
    let times = &dejavu.stats().adaptation_times_secs;
    let mean = dejavu.stats().mean_adaptation_secs();
    let std_error = if times.len() > 1 {
        let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;
        (var / times.len() as f64).sqrt()
    } else {
        0.0
    };
    out.push(AdaptationBar {
        trace: trace_name.clone(),
        controller: "dejavu".into(),
        mean_secs: mean,
        std_error_secs: std_error,
    });

    for calm_mins in [3.0, 15.0] {
        let mut rs = RightScale::with_calm_time(space.clone(), SimDuration::from_mins(calm_mins));
        let run = engine.run(&service, &mut rs);
        out.push(AdaptationBar {
            trace: trace_name.clone(),
            controller: format!("rightscale-{calm_mins:.0}min"),
            mean_secs: run.mean_adaptation_secs(),
            std_error_secs: run.adaptation_std_error(),
        });
    }
    out
}

/// Runs the Figure-8 experiment on both traces.
pub fn run(seed: u64) -> Fig8Result {
    let mut bars = bars_for(messenger_week(seed), seed);
    bars.extend(bars_for(hotmail_week(seed), seed));
    Fig8Result { bars }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dejavu_adapts_an_order_of_magnitude_faster_than_rightscale() {
        let fig = run(1);
        for trace in ["messenger", "hotmail"] {
            let dejavu = fig.bar(trace, "dejavu").expect("dejavu bar present");
            let rs3 = fig
                .bar(trace, "rightscale-3min")
                .expect("rs-3min bar present");
            let rs15 = fig
                .bar(trace, "rightscale-15min")
                .expect("rs-15min bar present");
            assert!(
                dejavu.mean_secs < 60.0,
                "{trace} dejavu {}",
                dejavu.mean_secs
            );
            assert!(
                rs3.mean_secs > 5.0 * dejavu.mean_secs,
                "{trace}: rs3 {} vs dejavu {}",
                rs3.mean_secs,
                dejavu.mean_secs
            );
            assert!(
                rs15.mean_secs > rs3.mean_secs,
                "{trace}: rs15 {} vs rs3 {}",
                rs15.mean_secs,
                rs3.mean_secs
            );
        }
        assert!(fig.report().to_string().contains("rightscale"));
    }
}
